//! Quickstart: deploy a PEAS network, watch it elect a working set, and
//! read off the paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use peas_repro::scenario::load_compiled;
use peas_repro::simulation::World;
use std::path::Path;

fn main() {
    // The paper's Section 5 scenario: 50 x 50 m field, 160 uniformly
    // deployed sensors, Motes-like radios (tx 60 mW / rx 12 mW / idle
    // 12 mW / sleep 0.03 mW), 54-60 J batteries, Rp = 3 m, lambda_d =
    // 0.02/s, a corner source reporting every 10 s to a corner sink over
    // GRAB, and 10.66 random failures per 5000 s — all declared in the
    // sibling scenario file.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/quickstart.peas");
    let config = load_compiled(&path).expect("quickstart.peas compiles").base;
    println!(
        "deploying {} sensors on a {:.0} x {:.0} m field...",
        config.node_count,
        config.field.width(),
        config.field.height()
    );

    let report = World::new(config).run();

    println!("\n--- run summary ---");
    println!("simulated time        : {:>10.0} s", report.end_secs);
    println!("total wakeups         : {:>10}", report.total_wakeups());
    println!(
        "3/4/5-coverage lifetime: {:>7.0} / {:.0} / {:.0} s (90% threshold)",
        report.coverage_lifetime(3, 0.9),
        report.coverage_lifetime(4, 0.9),
        report.coverage_lifetime(5, 0.9),
    );
    println!(
        "data delivery lifetime: {:>10.0} s ({} of {} reports arrived)",
        report.delivery_lifetime(0.9),
        report.delivered_reports,
        report.generated_reports
    );
    println!(
        "PEAS energy overhead  : {:>10.2} J = {:.3}% of {:.0} J consumed",
        report.overhead_j(),
        report.overhead_ratio() * 100.0,
        report.consumed_j
    );
    println!(
        "deaths                : {:>10} by failure injection, {} by battery",
        report.failures_injected, report.energy_deaths
    );

    println!("\n--- working-set timeline ---");
    println!(
        "{:>8}  {:>8}  {:>8}  {:>8}  {:>6}",
        "t (s)", "working", "sleeping", "alive", "cov4"
    );
    for sample in report.samples.iter().step_by(20) {
        println!(
            "{:>8.0}  {:>8}  {:>8}  {:>8}  {:>5.1}%",
            sample.t_secs,
            sample.working,
            sample.sleeping,
            sample.alive,
            sample.coverage[3] * 100.0
        );
    }
}
