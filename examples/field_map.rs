//! Watch the working set evolve: ASCII snapshots of the field through the
//! network's life — boot, steady state, the first generation's death and
//! the replacement wave.
//!
//! `#` working · `.` sleeping/probing · `x` dead · `S`/`K` source/sink
//!
//! ```text
//! cargo run --release --example field_map
//! ```

use peas_repro::des::time::SimTime;
use peas_repro::scenario::load_compiled;
use peas_repro::simulation::World;
use std::path::Path;

fn main() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/field_map.peas");
    let config = load_compiled(&path).expect("field_map.peas compiles").base;
    let mut world = World::new(config);

    for (t, label) in [
        (5u64, "t = 5 s — early boot: first probers take over"),
        (60, "t = 60 s — working set formed, most nodes asleep"),
        (4_000, "t = 4000 s — steady state"),
        (5_500, "t = 5500 s — first battery generation dying"),
        (8_000, "t = 8000 s — replacements carry on"),
    ] {
        world.run_until(SimTime::from_secs(t));
        let (working, probing, sleeping, dead) = world.mode_census();
        println!("{label}");
        println!("working {working} | probing {probing} | sleeping {sleeping} | dead {dead}");
        println!("{}", world.render_ascii(72));
    }

    let report = world.into_report();
    println!(
        "so far: {} wakeups, {:.0} J consumed, overhead {:.3}%",
        report.total_wakeups(),
        report.consumed_j,
        report.overhead_ratio() * 100.0
    );
}
