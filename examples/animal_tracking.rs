//! Animal tracking: the application the paper's Section 2 uses to motivate
//! its parameters.
//!
//! "For example, if an animal-tracking sensor network allows for monitoring
//! interruptions up to 5 minutes, λd can be set at 1 per 300 seconds"
//! (Section 2.2) — so this scenario configures λd = 1/300 and checks how
//! well the PEAS working set actually detects animals wandering through
//! the field over the network's whole life.
//!
//! ```text
//! cargo run --release --example animal_tracking
//! ```

use peas_repro::des::rng::SimRng;
use peas_repro::des::time::SimTime;
use peas_repro::geometry::Point;
use peas_repro::scenario::load_compiled;
use peas_repro::simulation::World;
use std::path::Path;

/// A wandering animal: piecewise-linear motion between random waypoints.
struct Animal {
    pos: Point,
    target: Point,
    speed_mps: f64,
}

impl Animal {
    fn new(rng: &mut SimRng, width: f64, height: f64) -> Animal {
        let random_point =
            |rng: &mut SimRng| Point::new(rng.range_f64(0.0, width), rng.range_f64(0.0, height));
        Animal {
            pos: random_point(rng),
            target: random_point(rng),
            speed_mps: rng.range_f64(0.3, 1.2),
        }
    }

    fn advance(&mut self, dt_secs: f64, rng: &mut SimRng, width: f64, height: f64) {
        let to_target = self.target - self.pos;
        let dist = self.pos.distance(self.target);
        let step = self.speed_mps * dt_secs;
        if dist <= step {
            self.pos = self.target;
            self.target = Point::new(rng.range_f64(0.0, width), rng.range_f64(0.0, height));
        } else {
            self.pos = Point::new(
                self.pos.x + to_target.x / dist * step,
                self.pos.y + to_target.y / dist * step,
            );
        }
    }
}

fn main() {
    // The paper's field with a denser deployment, tuned for tracking:
    // lambda_d = 1/300 s (five-minute interruption tolerance), declared
    // in the sibling scenario file.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/animal_tracking.peas");
    let config = load_compiled(&path)
        .expect("animal_tracking.peas compiles")
        .base;

    let sensing_range = config.sensing_range;
    let (width, height) = (config.field.width(), config.field.height());
    println!(
        "tracking scenario: {} sensors, sensing range {:.0} m, lambda_d = {:.4}/s",
        config.node_count, sensing_range, config.peas.desired_rate
    );

    let mut world = World::new(config);
    let mut animal_rng = SimRng::stream(999, 0);
    let mut animals: Vec<Animal> = (0..5)
        .map(|_| Animal::new(&mut animal_rng, width, height))
        .collect();

    // Step the world and the animals together; an animal is "detected"
    // when some working sensor has it in sensing range.
    let dt = 30.0;
    let mut t = 0.0;
    let mut checks = 0u64;
    let mut detections = 0u64;
    let mut first_miss: Option<f64> = None;
    println!("\n{:>8}  {:>8}  {:>9}", "t (s)", "working", "detected");
    loop {
        t += dt;
        let alive = world.run_until(SimTime::from_secs_f64(t));
        let working = world.working_positions();
        let mut detected_now = 0;
        for animal in &mut animals {
            animal.advance(dt, &mut animal_rng, width, height);
            checks += 1;
            if working.iter().any(|w| w.within(animal.pos, sensing_range)) {
                detections += 1;
                detected_now += 1;
            } else if first_miss.is_none() {
                first_miss = Some(t);
            }
        }
        if (t as u64).is_multiple_of(1500) {
            println!(
                "{:>8.0}  {:>8}  {:>6}/{}",
                t,
                working.len(),
                detected_now,
                animals.len()
            );
        }
        if !alive || t > 20_000.0 {
            break;
        }
    }

    let report = world.into_report();
    println!("\n--- tracking summary ---");
    println!(
        "detection ratio       : {:.1}% of {} checks across the full run",
        detections as f64 / checks as f64 * 100.0,
        checks
    );
    match first_miss {
        Some(t) => println!("first missed animal   : t = {t:.0} s"),
        None => println!("first missed animal   : never"),
    }
    println!(
        "4-coverage lifetime   : {:.0} s; total wakeups {}; overhead {:.3}%",
        report.coverage_lifetime(4, 0.9),
        report.total_wakeups(),
        report.overhead_ratio() * 100.0
    );
}
