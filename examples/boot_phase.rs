//! The boot-up phase and the choice of the initial probing rate λ₀.
//!
//! Section 2.1: "The initial value of λ decides how quickly the network
//! acquires enough number of working nodes during the boot-up phase. For
//! instance, 50% of the deployed nodes are required ... within the first
//! minute after deployment. Based on the PDF, we can calculate that an
//! initial λ of 0.012 ensures that 50% of the nodes wake up at least once
//! within the first minute."
//!
//! This example first verifies that calculation (P(wake < 60 s) =
//! 1 − e^{−60λ} = 0.51 at λ = 0.0117 ≈ 0.012), then shows how fast the
//! working set actually forms at λ₀ ∈ {0.012, 0.1}.
//!
//! ```text
//! cargo run --release --example boot_phase
//! ```

use peas_repro::des::time::SimTime;
use peas_repro::scenario::load_compiled;
use peas_repro::simulation::{ScenarioConfig, World};
use std::path::Path;

fn main() {
    // The analytical part: fraction waking within one minute.
    println!("P(first wakeup < 60 s) = 1 - exp(-60 lambda):");
    for lambda in [0.012f64, 0.05, 0.1] {
        println!(
            "  lambda = {:>5.3}/s  ->  {:>5.1}%",
            lambda,
            (1.0 - (-60.0 * lambda).exp()) * 100.0
        );
    }

    // The empirical part: working-set acquisition at two boot rates.
    println!("\nworking-set acquisition (N = 320, no failures):");
    println!(
        "{:>8}  {:>16}  {:>16}",
        "t (s)", "lambda0 = 0.012", "lambda0 = 0.1"
    );
    // The sibling scenario file declares the boot setup and a sweep over
    // peas.initial_rate = [0.012, 0.1]; runs() expands it in value order.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/boot_phase.peas");
    let scenario = load_compiled(&path).expect("boot_phase.peas compiles");
    let run_boot = |config: ScenarioConfig| {
        let mut world = World::new(config);
        let mut counts = Vec::new();
        for t in (30..=390).step_by(60) {
            world.run_until(SimTime::from_secs(t));
            counts.push(world.working_positions().len());
        }
        counts
    };
    let runs = scenario.runs();
    let slow = run_boot(runs[0].config.clone());
    let fast = run_boot(runs[1].config.clone());
    for (i, t) in (30..=390).step_by(60).enumerate() {
        println!("{:>8}  {:>16}  {:>16}", t, slow[i], fast[i]);
    }
    println!(
        "\nthe paper picks the higher lambda0 = 0.1 'to ensure a fast-functioning network';\n\
         Adaptive Sleeping then pulls the rates down toward lambda_d = 0.02 aggregate."
    );
}
