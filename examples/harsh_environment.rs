//! Robustness under a harsh environment: the paper's Section 5.3 story in
//! miniature. PEAS is built for deployments where "node failures may
//! happen frequently" — this example sweeps the failure rate up to the
//! paper's maximum (48 per 5000 s, ≈38% of nodes) and contrasts PEAS's
//! graceful degradation against the synchronized-sleeping strawman of
//! Section 2.1.1.
//!
//! ```text
//! cargo run --release --example harsh_environment
//! ```

use peas_repro::baselines::{BaselineScenario, SleepScheduler, SynchronizedRounds};
use peas_repro::scenario::load_compiled;
use peas_repro::simulation::Runner;
use std::path::Path;

fn main() {
    // The failure-rate sweep is declared in the sibling scenario file;
    // the synchronized strawman below stays on the Rust side (it runs on
    // the coarse baseline model, not the packet-level simulator).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/harsh_environment.peas");
    let scenario = load_compiled(&path).expect("harsh_environment.peas compiles");
    let n = scenario.base.node_count;
    println!("harsh-environment sweep: N = {n}, failure rates up to the paper's 48/5000 s\n");
    println!(
        "{:>11}  {:>14}  {:>14}  {:>13}",
        "rate/5000s", "PEAS cov4 (s)", "sync cov1 (s)", "failed nodes"
    );

    let mut peas_base = None;
    let mut sync_base = None;
    for run in scenario.runs() {
        // PEAS under the full packet-level simulator.
        let rate = run
            .config
            .failure
            .expect("every sweep point injects failures")
            .rate_per_5000s;
        let report = Runner::new(run.config).run_single();
        let peas_life = report.coverage_lifetime(4, 0.9);

        // The synchronized strawman on the coarse energy/coverage model.
        let mut scenario = BaselineScenario::paper(n).with_failures(rate);
        scenario.coverage_resolution = 2.0;
        scenario.step_secs = 25.0;
        let sync_life = SynchronizedRounds::paper()
            .run(&scenario, 3)
            .coverage_lifetime(1, 0.9);

        peas_base.get_or_insert(peas_life);
        sync_base.get_or_insert(sync_life);
        println!(
            "{:>11.2}  {:>14.0}  {:>14.0}  {:>12}",
            rate, peas_life, sync_life, report.failures_injected
        );
    }

    println!("\nnote: PEAS's randomized wakeups replace failed workers within ~1/lambda_d;");
    println!("synchronized sleepers only re-elect at round boundaries, so their coverage");
    println!("collapses faster as the failure rate climbs (the Figure 4/5 effect).");
}
