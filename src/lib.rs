//! # peas-repro — a full reproduction of PEAS (ICDCS 2003)
//!
//! **PEAS: A Robust Energy Conserving Protocol for Long-lived Sensor
//! Networks** (Ye, Zhong, Cheng, Lu, Zhang) keeps a necessary set of
//! sensors working and puts the rest to sleep: sleeping nodes wake after
//! exponentially distributed intervals, probe their `Rp`-neighborhood, and
//! either take over (silence) or adapt their wakeup rate to the
//! application-desired aggregate λd and sleep again (a REPLY). The result
//! is a network whose functioning time grows linearly with the deployed
//! population, tolerates ~38% unexpected node failures, and spends < 1% of
//! its energy on the protocol itself.
//!
//! This facade crate re-exports the whole reproduction workspace:
//!
//! * [`protocol`] — the PEAS state machine ([`peas`]);
//! * [`simulation`] — the deterministic network simulator ([`peas_sim`])
//!   with the paper's Section 5 scenario presets;
//! * [`des`] / [`geometry`] / [`radio`] — the substrates (event engine,
//!   field/coverage, wireless medium + energy);
//! * [`forwarding`] — the GRAB-style data-delivery protocol;
//! * [`baselines`] — always-on / synchronized-rounds / GAF-style
//!   comparison schedulers;
//! * [`analysis`] — lifetimes, statistics and the paper's analytical
//!   reproductions;
//! * [`scenario`] — the declarative `.peas` scenario language and the
//!   golden conformance harness pinning every experiment to a committed
//!   fingerprint;
//! * [`model`] — the exhaustive model checker: every message/timer
//!   interleaving of 2–6-node micro-worlds, safety + liveness
//!   invariants, shrunk replayable counterexamples.
//!
//! ## Quick start
//!
//! ```
//! use peas_repro::simulation::{ScenarioConfig, World};
//!
//! // A small, fast network; ScenarioConfig::paper(n) is the full
//! // Section 5 evaluation setting.
//! let report = World::new(ScenarioConfig::small().with_seed(1)).run();
//! println!(
//!     "4-coverage lifetime: {:.0} s over {} wakeups",
//!     report.coverage_lifetime(4, 0.9),
//!     report.total_wakeups()
//! );
//! # assert!(report.total_wakeups() > 0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `peas-bench` crate's
//! `paper` binary for regenerating every figure and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The PEAS protocol (re-export of the `peas` crate).
pub mod protocol {
    pub use peas::*;
}

/// The integrated network simulator (re-export of `peas-sim`).
pub mod simulation {
    pub use peas_sim::*;
}

/// The discrete-event engine (re-export of `peas-des`).
pub mod des {
    pub use peas_des::*;
}

/// Geometry, deployment, coverage and connectivity (re-export of
/// `peas-geom`).
pub mod geometry {
    pub use peas_geom::*;
}

/// The wireless medium and energy model (re-export of `peas-radio`).
pub mod radio {
    pub use peas_radio::*;
}

/// GRAB-style data forwarding (re-export of `peas-grab`).
pub mod forwarding {
    pub use peas_grab::*;
}

/// Baseline sleep schedulers (re-export of `peas-baselines`).
pub mod baselines {
    pub use peas_baselines::*;
}

/// Statistics and analytical reproductions (re-export of `peas-analysis`).
pub mod analysis {
    pub use peas_analysis::*;
}

/// The declarative scenario DSL and golden conformance harness
/// (re-export of `peas-scenario`). Scenario files live under
/// `scenarios/` and next to the examples; see `DESIGN.md` for the
/// grammar.
pub mod scenario {
    pub use peas_scenario::*;
}

/// The exhaustive model checker for the PEAS state machine (re-export
/// of `peas-model`): breadth-first exploration of 2–6-node micro-worlds
/// over every message/timer interleaving, with shrunk, replayable
/// counterexamples. See `DESIGN.md` §10.
pub mod model {
    pub use peas_model::*;
}
