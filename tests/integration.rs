//! Cross-crate integration tests: full simulations driven through the
//! `peas-repro` facade, checking the paper's end-to-end properties at a
//! test-friendly scale.

use peas_repro::analysis::check_working_set;
use peas_repro::des::time::SimTime;
use peas_repro::geometry::Deployment;
use peas_repro::protocol::PeasConfig;
use peas_repro::simulation::{BatterySpec, Runner, ScenarioConfig, World};

/// A small, fast scenario used throughout this file.
fn small(n: usize, seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::small().with_seed(seed);
    c.node_count = n;
    c
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let mut config = ScenarioConfig::paper(60).with_seed(77);
    config.horizon = SimTime::from_secs(800);
    let a = Runner::new(config.clone()).run_single();
    let b = Runner::new(config).run_single();
    assert_eq!(a.samples.len(), b.samples.len());
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa, sb);
    }
    assert_eq!(a.node_stats, b.node_stats);
    assert_eq!(a.medium, b.medium);
    assert_eq!(a.delivered_reports, b.delivered_reports);
    assert!((a.consumed_j - b.consumed_j).abs() < 1e-12);
}

#[test]
fn lifetime_scales_with_deployment_size() {
    // The headline claim (Figures 9/10): more deployed nodes, longer life.
    // Small batteries keep the test quick.
    let lifetime = |n: usize| {
        let mut c = small(n, 5);
        c.battery = BatterySpec::Fixed(3.0); // ~250 s of working time
        c.horizon = SimTime::from_secs(6_000);
        Runner::new(c).run_single().coverage_lifetime(1, 0.9)
    };
    let l60 = lifetime(60);
    let l180 = lifetime(180);
    assert!(l60 > 0.0, "small deployment never functioned");
    assert!(
        l180 > 1.7 * l60,
        "tripling nodes should roughly triple lifetime: {l60} vs {l180}"
    );
}

#[test]
fn network_survives_heavy_failures() {
    // Fig 12's robustness shape: moderate lifetime loss at severe failure
    // rates, not collapse.
    let lifetime = |rate: f64| {
        let mut c = small(120, 9).with_failure_rate(rate);
        c.battery = BatterySpec::Fixed(4.0);
        c.horizon = SimTime::from_secs(6_000);
        Runner::new(c).run_single().coverage_lifetime(1, 0.9)
    };
    let clean = lifetime(0.0);
    let harsh = lifetime(60.0); // scaled to the small field/population
    assert!(clean > 0.0);
    assert!(
        harsh > 0.5 * clean,
        "lifetime under failures dropped too much: {clean} -> {harsh}"
    );
}

#[test]
fn sleeping_nodes_outnumber_working_in_dense_deployments() {
    let mut world = World::new(small(150, 3));
    world.run_until(SimTime::from_secs(400));
    let (working, _probing, sleeping, dead) = world.mode_census();
    assert_eq!(dead, 0);
    assert!(
        sleeping > working,
        "dense deployment: {sleeping} sleeping vs {working} working"
    );
    assert!(working > 20, "but a real working set exists: {working}");
}

#[test]
fn grab_delivers_through_the_working_set() {
    let mut config = ScenarioConfig::paper(240).with_seed(21);
    config.failure = None;
    config.horizon = SimTime::from_secs(700);
    let report = Runner::new(config).run_single();
    assert!(report.generated_reports >= 60);
    let ratio = report.final_delivery_ratio().unwrap();
    assert!(ratio > 0.85, "delivery ratio {ratio}");
}

#[test]
fn working_sets_satisfy_section_3_connectivity() {
    for seed in [1u64, 2, 3] {
        let mut config = ScenarioConfig::paper(320)
            .with_seed(seed)
            .with_failure_rate(0.0);
        config.grab = None;
        config.horizon = SimTime::from_secs(1_200);
        let mut world = World::new(config.clone());
        world.run_until(SimTime::from_secs(1_000));
        let working = world.working_positions();
        assert!(working.len() > 50, "seed {seed}: working set too small");
        let check = check_working_set(
            config.field,
            &working,
            config.peas.probing_range,
            config.peas.probing_range,
            &[10.0],
        );
        // Rt = 10 m > (1+sqrt5)*3 m: Theorem 3.1's premise holds; the
        // working graph must be connected at the radio range.
        let connected_at_rt = check.connected_at.first().map(|&(_, c)| c).unwrap_or(false);
        assert!(
            connected_at_rt,
            "seed {seed}: working set disconnected at 10 m"
        );
    }
}

#[test]
fn energy_ledger_balances_battery_drain() {
    let mut c = small(80, 13);
    c.horizon = SimTime::from_secs(1_000);
    let report = Runner::new(c).run_single();
    assert!(
        (report.ledger.total_j() - report.consumed_j).abs() < 1e-6,
        "ledger {} J vs batteries {} J",
        report.ledger.total_j(),
        report.consumed_j
    );
    // And PEAS overhead must be a tiny slice of it (Table 1's point).
    assert!(report.overhead_ratio() < 0.05);
}

#[test]
fn adaptive_sleeping_regulates_wakeups() {
    // With adaptation on, the perceived aggregate rate should come down
    // from the boot rate toward lambda_d's order of magnitude.
    let mut c = ScenarioConfig::paper(240)
        .with_seed(31)
        .with_failure_rate(0.0);
    c.grab = None;
    c.horizon = SimTime::from_secs(3_000);
    let report = Runner::new(c).run_single();
    let late = report
        .perceived_aggregate_rate(1_500.0, 3_000.0)
        .expect("rate measurable");
    assert!(
        late < 0.1,
        "aggregate per-worker rate should fall well below the boot rate: {late}"
    );
    assert!(late > 0.001, "but probing must continue: {late}");
}

#[test]
fn explicit_deployments_flow_through_the_whole_stack() {
    use peas_repro::geometry::Point;
    // A hand-placed 3 x 3 lattice: exactly one working node per ~Rp area.
    let positions: Vec<Point> = (0..3)
        .flat_map(|i| (0..3).map(move |j| Point::new(5.0 + 7.0 * i as f64, 5.0 + 7.0 * j as f64)))
        .collect();
    let mut c = ScenarioConfig::small().with_seed(17);
    c.node_count = positions.len();
    c.deployment = Deployment::Explicit(positions);
    c.horizon = SimTime::from_secs(500);
    let mut world = World::new(c);
    world.run_until(SimTime::from_secs(400));
    // All nine are pairwise > Rp = 3 m apart, so all must end up working.
    let (working, _, sleeping, dead) = world.mode_census();
    assert_eq!(
        working, 9,
        "working {working}, sleeping {sleeping}, dead {dead}"
    );
}

#[test]
fn fixed_power_mode_runs_end_to_end() {
    let mut c = small(100, 23);
    c.peas = PeasConfig::builder().fixed_power(10.0).build();
    c.horizon = SimTime::from_secs(600);
    let report = Runner::new(c).run_single();
    // The threshold filter must still produce a sensible working set.
    let working = report.working_series().value_at(500.0);
    assert!(working > 10.0, "fixed-power working set {working}");
    assert!(report.total_wakeups() > 0);
}

#[test]
fn lossy_channels_are_survivable() {
    let mut c = small(100, 27);
    c.loss_rate = 0.1; // the Section 4 operating point
    c.horizon = SimTime::from_secs(1_000);
    let report = Runner::new(c).run_single();
    let cov = report.coverage_series(1).value_at(800.0);
    assert!(cov > 0.9, "1-coverage under 10% loss: {cov}");
}

#[test]
fn multi_seed_runner_averages() {
    let mut c = small(50, 0);
    c.horizon = SimTime::from_secs(400);
    let reports = Runner::new(c).seeds(&[1, 2, 3]).run();
    assert_eq!(reports.len(), 3);
    let seeds: Vec<u64> = reports.iter().map(|r| r.seed).collect();
    assert_eq!(seeds, vec![1, 2, 3]);
}

#[test]
fn event_workload_detects_and_delivers() {
    use peas_repro::simulation::EventWorkload;
    let mut c = ScenarioConfig::paper(320).with_seed(41);
    c.failure = None;
    c.events = Some(EventWorkload {
        rate_per_100s: 50.0,
    });
    c.horizon = SimTime::from_secs(1_500);
    let report = Runner::new(c).run_single();
    assert!(report.events_total > 300, "events {}", report.events_total);
    let detection = report.event_detection_ratio().unwrap();
    // 10 m sensing over a dense working set: essentially everything seen.
    assert!(detection > 0.95, "detection ratio {detection}");
    let delivery = report.event_delivery_ratio().unwrap();
    assert!(delivery > 0.75, "event delivery ratio {delivery}");
    // The corner-source stream is accounted separately.
    assert!(report.delivered_reports <= report.generated_reports);
}

#[test]
fn single_node_network_works_until_death() {
    use peas_repro::geometry::Point;
    // A degenerate one-node network: the node must wake, find silence,
    // work, and die of battery depletion — no panics, no hangs.
    let mut c = ScenarioConfig::small().with_seed(3);
    c.node_count = 1;
    c.deployment = Deployment::Explicit(vec![Point::new(12.0, 12.0)]);
    c.battery = BatterySpec::Fixed(1.0); // ~83 s awake
    c.horizon = SimTime::from_secs(2_000);
    let report = Runner::new(c).run_single();
    assert_eq!(report.energy_deaths, 1);
    assert!(report.total_wakeups() >= 1);
    let last = report.samples.last().unwrap();
    assert_eq!(last.alive, 0);
    assert!(report.end_secs < 2_000.0, "should stop early at extinction");
}

#[test]
fn combined_stress_loss_shadowing_failures() {
    use peas_repro::radio::PropagationSpec;
    // Everything hostile at once: 15% loss, shadowed channel, heavy
    // failures, fixed transmission power. The network must still elect and
    // sustain a working set with real coverage.
    let mut c = ScenarioConfig::paper(320)
        .with_seed(55)
        .with_failure_rate(40.0);
    c.loss_rate = 0.15;
    c.propagation = PropagationSpec::shadowed(55);
    c.peas = PeasConfig::builder().fixed_power(10.0).build();
    c.horizon = SimTime::from_secs(2_000);
    let report = Runner::new(c).run_single();
    let cov = report.coverage_series(1).value_at(1_500.0);
    assert!(cov > 0.85, "1-coverage under combined stress: {cov}");
    assert!(report.failures_injected > 0);
    // Ledger still balances under every channel effect.
    assert!((report.ledger.total_j() - report.consumed_j).abs() < 1e-6);
}

#[test]
fn grab_source_keeps_generating_after_sensor_extinction() {
    // When every sensor dies, the infrastructure source keeps minting
    // reports (they count against the success ratio) but nothing can relay
    // them — generated grows, delivered stalls.
    let mut c = ScenarioConfig::paper(40).with_seed(61);
    c.battery = BatterySpec::Fixed(2.0);
    c.failure = None;
    c.horizon = SimTime::from_secs(3_000);
    let report = Runner::new(c).run_single();
    let last = report.samples.last().unwrap();
    assert_eq!(last.alive, 0);
    assert!(report.generated_reports > 0);
    assert!(report.delivered_reports <= report.generated_reports);
}
