//! Paper-scale acceptance tests: full Section 5 scenarios asserting the
//! quantitative bands EXPERIMENTS.md documents. These take tens of seconds
//! each in release mode, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use peas_repro::simulation::{Runner, ScenarioConfig};

const THRESHOLD: f64 = 0.9;

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn figure_9_lifetime_grows_linearly_with_population() {
    let life = |n: usize| {
        let reports = Runner::new(ScenarioConfig::paper(n))
            .seeds(&[101, 102])
            .run();
        reports
            .iter()
            .map(|r| r.coverage_lifetime(4, THRESHOLD))
            .sum::<f64>()
            / reports.len() as f64
    };
    let l160 = life(160);
    let l480 = life(480);
    let l800 = life(800);
    assert!((3_500.0..6_500.0).contains(&l160), "160 nodes: {l160}");
    assert!(
        l480 > 2.4 * l160 && l480 < 4.2 * l160,
        "480 vs 160: {l480} vs {l160}"
    );
    assert!(
        l800 > 4.0 * l160 && l800 < 6.5 * l160,
        "800 vs 160: {l800} vs {l160}"
    );
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn figure_12_lifetime_survives_38_percent_failures() {
    let life = |rate: f64| {
        let reports = Runner::new(ScenarioConfig::paper(480).with_failure_rate(rate))
            .seeds(&[101, 102])
            .run();
        reports
            .iter()
            .map(|r| r.coverage_lifetime(4, THRESHOLD))
            .sum::<f64>()
            / reports.len() as f64
    };
    let mild = life(5.33);
    let severe = life(48.0);
    let drop = 1.0 - severe / mild;
    assert!(
        drop < 0.35,
        "4-coverage lifetime dropped {:.0}% ({} -> {})",
        drop * 100.0,
        mild,
        severe
    );
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn table_1_overhead_stays_below_one_percent() {
    for n in [160usize, 800] {
        let report = Runner::new(ScenarioConfig::paper(n).with_seed(101)).run_single();
        let ratio = report.overhead_ratio();
        assert!(ratio < 0.01, "N={n}: overhead ratio {ratio}");
        assert!(ratio > 0.0005, "N={n}: implausibly low overhead {ratio}");
    }
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn figure_10_delivery_lifetime_tracks_coverage() {
    let report = Runner::new(ScenarioConfig::paper(480).with_seed(101)).run_single();
    let cov4 = report.coverage_lifetime(4, THRESHOLD);
    let delivery = report.delivery_lifetime(THRESHOLD);
    assert!(delivery > 0.6 * cov4, "delivery {delivery} vs cov4 {cov4}");
    assert!(delivery < 2.0 * cov4, "delivery {delivery} vs cov4 {cov4}");
}

#[test]
#[ignore = "paper-scale soak; run with --ignored in release mode"]
fn soak_800_nodes_to_extinction() {
    // Run the largest paper scenario until every sensor is dead and check
    // the end-state invariants hold over the whole multi-generation life.
    let report = Runner::new(ScenarioConfig::paper(800).with_seed(103)).run_single();
    let last = report.samples.last().expect("samples recorded");
    assert_eq!(last.alive, 0, "the run should end with everyone dead");
    assert!(
        (report.ledger.total_j() - report.consumed_j).abs() < 1e-6,
        "energy ledger drifted over {} samples",
        report.samples.len()
    );
    assert_eq!(
        report.failures_injected + report.energy_deaths,
        800,
        "every node's death must be accounted"
    );
    // Lifetime ~5 generations of 4500-5000 s batteries.
    let cov4 = report.coverage_lifetime(4, THRESHOLD);
    assert!(
        (18_000.0..32_000.0).contains(&cov4),
        "800-node 4-coverage lifetime {cov4}"
    );
}
