//! Golden-run regression test: a fingerprint of one small simulation's
//! full sample series. Any change to protocol logic, RNG consumption
//! order, radio behavior or energy accounting shifts this value — which is
//! the point: behavioral changes to the simulator must be *deliberate*.
//!
//! When an intentional change lands (a protocol fix, a new default), run
//! the test, review that the new behavior is wanted (EXPERIMENTS.md
//! numbers still reproduce), and update `GOLDEN_FINGERPRINT` to the value
//! printed in the failure message.

use peas_repro::des::time::SimTime;
use peas_repro::radio::Channel;
use peas_repro::simulation::{run_one, RunReport, ScenarioConfig};

/// FNV-1a over the formatted sample stream.
fn fingerprint(parts: impl Iterator<Item = String>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

const GOLDEN_FINGERPRINT: u64 = 0x4053_87E1_0CC7_2444;

/// Same scenario under log-normal shadowing with random loss: pins the
/// RNG-consumption order of the per-edge precomputed shadowing draws and
/// the per-receiver loss draws on the decode-row fast path.
const GOLDEN_FINGERPRINT_SHADOWED: u64 = 0xCA76_1049_62AF_AC70;

fn sample_fingerprint(report: &RunReport) -> u64 {
    fingerprint(report.samples.iter().map(|s| {
        format!(
            "{:.3}|{:?}|{}|{}|{}|{}|{:?}",
            s.t_secs,
            s.coverage
                .iter()
                .map(|c| (c * 1e6).round() as u64)
                .collect::<Vec<_>>(),
            s.working,
            s.sleeping,
            s.alive,
            s.total_wakeups,
            s.delivery_ratio.map(|r| (r * 1e6).round() as u64),
        )
    }))
}

#[test]
fn small_scenario_fingerprint_is_stable() {
    let mut config = ScenarioConfig::paper(100).with_seed(2024);
    config.horizon = SimTime::from_secs(1_500);
    let report = run_one(config);
    let fp = sample_fingerprint(&report);
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "simulation behavior changed: new fingerprint {fp:#018X}. If the \
         change is intentional (check EXPERIMENTS.md still reproduces), \
         update GOLDEN_FINGERPRINT."
    );
}

#[test]
fn shadowed_scenario_fingerprint_is_stable() {
    let mut config = ScenarioConfig::paper(100).with_seed(2024);
    config.horizon = SimTime::from_secs(1_500);
    config.channel = Channel::shadowed(7);
    config.loss_rate = 0.05;
    let report = run_one(config);
    let fp = sample_fingerprint(&report);
    assert_eq!(
        fp, GOLDEN_FINGERPRINT_SHADOWED,
        "shadowed-channel behavior changed: new fingerprint {fp:#018X}. If \
         the change is intentional, update GOLDEN_FINGERPRINT_SHADOWED."
    );
}
