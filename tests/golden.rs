//! Golden-run regression test: a fingerprint of one small simulation's
//! full sample series. Any change to protocol logic, RNG consumption
//! order, radio behavior or energy accounting shifts this value — which is
//! the point: behavioral changes to the simulator must be *deliberate*.
//!
//! When an intentional change lands (a protocol fix, a new default), run
//! the test, review that the new behavior is wanted (EXPERIMENTS.md
//! numbers still reproduce), and update `GOLDEN_FINGERPRINT` to the value
//! printed in the failure message.

use peas_repro::des::time::SimTime;
use peas_repro::radio::PropagationSpec;
// The fingerprint definition lives in peas-scenario's conformance layer
// now — one canonical encoding shared by this test, the `.peas` golden
// snapshots and the `scenario` driver binary.
use peas_repro::scenario::sample_fingerprint;
use peas_repro::simulation::{Runner, ScenarioConfig};

const GOLDEN_FINGERPRINT: u64 = 0x4053_87E1_0CC7_2444;

/// Same scenario under log-normal shadowing with random loss: pins the
/// RNG-consumption order of the per-edge precomputed shadowing draws and
/// the per-receiver loss draws on the decode-row fast path.
const GOLDEN_FINGERPRINT_SHADOWED: u64 = 0xCA76_1049_62AF_AC70;

#[test]
fn small_scenario_fingerprint_is_stable() {
    let mut config = ScenarioConfig::paper(100).with_seed(2024);
    config.horizon = SimTime::from_secs(1_500);
    let report = Runner::new(config).run_single();
    let fp = sample_fingerprint(&report);
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "simulation behavior changed: new fingerprint {fp:#018X}. If the \
         change is intentional (check EXPERIMENTS.md still reproduces), \
         update GOLDEN_FINGERPRINT."
    );
}

#[test]
fn shadowed_scenario_fingerprint_is_stable() {
    let mut config = ScenarioConfig::paper(100).with_seed(2024);
    config.horizon = SimTime::from_secs(1_500);
    config.propagation = PropagationSpec::shadowed(7);
    config.loss_rate = 0.05;
    let report = Runner::new(config).run_single();
    let fp = sample_fingerprint(&report);
    assert_eq!(
        fp, GOLDEN_FINGERPRINT_SHADOWED,
        "shadowed-channel behavior changed: new fingerprint {fp:#018X}. If \
         the change is intentional, update GOLDEN_FINGERPRINT_SHADOWED."
    );
}
