//! Tier-1 scenario conformance: every `.peas` file under `scenarios/`
//! must (a) load and compile, (b) reproduce its committed golden
//! snapshot exactly, and (c) — for the paper sweeps — expand to configs
//! byte-identical to the ones the Rust sweep builders construct, proven
//! down to the event-stream fingerprint.
//!
//! On drift the failure message names the scenario file and the first
//! diverging snapshot field; regenerate deliberately with
//! `cargo run --release -p peas-bench --bin scenario -- bless`.

use std::path::{Path, PathBuf};

use peas_bench::sweeps::{PAPER_FAILURE_RATES, PAPER_NODE_COUNTS, PAPER_SEEDS};
use peas_repro::des::time::SimTime;
use peas_repro::scenario::{
    first_divergence, load_compiled, sample_fingerprint, CompiledScenario, Snapshot,
};
use peas_repro::simulation::{Runner, ScenarioConfig};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn corpus_paths() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/ directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "peas"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "the scenario corpus must hold at least 8 scenarios, found {}",
        paths.len()
    );
    paths
}

fn load(path: &Path) -> CompiledScenario {
    load_compiled(path).unwrap_or_else(|e| panic!("{} failed to compile: {e}", path.display()))
}

/// Loads a corpus scenario by file name. Takes the full `x.peas` name so
/// every scenario this suite exercises is greppable by its file name
/// (peas-lint's d4-scenario-drift counts exactly those references).
fn load_by_name(file_name: &str) -> CompiledScenario {
    load(&repo_root().join("scenarios").join(file_name))
}

/// The committed corpus roster. Listing each file name here both documents
/// the corpus and anchors every scenario as "referenced by a test" for the
/// d4-scenario-drift lint — adding a scenario without wiring it in (or at
/// minimum adding it to this list) is a lint failure, and removing one
/// without updating this list fails here.
#[test]
fn corpus_contains_the_documented_scenarios() {
    let expected = [
        "base-paper.peas",
        "clustered.peas",
        "events.peas",
        "fig12.peas",
        "fig9.peas",
        "model-3node.peas",
        "model-4node.peas",
        "model-trace-exchange.peas",
        "scale-1m.peas",
        "shadowing.peas",
        "smoke.peas",
        "sweep-smoke.peas",
        "table1.peas",
        "terrain.peas",
    ];
    let actual: Vec<String> = corpus_paths()
        .iter()
        .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
        .collect();
    assert_eq!(
        actual, expected,
        "scenarios/ roster changed; update this list"
    );
}

/// (a) + (b): the whole corpus compiles and matches its committed golden
/// snapshots, field by field.
#[test]
fn corpus_matches_committed_golden_snapshots() {
    for path in corpus_paths() {
        let scenario = load(&path);
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let golden_path = repo_root()
            .join("scenarios/golden")
            .join(format!("{stem}.golden"));
        let committed = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "scenario {} has no golden snapshot at {} ({e}); run \
                 `cargo run --release -p peas-bench --bin scenario -- bless {stem}`",
                path.display(),
                golden_path.display()
            )
        });
        let expected = Snapshot::parse(&committed)
            .unwrap_or_else(|e| panic!("{}: malformed golden: {e}", golden_path.display()));
        // Model scenarios snapshot an exploration/replay outcome; the
        // rest snapshot a golden-config simulation.
        let actual = if scenario.model.is_some() {
            peas_bench::model_gate::model_snapshot(&scenario)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        } else {
            Snapshot::of_report(&Runner::new(scenario.golden_config()).run_single())
        };
        if let Some(divergence) = first_divergence(&expected, &actual) {
            panic!(
                "scenario {} drifted from its golden snapshot: {divergence}. \
                 If the change is deliberate, re-bless with \
                 `cargo run --release -p peas-bench --bin scenario -- bless {stem}`",
                path.display(),
            );
        }
    }
}

/// The fig9 scenario expands to configs byte-identical to the Rust
/// deployment sweep behind Figures 9-11 and Table 1.
#[test]
fn fig9_scenario_equals_rust_deployment_sweep() {
    let scenario = load_by_name("fig9.peas");
    let expected: Vec<ScenarioConfig> = PAPER_NODE_COUNTS
        .iter()
        .flat_map(|&n| {
            PAPER_SEEDS
                .iter()
                .map(move |&seed| ScenarioConfig::paper(n).with_seed(seed))
        })
        .collect();
    let actual: Vec<ScenarioConfig> = scenario.runs().into_iter().map(|r| r.config).collect();
    assert_eq!(
        actual, expected,
        "fig9.peas must expand to exactly the deployment_sweep configs"
    );
}

/// Same for fig12 against the failure-rate sweep behind Figures 12-14.
#[test]
fn fig12_scenario_equals_rust_failure_sweep() {
    let scenario = load_by_name("fig12.peas");
    let expected: Vec<ScenarioConfig> = PAPER_FAILURE_RATES
        .iter()
        .flat_map(|&rate| {
            PAPER_SEEDS.iter().map(move |&seed| {
                ScenarioConfig::paper(480)
                    .with_failure_rate(rate)
                    .with_seed(seed)
            })
        })
        .collect();
    let actual: Vec<ScenarioConfig> = scenario.runs().into_iter().map(|r| r.config).collect();
    assert_eq!(
        actual, expected,
        "fig12.peas must expand to exactly the failure_sweep configs"
    );
}

/// Table 1 reads off the same sweep as Figure 9; its scenario extends
/// fig9.peas and must expand identically.
#[test]
fn table1_scenario_equals_fig9_expansion() {
    let fig9: Vec<ScenarioConfig> = load_by_name("fig9.peas")
        .runs()
        .into_iter()
        .map(|r| r.config)
        .collect();
    let table1: Vec<ScenarioConfig> = load_by_name("table1.peas")
        .runs()
        .into_iter()
        .map(|r| r.config)
        .collect();
    assert_eq!(table1, fig9);
}

/// Beyond config equality: one sweep point actually *runs* to the same
/// event-stream fingerprint as the hand-built Rust config (horizons
/// truncated identically to keep tier-1 fast).
#[test]
fn sweep_point_fingerprints_are_byte_identical() {
    let scenario = load_by_name("fig9.peas");
    let runs = scenario.runs();
    // Point N = 320, seed 102: runs are ordered values-major.
    let mut from_dsl = runs[6].config.clone();
    assert_eq!((from_dsl.node_count, from_dsl.seed), (320, 102));
    let mut from_rust = ScenarioConfig::paper(320).with_seed(102);
    from_dsl.horizon = SimTime::from_secs(600);
    from_rust.horizon = SimTime::from_secs(600);
    assert_eq!(
        sample_fingerprint(&Runner::new(from_dsl).run_single()),
        sample_fingerprint(&Runner::new(from_rust).run_single()),
        "fig9.peas N=320/seed=102 must replay the Rust config bit for bit"
    );
}

/// smoke.peas is the declarative twin of ScenarioConfig::small().
#[test]
fn smoke_scenario_equals_small_preset() {
    let scenario = load_by_name("smoke.peas");
    assert_eq!(scenario.base, ScenarioConfig::small());
}

/// Every example's sibling .peas compiles to the exact config the
/// example used to build in Rust, and the quickstart twin replays to the
/// same fingerprint end to end.
#[test]
fn example_scenarios_match_their_rust_twins() {
    let example = |name: &str| load(&repo_root().join("examples").join(format!("{name}.peas")));

    // quickstart: paper(160), seed 42.
    let quickstart = example("quickstart");
    assert_eq!(quickstart.base, ScenarioConfig::paper(160).with_seed(42));

    // field_map: paper(320), seed 5.
    assert_eq!(
        example("field_map").base,
        ScenarioConfig::paper(320).with_seed(5)
    );

    // animal_tracking: paper(320), seed 7, lambda_d = 1/300, no GRAB.
    let mut tracking = ScenarioConfig::paper(320).with_seed(7);
    tracking.peas.desired_rate = 1.0 / 300.0;
    tracking.grab = None;
    assert_eq!(example("animal_tracking").base, tracking);

    // harsh_environment: paper(480), seed 3, no GRAB, sweeping the rate.
    let harsh: Vec<ScenarioConfig> = example("harsh_environment")
        .runs()
        .into_iter()
        .map(|r| r.config)
        .collect();
    let harsh_expected: Vec<ScenarioConfig> = [5.33, 16.0, 26.66, 37.33, 48.0]
        .iter()
        .map(|&rate| {
            let mut c = ScenarioConfig::paper(480)
                .with_failure_rate(rate)
                .with_seed(3);
            c.grab = None;
            c
        })
        .collect();
    assert_eq!(harsh, harsh_expected);

    // boot_phase: paper(320), seed 11, no GRAB/failures, 400 s horizon,
    // sweeping lambda0 over {0.012, 0.1}.
    let boot: Vec<ScenarioConfig> = example("boot_phase")
        .runs()
        .into_iter()
        .map(|r| r.config)
        .collect();
    let boot_expected: Vec<ScenarioConfig> = [0.012, 0.1]
        .iter()
        .map(|&rate| {
            let mut c = ScenarioConfig::paper(320)
                .with_failure_rate(0.0)
                .with_seed(11);
            c.grab = None;
            c.peas.initial_rate = rate;
            c.horizon = SimTime::from_secs(400);
            c
        })
        .collect();
    assert_eq!(boot, boot_expected);

    // Head-to-head smoke: the quickstart twin replays to the same
    // fingerprint as the Rust-built config on a truncated horizon.
    let mut dsl = quickstart.base;
    let mut rust = ScenarioConfig::paper(160).with_seed(42);
    dsl.horizon = SimTime::from_secs(500);
    rust.horizon = SimTime::from_secs(500);
    assert_eq!(
        sample_fingerprint(&Runner::new(dsl).run_single()),
        sample_fingerprint(&Runner::new(rust).run_single())
    );
}
