//! Tier-1 kill/resume conformance for the sharded sweep engine: a sweep
//! interrupted mid-journal (torn final line, exactly what a SIGKILL
//! mid-write leaves behind) and then resumed must merge into reports
//! byte-identical — via the schema-1 serialized form — to an
//! uninterrupted single-process run. The CI `sweep-resume` job proves
//! the same property across real worker processes with
//! `peas-bench sweep run sweep-smoke.peas --kill-worker`.

use std::fs::OpenOptions;
use std::io::Read;
use std::path::PathBuf;

use peas_repro::scenario::load_compiled;
use peas_repro::simulation::{encode_report, Runner, SweepSession};

fn scenario_runs() -> Vec<(String, peas_repro::simulation::ScenarioConfig)> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/sweep-smoke.peas");
    let compiled = load_compiled(&path).expect("sweep-smoke.peas must compile");
    compiled
        .runs()
        .into_iter()
        .map(|run| (run.label, run.config))
        .collect()
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("peas-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline acceptance criterion: interrupt a sweep by truncating
/// its journal mid-line (a torn write), resume, and the merged reports
/// are byte-identical to an uninterrupted run's.
#[test]
fn interrupted_then_resumed_sweep_is_byte_identical_to_uninterrupted() {
    let runs = scenario_runs();
    assert_eq!(runs.len(), 4, "sweep-smoke expands to 2 values x 2 seeds");

    // Reference: uninterrupted single-process run, no journal at all.
    let configs: Vec<_> = runs.iter().map(|(_, c)| c.clone()).collect();
    let reference: Vec<String> = Runner::configs(configs)
        .run()
        .iter()
        .map(encode_report)
        .collect();

    // Sharded run over two worker slots; worker 0 completes, worker 1's
    // segment is then torn mid-line to simulate a SIGKILL mid-write.
    let dir = temp_journal("kill");
    let session = SweepSession::create(&dir, runs.clone()).expect("create session");
    session.run_worker(0, 2, None).expect("worker 0");
    session.run_worker(1, 2, None).expect("worker 1");

    let segment = session.segment_path(1);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&segment)
        .expect("open worker-1 segment");
    let mut text = String::new();
    file.read_to_string(&mut text).expect("read segment");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "worker 1 owns shards 1 and 3");
    // Keep the first line and half of the second: a torn final record.
    let keep = lines[0].len() + 1 + lines[1].len() / 2;
    file.set_len(keep as u64).expect("truncate");
    drop(file);

    let (done, total) = session.progress().expect("progress");
    assert_eq!((done, total), (3, 4), "the torn shard no longer counts");
    assert_eq!(session.pending().expect("pending"), vec![3]);

    // Resume with a *different* worker topology (one slot) — the journal
    // is topology-independent, only pending shards re-run.
    let resumed = SweepSession::create(&dir, runs).expect("reopen session");
    let reran = resumed.run_worker(0, 1, None).expect("resume worker");
    assert_eq!(reran, 1, "resume re-runs exactly the torn shard");

    let merged: Vec<String> = resumed
        .merged()
        .expect("complete after resume")
        .iter()
        .map(encode_report)
        .collect();
    assert_eq!(
        merged, reference,
        "resumed sweep must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-tail regression: resuming with the SAME worker topology appends
/// the re-run shard onto its own torn segment. The appender must first
/// truncate the torn half-line, or the new record fuses with it and the
/// shard stays pending forever (the bug `review_torn_tail_probe` pinned).
#[test]
fn resume_onto_same_torn_segment_recovers_the_shard() {
    let runs = scenario_runs();
    let configs: Vec<_> = runs.iter().map(|(_, c)| c.clone()).collect();
    let reference: Vec<String> = Runner::configs(configs)
        .run()
        .iter()
        .map(encode_report)
        .collect();

    let dir = temp_journal("same-slot");
    let session = SweepSession::create(&dir, runs.clone()).expect("create session");
    session.run_worker(0, 2, None).expect("worker 0");
    session.run_worker(1, 2, None).expect("worker 1");

    // Tear worker 1's final record mid-line (shard 3), no trailing newline.
    let segment = session.segment_path(1);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&segment)
        .expect("open worker-1 segment");
    let mut text = String::new();
    file.read_to_string(&mut text).expect("read segment");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "worker 1 owns shards 1 and 3");
    let keep = lines[0].len() + 1 + lines[1].len() / 2;
    file.set_len(keep as u64).expect("truncate");
    drop(file);

    // Resume with the SAME two-slot topology: worker 1 re-runs shard 3,
    // appending to the very segment that ends in a torn tail.
    let resumed = SweepSession::create(&dir, runs).expect("reopen session");
    assert_eq!(resumed.pending().expect("pending"), vec![3]);
    assert_eq!(resumed.run_worker(1, 2, None).expect("resume worker 1"), 1);
    assert_eq!(
        resumed.pending().expect("pending after resume"),
        Vec::<usize>::new(),
        "the appended record must be readable past the torn tail"
    );

    let merged: Vec<String> = resumed
        .merged()
        .expect("complete after resume")
        .iter()
        .map(encode_report)
        .collect();
    assert_eq!(
        merged, reference,
        "same-slot resume must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A fully-journaled sweep re-opened with `create` runs nothing new and
/// still merges identically (the `--resume` no-op path).
#[test]
fn resume_of_a_complete_journal_runs_nothing() {
    let runs = scenario_runs();
    let dir = temp_journal("noop");
    let session = SweepSession::create(&dir, runs.clone()).expect("create session");
    session.run_worker(0, 1, None).expect("fill journal");
    let merged: Vec<String> = session
        .merged()
        .expect("complete")
        .iter()
        .map(encode_report)
        .collect();

    let reopened = SweepSession::create(&dir, runs).expect("reopen");
    assert_eq!(reopened.run_worker(0, 1, None).expect("no-op"), 0);
    let again: Vec<String> = reopened
        .merged()
        .expect("still complete")
        .iter()
        .map(encode_report)
        .collect();
    assert_eq!(again, merged);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The scenario-side shard enumeration (`runs_for_shard`) and the
/// session-side worker rule (`index % workers == worker`) agree: shards
/// journaled by session workers land exactly where `runs_for_shard`
/// says they belong.
#[test]
fn scenario_shards_match_session_worker_assignment() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/sweep-smoke.peas");
    let compiled = load_compiled(&path).expect("sweep-smoke.peas must compile");
    let all = compiled.runs();
    for workers in 1..=3 {
        for worker in 0..workers {
            let mine: Vec<String> = compiled
                .runs_for_shard(worker, workers)
                .into_iter()
                .map(|r| r.label)
                .collect();
            let expected: Vec<String> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == worker)
                .map(|(_, r)| r.label.clone())
                .collect();
            assert_eq!(mine, expected, "slot {worker}/{workers}");
        }
    }
}
