//! Propagation models.
//!
//! PEAS's design mostly assumes the unit-disc abstraction: "each sensor node
//! may vary its transmission power and choose a power level to cover a
//! circular area given a radius" (Section 2). Section 4 then discusses
//! "irregularities in signal attenuation" under fixed transmission power; we
//! model those as per-link log-normal shadowing that stretches or shrinks
//! each link's *apparent* distance.

use peas_des::rng::SimRng;

use crate::packet::NodeId;

/// The wireless propagation model.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Channel {
    /// Ideal unit-disc propagation: a transmission with intended range `r`
    /// reaches exactly the nodes within `r` meters.
    #[default]
    Disc,
    /// Log-normal shadowing: each unordered link has a static fading value
    /// `X ~ N(0, sigma_db)`, making the link appear to have length
    /// `d · 10^(X / (10·path_loss_exp))`.
    Shadowed {
        /// Path-loss exponent `n` (2 = free space, 3–4 = cluttered).
        path_loss_exp: f64,
        /// Standard deviation of the shadowing term, in dB.
        sigma_db: f64,
        /// Seed for the per-link fading values (deterministic per link).
        seed: u64,
    },
}

impl Channel {
    /// A moderately harsh shadowed channel (n = 3, σ = 4 dB).
    pub fn shadowed(seed: u64) -> Channel {
        Channel::Shadowed {
            path_loss_exp: 3.0,
            sigma_db: 4.0,
            seed,
        }
    }

    /// The distance a link between `a` and `b` *appears* to have when its
    /// true length is `dist`. Symmetric in `a`/`b` and stable across calls.
    pub fn effective_distance(&self, a: NodeId, b: NodeId, dist: f64) -> f64 {
        match *self {
            Channel::Disc => dist,
            Channel::Shadowed {
                path_loss_exp,
                sigma_db,
                seed,
            } => {
                let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                // One decoupled stream per unordered link.
                let link = ((lo as u64) << 32) | hi as u64;
                let mut rng = SimRng::stream(seed, link.wrapping_mul(0x9E37_79B9).wrapping_add(1));
                let x_db = rng.normal(0.0, sigma_db);
                dist * 10f64.powf(x_db / (10.0 * path_loss_exp))
            }
        }
    }

    /// Upper bound on the true distance at which a transmission with
    /// `intended_range` can still be heard (used to bound spatial queries).
    /// Caps shadowing at +4σ.
    pub fn max_reach(&self, intended_range: f64) -> f64 {
        match *self {
            Channel::Disc => intended_range,
            Channel::Shadowed {
                path_loss_exp,
                sigma_db,
                ..
            } => intended_range * 10f64.powf(4.0 * sigma_db / (10.0 * path_loss_exp)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disc_is_identity() {
        let c = Channel::Disc;
        assert_eq!(c.effective_distance(NodeId(1), NodeId(2), 7.5), 7.5);
        assert_eq!(c.max_reach(3.0), 3.0);
    }

    #[test]
    fn shadowing_is_symmetric_and_stable() {
        let c = Channel::shadowed(99);
        let d1 = c.effective_distance(NodeId(3), NodeId(8), 5.0);
        let d2 = c.effective_distance(NodeId(8), NodeId(3), 5.0);
        let d3 = c.effective_distance(NodeId(3), NodeId(8), 5.0);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
    }

    #[test]
    fn different_links_fade_differently() {
        let c = Channel::shadowed(99);
        let d1 = c.effective_distance(NodeId(0), NodeId(1), 5.0);
        let d2 = c.effective_distance(NodeId(0), NodeId(2), 5.0);
        assert_ne!(d1, d2);
    }

    #[test]
    fn shadowing_is_zero_mean_in_log_domain() {
        let c = Channel::shadowed(7);
        let n = 20_000u32;
        let mean_log: f64 = (0..n)
            .map(|i| {
                c.effective_distance(NodeId(i), NodeId(i + 100_000), 10.0)
                    .ln()
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_log - 10.0f64.ln()).abs() < 0.02,
            "mean log-distance {mean_log}"
        );
    }

    #[test]
    fn max_reach_bounds_effective_range() {
        let c = Channel::shadowed(11);
        let reach = c.max_reach(10.0);
        assert!(reach > 10.0);
        // Any link that appears within 10 m must have true length < reach
        // (equivalently: links longer than reach never get in). Sample a few.
        for i in 0..2000u32 {
            let true_dist = reach * 1.001;
            let eff = c.effective_distance(NodeId(i), NodeId(i + 1), true_dist);
            // The chance of a > +4σ fade is ~3e-5; none expected here.
            assert!(eff > 10.0, "link {i} faded beyond 4 sigma");
        }
    }

    #[test]
    fn scales_linearly_with_distance() {
        let c = Channel::shadowed(3);
        let e1 = c.effective_distance(NodeId(1), NodeId(2), 1.0);
        let e5 = c.effective_distance(NodeId(1), NodeId(2), 5.0);
        assert!((e5 / e1 - 5.0).abs() < 1e-9);
    }
}
