//! Radio power profiles.
//!
//! Section 5.1 of the paper: "The node power consumptions in transmission,
//! reception, idle and sleep modes are 60mW, 12mW, 12mW and 0.03mW,
//! respectively" — parameters "similar to Berkeley Motes".

use peas_des::time::SimDuration;

/// Power draw of each radio mode, in milliwatts.
///
/// # Examples
///
/// ```
/// use peas_des::time::SimDuration;
/// use peas_radio::PowerProfile;
///
/// let p = PowerProfile::motes();
/// // A 25-byte frame at 20 kbps is on the air for 10 ms; transmitting it
/// // costs 60 mW x 10 ms = 0.6 mJ.
/// let e = p.tx_energy(SimDuration::from_millis(10));
/// assert!((e - 0.0006).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerProfile {
    /// Transmit power draw, mW.
    pub tx_mw: f64,
    /// Receive power draw, mW.
    pub rx_mw: f64,
    /// Idle-listening power draw, mW.
    pub idle_mw: f64,
    /// Sleep power draw, mW.
    pub sleep_mw: f64,
}

impl PowerProfile {
    /// The Berkeley-Motes-like profile from Section 5.1:
    /// tx 60 mW, rx 12 mW, idle 12 mW, sleep 0.03 mW.
    pub fn motes() -> PowerProfile {
        PowerProfile {
            tx_mw: 60.0,
            rx_mw: 12.0,
            idle_mw: 12.0,
            sleep_mw: 0.03,
        }
    }

    /// Energy in joules for drawing `mw` milliwatts over `d`.
    pub fn energy_j(mw: f64, d: SimDuration) -> f64 {
        mw * 1e-3 * d.as_secs_f64()
    }

    /// Energy to transmit for duration `d`, in joules.
    pub fn tx_energy(&self, d: SimDuration) -> f64 {
        Self::energy_j(self.tx_mw, d)
    }

    /// Energy to receive for duration `d`, in joules.
    pub fn rx_energy(&self, d: SimDuration) -> f64 {
        Self::energy_j(self.rx_mw, d)
    }

    /// Energy to idle-listen for duration `d`, in joules.
    pub fn idle_energy(&self, d: SimDuration) -> f64 {
        Self::energy_j(self.idle_mw, d)
    }

    /// Energy to sleep for duration `d`, in joules.
    pub fn sleep_energy(&self, d: SimDuration) -> f64 {
        Self::energy_j(self.sleep_mw, d)
    }

    /// The *extra* energy transmitting costs over idling for `d` — useful
    /// when a node's base idle draw is accounted separately.
    pub fn tx_surcharge(&self, d: SimDuration) -> f64 {
        Self::energy_j((self.tx_mw - self.idle_mw).max(0.0), d)
    }

    /// How long a battery of `joules` lasts at idle draw, in seconds.
    ///
    /// The paper notes 54–60 J "allowing the node to operate about
    /// 4500 ~ 5000 seconds in reception/idle modes".
    pub fn idle_lifetime_secs(&self, joules: f64) -> f64 {
        joules / (self.idle_mw * 1e-3)
    }
}

impl Default for PowerProfile {
    fn default() -> Self {
        PowerProfile::motes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motes_profile_matches_section_5_1() {
        let p = PowerProfile::motes();
        assert_eq!(p.tx_mw, 60.0);
        assert_eq!(p.rx_mw, 12.0);
        assert_eq!(p.idle_mw, 12.0);
        assert_eq!(p.sleep_mw, 0.03);
    }

    #[test]
    fn idle_lifetime_matches_paper_battery_range() {
        let p = PowerProfile::motes();
        assert!((p.idle_lifetime_secs(54.0) - 4500.0).abs() < 1e-9);
        assert!((p.idle_lifetime_secs(60.0) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = PowerProfile::motes();
        let second = SimDuration::from_secs(1);
        assert!((p.tx_energy(second) - 0.060).abs() < 1e-15);
        assert!((p.rx_energy(second) - 0.012).abs() < 1e-15);
        assert!((p.idle_energy(second) - 0.012).abs() < 1e-15);
        assert!((p.sleep_energy(second) - 3e-5).abs() < 1e-15);
    }

    #[test]
    fn tx_surcharge_is_tx_minus_idle() {
        let p = PowerProfile::motes();
        let d = SimDuration::from_millis(10);
        assert!((p.tx_surcharge(d) - (0.060 - 0.012) * 1e-2 * 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_wakeup_energy_estimate_holds() {
        // Section 5.2: "a probing node transmits three PROBEs and waits for
        // 100ms ... the amount is 0.00316 Joule per wakeup". Reconstruct:
        // 3 probe transmissions (10 ms each) + 100 ms idle wait + receiving
        // one 10 ms REPLY ≈ 3.16 mJ.
        let p = PowerProfile::motes();
        let frame = SimDuration::from_millis(10);
        let wakeup = 3.0 * p.tx_energy(frame)
            + p.idle_energy(SimDuration::from_millis(100))
            + p.rx_energy(frame)
            + p.rx_energy(SimDuration::from_millis(3)); // processing slack
        assert!(
            (wakeup - 0.00316).abs() < 2e-4,
            "reconstructed wakeup energy {wakeup} J"
        );
    }
}
