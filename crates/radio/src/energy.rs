//! Per-node batteries and the cause-attributed energy ledger.
//!
//! Table 1 of the paper reports PEAS's energy *overhead ratio* — probing
//! energy as a fraction of total consumption. To measure (not estimate)
//! that, every joule drained from a battery is attributed to a cause.

use std::fmt;

use peas_des::time::SimDuration;

use crate::power::PowerProfile;

/// What a unit of energy was spent on.
///
/// `Protocol*` causes are PEAS overhead (PROBE/REPLY traffic plus the awake
/// time a probing node spends waiting for REPLYs); everything else is the
/// cost the network would pay anyway.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnergyCause {
    /// Transmitting a PEAS control frame (PROBE or REPLY).
    ProtocolTx,
    /// Receiving a PEAS control frame.
    ProtocolRx,
    /// Idle-listening during a probing node's REPLY-collection window.
    ProtocolIdle,
    /// Transmitting application (data/ADV) frames.
    AppTx,
    /// Receiving application frames.
    AppRx,
    /// Baseline idle listening while in the working mode.
    WorkingIdle,
    /// Sleep-mode draw.
    Sleep,
}

impl EnergyCause {
    /// All causes, for iteration in reports.
    pub const ALL: [EnergyCause; 7] = [
        EnergyCause::ProtocolTx,
        EnergyCause::ProtocolRx,
        EnergyCause::ProtocolIdle,
        EnergyCause::AppTx,
        EnergyCause::AppRx,
        EnergyCause::WorkingIdle,
        EnergyCause::Sleep,
    ];

    /// Whether this cause counts as PEAS protocol overhead (Table 1).
    pub fn is_protocol_overhead(self) -> bool {
        matches!(
            self,
            EnergyCause::ProtocolTx | EnergyCause::ProtocolRx | EnergyCause::ProtocolIdle
        )
    }

    fn index(self) -> usize {
        match self {
            EnergyCause::ProtocolTx => 0,
            EnergyCause::ProtocolRx => 1,
            EnergyCause::ProtocolIdle => 2,
            EnergyCause::AppTx => 3,
            EnergyCause::AppRx => 4,
            EnergyCause::WorkingIdle => 5,
            EnergyCause::Sleep => 6,
        }
    }
}

impl fmt::Display for EnergyCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EnergyCause::ProtocolTx => "protocol-tx",
            EnergyCause::ProtocolRx => "protocol-rx",
            EnergyCause::ProtocolIdle => "protocol-idle",
            EnergyCause::AppTx => "app-tx",
            EnergyCause::AppRx => "app-rx",
            EnergyCause::WorkingIdle => "working-idle",
            EnergyCause::Sleep => "sleep",
        };
        f.write_str(name)
    }
}

/// Energy drained per cause, in joules.
///
/// # Examples
///
/// ```
/// use peas_radio::{EnergyCause, EnergyLedger};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.add(EnergyCause::ProtocolTx, 0.0006);
/// ledger.add(EnergyCause::WorkingIdle, 0.5);
/// assert!(ledger.protocol_overhead_j() < 0.01 * ledger.total_j() + 0.001);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    by_cause: [f64; 7],
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> EnergyLedger {
        EnergyLedger::default()
    }

    /// Records `joules` drained for `cause`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn add(&mut self, cause: EnergyCause, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be non-negative and finite, got {joules}"
        );
        self.by_cause[cause.index()] += joules;
    }

    /// Joules drained for one cause.
    pub fn for_cause(&self, cause: EnergyCause) -> f64 {
        self.by_cause[cause.index()]
    }

    /// Total joules drained.
    pub fn total_j(&self) -> f64 {
        self.by_cause.iter().sum()
    }

    /// Joules attributable to PEAS overhead (Table 1 numerator).
    pub fn protocol_overhead_j(&self) -> f64 {
        EnergyCause::ALL
            .iter()
            .filter(|c| c.is_protocol_overhead())
            .map(|&c| self.for_cause(c))
            .sum()
    }

    /// Overhead ratio = protocol overhead / total (Table 1 last column).
    /// Returns 0 when nothing was consumed.
    pub fn overhead_ratio(&self) -> f64 {
        let total = self.total_j();
        if total == 0.0 {
            0.0
        } else {
            self.protocol_overhead_j() / total
        }
    }

    /// Accumulates another ledger into this one (for fleet-wide totals).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (dst, src) in self.by_cause.iter_mut().zip(other.by_cause.iter()) {
            *dst += src;
        }
    }
}

/// A node's finite energy reserve.
///
/// The paper draws initial energy uniformly from 54–60 J to model battery
/// variance; see [`Battery::paper_random`].
#[derive(Clone, Debug, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
}

impl Battery {
    /// A battery holding `joules`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn new(joules: f64) -> Battery {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "battery capacity must be non-negative, got {joules}"
        );
        Battery {
            capacity_j: joules,
            remaining_j: joules,
        }
    }

    /// A battery drawn uniformly from the paper's 54–60 J range.
    pub fn paper_random(rng: &mut peas_des::rng::SimRng) -> Battery {
        Battery::new(rng.range_f64(54.0, 60.0))
    }

    /// An effectively infinite battery (for source/sink infrastructure
    /// nodes that the paper places at the field corners).
    pub fn unlimited() -> Battery {
        Battery::new(f64::MAX / 4.0)
    }

    /// Initial capacity in joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining energy in joules.
    pub fn remaining_j(&self) -> f64 {
        self.remaining_j
    }

    /// Energy consumed so far in joules.
    pub fn consumed_j(&self) -> f64 {
        self.capacity_j - self.remaining_j
    }

    /// Whether the battery is exhausted.
    pub fn is_depleted(&self) -> bool {
        self.remaining_j <= 0.0
    }

    /// Drains `joules`; the battery floors at zero. Returns `true` while
    /// energy remains afterwards, `false` if this drain (or an earlier one)
    /// depleted the battery.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain(&mut self, joules: f64) -> bool {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "drain must be non-negative, got {joules}"
        );
        self.remaining_j = (self.remaining_j - joules).max(0.0);
        !self.is_depleted()
    }

    /// How long the battery sustains a constant `mw` draw, as a duration.
    pub fn lifetime_at(&self, mw: f64) -> SimDuration {
        assert!(mw > 0.0, "power draw must be positive");
        SimDuration::from_secs_f64(self.remaining_j / (mw * 1e-3))
    }

    /// Convenience: drains energy for holding `profile_mw` over `d` and
    /// records it in `ledger` under `cause`. Only the energy the battery
    /// actually held is recorded — a dying node cannot spend more than it
    /// has, so ledgers always balance battery consumption exactly.
    /// Returns `true` while alive.
    pub fn drain_timed(
        &mut self,
        profile_mw: f64,
        d: SimDuration,
        cause: EnergyCause,
        ledger: &mut EnergyLedger,
    ) -> bool {
        let j = PowerProfile::energy_j(profile_mw, d);
        ledger.add(cause, j.min(self.remaining_j));
        self.drain(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::rng::SimRng;

    #[test]
    fn battery_drains_to_zero_and_floors() {
        let mut b = Battery::new(1.0);
        assert!(b.drain(0.4));
        assert!((b.remaining_j() - 0.6).abs() < 1e-12);
        assert!(!b.drain(0.7));
        assert_eq!(b.remaining_j(), 0.0);
        assert!(b.is_depleted());
        assert_eq!(b.consumed_j(), 1.0);
    }

    #[test]
    fn paper_random_battery_in_range() {
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            let b = Battery::paper_random(&mut rng);
            assert!((54.0..60.0).contains(&b.capacity_j()));
        }
    }

    #[test]
    fn lifetime_at_idle_matches_paper() {
        let b = Battery::new(54.0);
        let life = b.lifetime_at(12.0);
        assert!((life.as_secs_f64() - 4500.0).abs() < 1e-6);
    }

    #[test]
    fn ledger_attributes_and_totals() {
        let mut l = EnergyLedger::new();
        l.add(EnergyCause::ProtocolTx, 1.0);
        l.add(EnergyCause::ProtocolRx, 2.0);
        l.add(EnergyCause::ProtocolIdle, 3.0);
        l.add(EnergyCause::WorkingIdle, 94.0);
        assert_eq!(l.protocol_overhead_j(), 6.0);
        assert_eq!(l.total_j(), 100.0);
        assert!((l.overhead_ratio() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_ratio_is_zero() {
        assert_eq!(EnergyLedger::new().overhead_ratio(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyLedger::new();
        a.add(EnergyCause::Sleep, 1.5);
        let mut b = EnergyLedger::new();
        b.add(EnergyCause::Sleep, 2.5);
        b.add(EnergyCause::AppTx, 1.0);
        a.merge(&b);
        assert_eq!(a.for_cause(EnergyCause::Sleep), 4.0);
        assert_eq!(a.for_cause(EnergyCause::AppTx), 1.0);
    }

    #[test]
    fn drain_timed_records_and_drains() {
        let mut b = Battery::new(10.0);
        let mut l = EnergyLedger::new();
        let alive = b.drain_timed(
            12.0,
            SimDuration::from_secs(100),
            EnergyCause::WorkingIdle,
            &mut l,
        );
        assert!(alive);
        assert!((b.remaining_j() - 8.8).abs() < 1e-12);
        assert!((l.for_cause(EnergyCause::WorkingIdle) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn drain_timed_records_only_what_the_battery_held() {
        let mut b = Battery::new(0.5);
        let mut l = EnergyLedger::new();
        // Requesting 1.2 J from a 0.5 J battery: ledger gets 0.5 J only.
        let alive = b.drain_timed(
            12.0,
            SimDuration::from_secs(100),
            EnergyCause::WorkingIdle,
            &mut l,
        );
        assert!(!alive);
        assert_eq!(b.remaining_j(), 0.0);
        assert!((l.total_j() - 0.5).abs() < 1e-12);
        assert!((l.total_j() - b.consumed_j()).abs() < 1e-12);
    }

    #[test]
    fn unlimited_battery_survives_heavy_drain() {
        let mut b = Battery::unlimited();
        assert!(b.drain(1e12));
        assert!(!b.is_depleted());
    }

    #[test]
    fn overhead_causes_classified() {
        assert!(EnergyCause::ProtocolTx.is_protocol_overhead());
        assert!(EnergyCause::ProtocolIdle.is_protocol_overhead());
        assert!(!EnergyCause::AppTx.is_protocol_overhead());
        assert!(!EnergyCause::Sleep.is_protocol_overhead());
    }

    #[test]
    fn cause_display_names_are_stable() {
        let names: Vec<String> = EnergyCause::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "protocol-tx",
                "protocol-rx",
                "protocol-idle",
                "app-tx",
                "app-rx",
                "working-idle",
                "sleep"
            ]
        );
    }
}
