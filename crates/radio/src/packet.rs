//! Node identity, frames and airtime.

use std::fmt;

use peas_des::time::SimDuration;

/// Identifier of a sensor node within one simulated network.
///
/// Plain dense indices (`0..n`) so they double as `Vec` positions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id for a dense vector index, checked back into the `u32` id
    /// space (deployments are validated below it at construction).
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    pub fn from_index(idx: usize) -> NodeId {
        // peas-lint: allow(r1-unchecked-panic) -- deployments are validated below the u32 id space; overflow is a construction bug
        NodeId(u32::try_from(idx).expect("node index exceeds the u32 id space"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> NodeId {
        NodeId(v)
    }
}

/// Raw wireless bitrate from Section 5.1: 20 kbps.
pub const PAPER_BITRATE_BPS: u64 = 20_000;

/// PROBE/REPLY frame size from Section 5.1: 25 bytes.
pub const PAPER_CONTROL_FRAME_BYTES: usize = 25;

/// Time a frame of `size_bytes` occupies the channel at `bitrate_bps`.
///
/// # Panics
///
/// Panics if `bitrate_bps` is zero.
///
/// # Examples
///
/// ```
/// use peas_des::time::SimDuration;
/// use peas_radio::packet::{airtime, PAPER_BITRATE_BPS, PAPER_CONTROL_FRAME_BYTES};
///
/// // 25 bytes at 20 kbps = 10 ms on the air.
/// let t = airtime(PAPER_CONTROL_FRAME_BYTES, PAPER_BITRATE_BPS);
/// assert_eq!(t, SimDuration::from_millis(10));
/// ```
pub fn airtime(size_bytes: usize, bitrate_bps: u64) -> SimDuration {
    assert!(bitrate_bps > 0, "bitrate must be positive");
    let bits = size_bytes as u64 * 8;
    SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / bitrate_bps)
}

/// Reception-side information attached to every delivered frame.
///
/// `effective_distance` folds in channel irregularity: under the disc model
/// it equals `distance`; under shadowing a link may "look" longer or
/// shorter. Section 4's fixed-power threshold rule (`S_th`) is exactly a
/// comparison of effective distance against the probing range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RxInfo {
    /// True geometric distance between sender and receiver, meters.
    pub distance: f64,
    /// Distance the link *appears* to have after channel irregularity.
    pub effective_distance: f64,
}

impl RxInfo {
    /// Signal-strength threshold test: does this reception appear at least
    /// as strong as one from `range` meters away? (Section 4, "Nodes with
    /// fixed transmission power".)
    pub fn stronger_than_range(&self, range: f64) -> bool {
        self.effective_distance <= range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frame_airtime_is_10ms() {
        assert_eq!(
            airtime(PAPER_CONTROL_FRAME_BYTES, PAPER_BITRATE_BPS),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn airtime_scales_linearly() {
        assert_eq!(airtime(50, 20_000), SimDuration::from_millis(20));
        assert_eq!(airtime(0, 20_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bitrate must be positive")]
    fn zero_bitrate_rejected() {
        let _ = airtime(10, 0);
    }

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id:?}"), "n42");
        assert_eq!(format!("{id}"), "node 42");
    }

    #[test]
    fn rx_info_threshold_rule() {
        let info = RxInfo {
            distance: 2.5,
            effective_distance: 3.2,
        };
        // Appears to come from 3.2 m: fails a 3 m probing-range filter even
        // though the true distance is 2.5 m.
        assert!(!info.stronger_than_range(3.0));
        assert!(info.stronger_than_range(3.5));
    }
}
