//! Pluggable propagation models.
//!
//! PEAS's design mostly assumes the unit-disc abstraction: "each sensor node
//! may vary its transmission power and choose a power level to cover a
//! circular area given a radius" (Section 2). Section 4 then discusses
//! "irregularities in signal attenuation" under fixed transmission power. We
//! model every such irregularity as a per-link loss term that stretches or
//! shrinks each link's *apparent* distance, expressed through the open
//! [`PropagationModel`] trait:
//!
//! * [`Disc`] — the paper's ideal circle (identity loss);
//! * [`LogNormalShadowing`] — i.i.d. per-link log-normal fading;
//! * [`Terrain`] — deterministic knife-edge diffraction loss over a
//!   height-map raster (geography-dependent links).
//!
//! The trait lives on the *build path only*: `Medium` evaluates
//! [`PropagationModel::effective_distance`] once per edge while
//! precomputing its CSR decode tables (and on the rare unclassified-range
//! fallback query), so per-frame delivery stays a flat table replay with no
//! virtual dispatch. [`PropagationModel::max_reach`] bounds the spatial
//! grid's cell size so candidate enumeration stays a 3×3 bucket scan under
//! any model.
//!
//! Two contracts every implementation must uphold:
//!
//! * **Purity.** `effective_distance` is a pure function of the link —
//!   same link, same answer, forever. Models that want randomness (like
//!   shadowing) must derive it from the link's node ids, not from shared
//!   mutable state; the medium evaluates links in spatial-grid candidate
//!   order and splices chunk-parallel builds, both of which assume
//!   order-independence.
//! * **Symmetry.** `effective_distance` must not depend on which endpoint
//!   transmits: probe/reply exchanges assume links fade identically in
//!   both directions.
//!
//! [`PropagationSpec`] is the cloneable, comparable *recipe* form that
//! lives in `ScenarioConfig` and the `.peas` DSL; [`PropagationSpec::build`]
//! turns it into a boxed model for the medium.

use peas_des::rng::SimRng;
use peas_geom::{ElevationRaster, Point};

use crate::packet::NodeId;

/// Default path-loss exponent `n` (3 = moderately cluttered; 2 would be
/// free space, 4 dense clutter). Flows into the `[radio]` and `[terrain]`
/// scenario defaults.
pub const DEFAULT_PATH_LOSS_EXP: f64 = 3.0;

/// Default shadowing standard deviation, dB. Flows into the `[radio]`
/// scenario default.
pub const DEFAULT_SIGMA_DB: f64 = 4.0;

/// Default diffraction coefficient: the knife-edge loss is applied at
/// full ITU-R P.526 strength.
pub const DEFAULT_DIFFRACTION: f64 = 1.0;

/// Default antenna height above local ground, meters (sensor motes sit
/// near the ground).
pub const DEFAULT_ANTENNA_HEIGHT: f64 = 1.0;

/// Default carrier wavelength, meters (0.125 m ≈ 2.4 GHz).
pub const DEFAULT_WAVELENGTH: f64 = 0.125;

/// One candidate link, as seen at table-build (or fallback-query) time.
///
/// Carries everything any loss model might need: endpoint identities (for
/// per-link random streams), endpoint positions (for geography-dependent
/// loss) and the precomputed true distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Transmitting endpoint.
    pub tx: NodeId,
    /// Receiving endpoint.
    pub rx: NodeId,
    /// Transmitter position.
    pub tx_pos: Point,
    /// Receiver position.
    pub rx_pos: Point,
    /// True Euclidean distance between the endpoints, meters.
    pub distance: f64,
}

/// A wireless propagation model: a per-link, build-time loss term.
///
/// See the module documentation for the purity and symmetry contracts.
pub trait PropagationModel: std::fmt::Debug + Send + Sync {
    /// The distance `link` *appears* to have: the true distance inflated
    /// (or deflated) by this model's loss term. A transmission with
    /// intended range `r` is decodable exactly when the effective
    /// distance is `<= r`.
    fn effective_distance(&self, link: Link) -> f64;

    /// Upper bound on the true distance at which a transmission with
    /// `intended_range` can still be heard. Used to size spatial-grid
    /// cells and bound candidate queries; must satisfy
    /// `effective_distance(l) <= intended_range ⟹ l.distance <= max_reach`
    /// for every possible link (up to a negligible tail for unbounded
    /// fading models, which must document their cap).
    fn max_reach(&self, intended_range: f64) -> f64;
}

/// Boxed models propagate through the same generic constructors as
/// concrete ones (e.g. the output of [`PropagationSpec::build`]).
impl PropagationModel for Box<dyn PropagationModel> {
    fn effective_distance(&self, link: Link) -> f64 {
        (**self).effective_distance(link)
    }

    fn max_reach(&self, intended_range: f64) -> f64 {
        (**self).max_reach(intended_range)
    }
}

/// Ideal unit-disc propagation: a transmission with intended range `r`
/// reaches exactly the nodes within `r` meters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Disc;

impl PropagationModel for Disc {
    fn effective_distance(&self, link: Link) -> f64 {
        link.distance
    }

    fn max_reach(&self, intended_range: f64) -> f64 {
        intended_range
    }
}

/// Log-normal shadowing: each unordered link has a static fading value
/// `X ~ N(0, sigma_db)`, making the link appear to have length
/// `d · 10^(X / (10·path_loss_exp))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormalShadowing {
    /// Path-loss exponent `n` (2 = free space, 3–4 = cluttered).
    pub path_loss_exp: f64,
    /// Standard deviation of the shadowing term, in dB.
    pub sigma_db: f64,
    /// Seed for the per-link fading values (deterministic per link).
    pub seed: u64,
}

impl LogNormalShadowing {
    /// A shadowed channel with explicit parameters.
    pub fn new(path_loss_exp: f64, sigma_db: f64, seed: u64) -> LogNormalShadowing {
        LogNormalShadowing {
            path_loss_exp,
            sigma_db,
            seed,
        }
    }

    /// A moderately harsh shadowed channel at the documented defaults
    /// ([`DEFAULT_PATH_LOSS_EXP`], [`DEFAULT_SIGMA_DB`]).
    pub fn with_defaults(seed: u64) -> LogNormalShadowing {
        LogNormalShadowing::new(DEFAULT_PATH_LOSS_EXP, DEFAULT_SIGMA_DB, seed)
    }
}

impl PropagationModel for LogNormalShadowing {
    fn effective_distance(&self, link: Link) -> f64 {
        let (a, b) = (link.tx, link.rx);
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        // One decoupled stream per unordered link.
        let link_key = ((lo as u64) << 32) | hi as u64;
        let mut rng = SimRng::stream(
            self.seed,
            link_key.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        );
        let x_db = rng.normal(0.0, self.sigma_db);
        link.distance * 10f64.powf(x_db / (10.0 * self.path_loss_exp))
    }

    /// Caps shadowing at +4σ: the chance of a deeper fade is ~3·10⁻⁵ per
    /// link, which the differential tests accept as negligible.
    fn max_reach(&self, intended_range: f64) -> f64 {
        intended_range * 10f64.powf(4.0 * self.sigma_db / (10.0 * self.path_loss_exp))
    }
}

/// Terrain-aware propagation: deterministic knife-edge diffraction loss
/// over an elevation raster, Longley-Rice-flavored but deliberately
/// simple.
///
/// For each link the model walks the tx→rx ground profile in half-cell
/// steps, bilinearly sampling the raster, and finds the dominant
/// obstruction — the sample with the largest Fresnel-Cirier parameter
/// `ν = h · √(2d / (λ·d₁·d₂))`, where `h` is the obstruction's height
/// above the straight antenna-to-antenna sight line and `d₁`/`d₂` its
/// distances to the terminals. The obstruction's excess loss follows the
/// ITU-R P.526 single-knife-edge approximation
/// `J(ν) = 6.9 + 20·log₁₀(√((ν−0.1)² + 1) + ν − 0.1)` dB for `ν > −0.78`
/// (0 dB below — effectively clear line of sight), scaled by the
/// configured `diffraction` coefficient and clamped at ≥ 0 dB.
///
/// The loss maps to an apparent-distance stretch exactly like shadowing:
/// `eff = d · 10^(L / (10·n))`. Because the loss is never negative, a
/// terrain link never appears *shorter* than its true length, so
/// [`PropagationModel::max_reach`] is the intended range itself — terrain
/// never widens the candidate search.
#[derive(Clone, Debug, PartialEq)]
pub struct Terrain {
    raster: ElevationRaster,
    /// Path-loss exponent used to map dB loss to apparent distance.
    path_loss_exp: f64,
    /// Scale on the knife-edge loss (1.0 = full ITU strength).
    diffraction: f64,
    /// Antenna height above local ground, meters.
    antenna_height: f64,
    /// Carrier wavelength, meters.
    wavelength: f64,
}

impl Terrain {
    /// A terrain model over `raster` at the documented defaults.
    pub fn new(raster: ElevationRaster) -> Terrain {
        Terrain::with_params(
            raster,
            DEFAULT_PATH_LOSS_EXP,
            DEFAULT_DIFFRACTION,
            DEFAULT_ANTENNA_HEIGHT,
            DEFAULT_WAVELENGTH,
        )
    }

    /// A terrain model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite or non-positive (the
    /// diffraction coefficient may be 0, disabling the loss term).
    pub fn with_params(
        raster: ElevationRaster,
        path_loss_exp: f64,
        diffraction: f64,
        antenna_height: f64,
        wavelength: f64,
    ) -> Terrain {
        assert!(
            path_loss_exp.is_finite() && path_loss_exp > 0.0,
            "path_loss_exp must be positive, got {path_loss_exp}"
        );
        assert!(
            diffraction.is_finite() && diffraction >= 0.0,
            "diffraction must be non-negative, got {diffraction}"
        );
        assert!(
            antenna_height.is_finite() && antenna_height >= 0.0,
            "antenna_height must be non-negative, got {antenna_height}"
        );
        assert!(
            wavelength.is_finite() && wavelength > 0.0,
            "wavelength must be positive, got {wavelength}"
        );
        Terrain {
            raster,
            path_loss_exp,
            diffraction,
            antenna_height,
            wavelength,
        }
    }

    /// The underlying height map.
    pub fn raster(&self) -> &ElevationRaster {
        &self.raster
    }

    /// Knife-edge excess loss for this link, dB (always ≥ 0).
    pub fn diffraction_loss_db(&self, tx_pos: Point, rx_pos: Point, distance: f64) -> f64 {
        if self.diffraction == 0.0 {
            return 0.0;
        }
        // Walk the profile in a canonical direction: the sample set is the
        // same either way, but floating-point rounding in the interpolation
        // is not, and the trait contract promises bit-exact symmetry.
        let (tx_pos, rx_pos) = if (rx_pos.x, rx_pos.y) < (tx_pos.x, tx_pos.y) {
            (rx_pos, tx_pos)
        } else {
            (tx_pos, rx_pos)
        };
        let step = self.raster.cell_size() * 0.5;
        if !(distance.is_finite() && distance > step) {
            // Endpoints within one sample of each other: no interior
            // profile to obstruct.
            return 0.0;
        }
        let tx_h = self.raster.elevation_at(tx_pos) + self.antenna_height;
        let rx_h = self.raster.elevation_at(rx_pos) + self.antenna_height;
        // Dominant obstruction: the interior profile sample with the
        // largest Fresnel parameter ν.
        let mut nu_max = f64::NEG_INFINITY;
        let samples = (distance / step).ceil() as usize;
        for i in 1..samples {
            let t = i as f64 / samples as f64;
            let p = Point::new(
                tx_pos.x + (rx_pos.x - tx_pos.x) * t,
                tx_pos.y + (rx_pos.y - tx_pos.y) * t,
            );
            let d1 = distance * t;
            let d2 = distance - d1;
            // Height of the terrain above the straight sight line.
            let los = tx_h + (rx_h - tx_h) * t;
            let h = self.raster.elevation_at(p) - los;
            let nu = h * (2.0 * distance / (self.wavelength * d1 * d2)).sqrt();
            nu_max = nu_max.max(nu);
        }
        // ITU-R P.526 approximation; below ν ≈ −0.78 the obstruction is
        // clear of the first Fresnel zone and the excess loss vanishes.
        if nu_max <= -0.78 {
            return 0.0;
        }
        let j = 6.9 + 20.0 * ((nu_max - 0.1).hypot(1.0) + nu_max - 0.1).log10();
        (self.diffraction * j).max(0.0)
    }
}

impl PropagationModel for Terrain {
    fn effective_distance(&self, link: Link) -> f64 {
        let loss_db = self.diffraction_loss_db(link.tx_pos, link.rx_pos, link.distance);
        link.distance * 10f64.powf(loss_db / (10.0 * self.path_loss_exp))
    }

    /// Terrain loss is never negative, so a link never appears shorter
    /// than it is: the intended range already bounds the true distance.
    fn max_reach(&self, intended_range: f64) -> f64 {
        intended_range
    }
}

/// How a [`TerrainSpec`] obtains its elevation samples.
#[derive(Clone, Debug, PartialEq)]
pub enum HeightMap {
    /// Row-major samples shipped inline (must have `cols × rows` values).
    Inline(Vec<f64>),
    /// Synthetic rolling terrain from [`ElevationRaster::generate`].
    Generated {
        /// Seed of the terrain generator's RNG stream.
        seed: u64,
        /// Peak mound height, meters.
        amplitude: f64,
        /// Number of Gaussian mounds.
        hills: usize,
    },
}

/// The recipe for a [`Terrain`] model: everything needed to rebuild the
/// raster deterministically, in a cloneable/comparable form for
/// `ScenarioConfig`.
#[derive(Clone, Debug, PartialEq)]
pub struct TerrainSpec {
    /// Raster sample columns.
    pub cols: usize,
    /// Raster sample rows.
    pub rows: usize,
    /// Raster lattice spacing, meters.
    pub cell_size: f64,
    /// Elevation samples, inline or generated.
    pub heights: HeightMap,
    /// Path-loss exponent mapping dB loss to apparent distance.
    pub path_loss_exp: f64,
    /// Scale on the knife-edge diffraction loss.
    pub diffraction: f64,
    /// Antenna height above local ground, meters.
    pub antenna_height: f64,
    /// Carrier wavelength, meters.
    pub wavelength: f64,
}

impl TerrainSpec {
    /// A generated-terrain spec at the documented parameter defaults.
    pub fn generated(cols: usize, rows: usize, cell_size: f64, seed: u64) -> TerrainSpec {
        TerrainSpec {
            cols,
            rows,
            cell_size,
            heights: HeightMap::Generated {
                seed,
                amplitude: 8.0,
                hills: 8,
            },
            path_loss_exp: DEFAULT_PATH_LOSS_EXP,
            diffraction: DEFAULT_DIFFRACTION,
            antenna_height: DEFAULT_ANTENNA_HEIGHT,
            wavelength: DEFAULT_WAVELENGTH,
        }
    }

    /// Materializes the elevation raster.
    ///
    /// # Errors
    ///
    /// Returns the raster constructor's message for malformed dimensions,
    /// cell size or inline data.
    pub fn raster(&self) -> Result<ElevationRaster, String> {
        match &self.heights {
            HeightMap::Inline(data) => {
                ElevationRaster::new(self.cols, self.rows, self.cell_size, data.clone())
            }
            HeightMap::Generated {
                seed,
                amplitude,
                hills,
            } => {
                if self.cols < 2 || self.rows < 2 {
                    return Err(format!(
                        "raster needs at least 2x2 samples, got {}x{}",
                        self.cols, self.rows
                    ));
                }
                if !(self.cell_size.is_finite() && self.cell_size > 0.0) {
                    return Err(format!(
                        "cell_size must be positive, got {}",
                        self.cell_size
                    ));
                }
                if !(amplitude.is_finite() && *amplitude >= 0.0) {
                    return Err(format!(
                        "amplitude must be finite and non-negative, got {amplitude}"
                    ));
                }
                Ok(ElevationRaster::generate(
                    self.cols,
                    self.rows,
                    self.cell_size,
                    *seed,
                    *amplitude,
                    *hills,
                ))
            }
        }
    }

    /// Validates the spec without building the raster's sample payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.path_loss_exp.is_finite() && self.path_loss_exp > 0.0) {
            return Err("terrain path_loss_exp must be positive".into());
        }
        if !(self.diffraction.is_finite() && self.diffraction >= 0.0) {
            return Err("terrain diffraction must be non-negative".into());
        }
        if !(self.antenna_height.is_finite() && self.antenna_height >= 0.0) {
            return Err("terrain antenna_height must be non-negative".into());
        }
        if !(self.wavelength.is_finite() && self.wavelength > 0.0) {
            return Err("terrain wavelength must be positive".into());
        }
        self.raster().map(|_| ())
    }
}

/// The cloneable, comparable recipe for a propagation model: what
/// `ScenarioConfig` stores and the `.peas` `[radio] model` key selects.
/// [`PropagationSpec::build`] produces the boxed trait object the medium
/// consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum PropagationSpec {
    /// Ideal unit-disc propagation ([`Disc`]).
    #[default]
    Disc,
    /// Log-normal shadowing ([`LogNormalShadowing`]).
    Shadowed {
        /// Path-loss exponent `n`.
        path_loss_exp: f64,
        /// Shadowing standard deviation, dB.
        sigma_db: f64,
        /// Seed for the per-link fading values.
        seed: u64,
    },
    /// Terrain knife-edge diffraction over a height map ([`Terrain`]).
    Terrain(TerrainSpec),
}

impl PropagationSpec {
    /// A shadowed channel at the documented defaults
    /// ([`DEFAULT_PATH_LOSS_EXP`], [`DEFAULT_SIGMA_DB`]).
    pub fn shadowed(seed: u64) -> PropagationSpec {
        PropagationSpec::Shadowed {
            path_loss_exp: DEFAULT_PATH_LOSS_EXP,
            sigma_db: DEFAULT_SIGMA_DB,
            seed,
        }
    }

    /// Validates the recipe (notably the terrain raster).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PropagationSpec::Disc => Ok(()),
            PropagationSpec::Shadowed {
                path_loss_exp,
                sigma_db,
                ..
            } => {
                if !(path_loss_exp.is_finite() && *path_loss_exp > 0.0) {
                    return Err("path_loss_exp must be positive".into());
                }
                if !(sigma_db.is_finite() && *sigma_db >= 0.0) {
                    return Err("sigma_db must be non-negative".into());
                }
                Ok(())
            }
            PropagationSpec::Terrain(spec) => spec.validate(),
        }
    }

    /// Builds the model this recipe describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (callers validate configs before
    /// building worlds; see [`PropagationSpec::validate`]).
    pub fn build(&self) -> Box<dyn PropagationModel> {
        match self {
            PropagationSpec::Disc => Box::new(Disc),
            PropagationSpec::Shadowed {
                path_loss_exp,
                sigma_db,
                seed,
            } => Box::new(LogNormalShadowing::new(*path_loss_exp, *sigma_db, *seed)),
            PropagationSpec::Terrain(spec) => {
                let raster = spec
                    .raster()
                    // peas-lint: allow(r1-unchecked-panic) -- configs are validated before worlds are built; see the panic docs
                    .unwrap_or_else(|e| panic!("invalid terrain spec: {e}"));
                Box::new(Terrain::with_params(
                    raster,
                    spec.path_loss_exp,
                    spec.diffraction,
                    spec.antenna_height,
                    spec.wavelength,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32, dist: f64) -> Link {
        Link {
            tx: NodeId(a),
            rx: NodeId(b),
            tx_pos: Point::new(0.0, 0.0),
            rx_pos: Point::new(dist, 0.0),
            distance: dist,
        }
    }

    #[test]
    fn disc_is_identity() {
        assert_eq!(Disc.effective_distance(link(1, 2, 7.5)), 7.5);
        assert_eq!(Disc.max_reach(3.0), 3.0);
    }

    #[test]
    fn shadowing_is_symmetric_and_stable() {
        let c = LogNormalShadowing::with_defaults(99);
        let d1 = c.effective_distance(link(3, 8, 5.0));
        let d2 = c.effective_distance(link(8, 3, 5.0));
        let d3 = c.effective_distance(link(3, 8, 5.0));
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
    }

    #[test]
    fn different_links_fade_differently() {
        let c = LogNormalShadowing::with_defaults(99);
        let d1 = c.effective_distance(link(0, 1, 5.0));
        let d2 = c.effective_distance(link(0, 2, 5.0));
        assert_ne!(d1, d2);
    }

    #[test]
    fn shadowing_is_zero_mean_in_log_domain() {
        let c = LogNormalShadowing::with_defaults(7);
        let n = 20_000u32;
        let mean_log: f64 = (0..n)
            .map(|i| c.effective_distance(link(i, i + 100_000, 10.0)).ln())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_log - 10.0f64.ln()).abs() < 0.02,
            "mean log-distance {mean_log}"
        );
    }

    #[test]
    fn max_reach_bounds_effective_range() {
        let c = LogNormalShadowing::with_defaults(11);
        let reach = c.max_reach(10.0);
        assert!(reach > 10.0);
        // Any link that appears within 10 m must have true length < reach
        // (equivalently: links longer than reach never get in). Sample a few.
        for i in 0..2000u32 {
            let true_dist = reach * 1.001;
            let eff = c.effective_distance(link(i, i + 1, true_dist));
            // The chance of a > +4σ fade is ~3e-5; none expected here.
            assert!(eff > 10.0, "link {i} faded beyond 4 sigma");
        }
    }

    #[test]
    fn scales_linearly_with_distance() {
        let c = LogNormalShadowing::with_defaults(3);
        let e1 = c.effective_distance(link(1, 2, 1.0));
        let e5 = c.effective_distance(link(1, 2, 5.0));
        assert!((e5 / e1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn defaults_flow_from_the_named_constants() {
        let c = LogNormalShadowing::with_defaults(4);
        assert_eq!(c.path_loss_exp, DEFAULT_PATH_LOSS_EXP);
        assert_eq!(c.sigma_db, DEFAULT_SIGMA_DB);
        let spec = PropagationSpec::shadowed(4);
        assert_eq!(
            spec,
            PropagationSpec::Shadowed {
                path_loss_exp: DEFAULT_PATH_LOSS_EXP,
                sigma_db: DEFAULT_SIGMA_DB,
                seed: 4
            }
        );
    }

    fn flat_terrain() -> Terrain {
        Terrain::new(ElevationRaster::new(6, 6, 10.0, vec![0.0; 36]).expect("valid"))
    }

    /// A single 30 m wall across the middle of a 50 × 50 m flat field.
    fn wall_terrain() -> Terrain {
        let mut data = vec![0.0; 36];
        for c in 0..6 {
            data[2 * 6 + c] = 30.0; // the y = 20 m lattice row
        }
        Terrain::new(ElevationRaster::new(6, 6, 10.0, data).expect("valid"))
    }

    fn terrain_link(a: (f64, f64), b: (f64, f64)) -> Link {
        let (pa, pb) = (Point::new(a.0, a.1), Point::new(b.0, b.1));
        Link {
            tx: NodeId(0),
            rx: NodeId(1),
            tx_pos: pa,
            rx_pos: pb,
            distance: pa.distance(pb),
        }
    }

    #[test]
    fn flat_terrain_with_clear_los_is_nearly_disc() {
        let t = flat_terrain();
        let l = terrain_link((5.0, 5.0), (25.0, 5.0));
        // Grazing over flat ground: ν is mildly negative (the sight line
        // sits one antenna height up), so the loss is tiny but may not be
        // exactly zero. It must never shrink the link.
        let eff = t.effective_distance(l);
        assert!(eff >= l.distance);
        assert!(eff <= l.distance * 1.5, "flat terrain lost too much: {eff}");
        assert_eq!(t.max_reach(10.0), 10.0);
    }

    #[test]
    fn obstruction_stretches_the_link() {
        let wall = wall_terrain();
        let flat = flat_terrain();
        // Link crossing the wall at y = 20.
        let blocked = terrain_link((25.0, 5.0), (25.0, 35.0));
        let open = terrain_link((25.0, 25.0), (25.0, 45.0));
        let blocked_stretch = wall.effective_distance(blocked) / blocked.distance;
        let open_stretch = wall.effective_distance(open) / open.distance;
        let flat_stretch = flat.effective_distance(blocked) / blocked.distance;
        assert!(
            blocked_stretch > flat_stretch + 0.2,
            "wall had no effect: blocked {blocked_stretch}, flat {flat_stretch}"
        );
        assert!(
            blocked_stretch > open_stretch,
            "same-length open link lost as much as the blocked one"
        );
        // Deterministic: same link, same answer.
        assert_eq!(
            wall.effective_distance(blocked),
            wall.effective_distance(blocked)
        );
    }

    #[test]
    fn terrain_loss_is_symmetric() {
        let t = wall_terrain();
        let ab = terrain_link((25.0, 5.0), (25.0, 35.0));
        let ba = terrain_link((25.0, 35.0), (25.0, 5.0));
        assert_eq!(t.effective_distance(ab), t.effective_distance(ba));
    }

    #[test]
    fn zero_diffraction_disables_the_loss_term() {
        let raster = wall_terrain().raster().clone();
        let t = Terrain::with_params(raster, 3.0, 0.0, 1.0, 0.125);
        let l = terrain_link((25.0, 5.0), (25.0, 35.0));
        assert_eq!(t.effective_distance(l), l.distance);
    }

    #[test]
    fn spec_round_trips_through_build() {
        let spec = PropagationSpec::Terrain(TerrainSpec::generated(6, 6, 10.0, 9));
        assert!(spec.validate().is_ok());
        let model = spec.build();
        let l = terrain_link((5.0, 5.0), (35.0, 35.0));
        // Two independent builds answer identically (pure recipe).
        assert_eq!(
            model.effective_distance(l),
            spec.build().effective_distance(l)
        );
    }

    #[test]
    fn invalid_terrain_specs_are_rejected() {
        let mut spec = TerrainSpec::generated(6, 6, 10.0, 1);
        spec.cell_size = 0.0;
        assert!(spec.validate().unwrap_err().contains("cell_size"));
        let mut spec = TerrainSpec::generated(6, 6, 10.0, 1);
        spec.heights = HeightMap::Inline(vec![0.0; 35]);
        assert!(spec.validate().unwrap_err().contains("35 samples"));
        let mut spec = TerrainSpec::generated(1, 6, 10.0, 1);
        spec.heights = HeightMap::Inline(vec![0.0; 6]);
        assert!(spec.validate().unwrap_err().contains("at least 2x2"));
        let mut spec = TerrainSpec::generated(6, 6, 10.0, 1);
        spec.wavelength = 0.0;
        assert!(spec.validate().unwrap_err().contains("wavelength"));
    }

    #[test]
    #[should_panic(expected = "invalid terrain spec")]
    fn building_an_invalid_spec_panics() {
        let mut spec = TerrainSpec::generated(6, 6, 10.0, 1);
        spec.cell_size = -1.0;
        let _ = PropagationSpec::Terrain(spec).build();
    }
}
