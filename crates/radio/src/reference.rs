//! Brute-force reference medium for differential testing.
//!
//! [`ReferenceMedium`] re-implements the delivery semantics of
//! [`Medium`](crate::Medium) in the most obvious way possible: it remembers
//! every transmission forever and decides collisions at completion time by an
//! O(n²) scan for overlapping transmission intervals, instead of maintaining
//! incremental per-node arrival lists and corruption flags. Property tests
//! drive both implementations through identical schedules and require
//! identical deliveries, so a bookkeeping bug in the optimized dense-storage
//! medium cannot hide.
//!
//! Two deliberate points of contact with the production implementation:
//!
//! * random loss is drawn once per decodable receiver in the spatial grid's
//!   candidate order (bucket row-major, insertion order within a bucket) —
//!   that order is part of the medium's documented determinism contract, and
//!   following it here keeps the two implementations' RNG streams aligned;
//! * the decodable-receiver *set* the grid produces is re-verified on every
//!   broadcast by brute force over all nodes, so the shared enumeration
//!   cannot mask a grid query bug.
//!
//! Like the production medium, the reference assumes punctual completion:
//! [`ReferenceMedium::complete`] must be called at each transmission's end
//! time, before any broadcast starting at that same instant.

use peas_des::rng::SimRng;
use peas_des::time::SimTime;
use peas_geom::{Field, Point, SpatialGrid};

use crate::medium::{derived_grid_cell, Delivery, RxOutcome};
use crate::packet::{airtime, NodeId, RxInfo};
use crate::propagation::{Link, PropagationModel};

/// Handle to one transmission started on a [`ReferenceMedium`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefTxId(usize);

struct RefTx {
    sender: NodeId,
    start: SimTime,
    end: SimTime,
    completed: bool,
    /// Decodable receivers in grid candidate order: (receiver, info, lost).
    receivers: Vec<(NodeId, RxInfo, bool)>,
}

/// The brute-force oracle. Grows without bound (it never forgets a
/// transmission); only suitable for tests.
pub struct ReferenceMedium {
    positions: Vec<Point>,
    grid: SpatialGrid,
    model: Box<dyn PropagationModel>,
    bitrate_bps: u64,
    loss_rate: f64,
    txs: Vec<RefTx>,
}

impl ReferenceMedium {
    /// Mirrors [`Medium::new`](crate::Medium::new).
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`, `bitrate_bps` is zero, or
    /// any position lies outside `field`.
    pub fn new<M: PropagationModel + 'static>(
        field: Field,
        positions: &[Point],
        model: M,
        bitrate_bps: u64,
        loss_rate: f64,
    ) -> ReferenceMedium {
        ReferenceMedium::with_range_classes(field, positions, model, bitrate_bps, loss_rate, &[])
    }

    /// Mirrors [`Medium::with_range_classes`](crate::Medium::with_range_classes):
    /// derives the same bucket-grid cell size from `classes`, so the
    /// reference's candidate enumeration order — and therefore its RNG
    /// stream — stays aligned with the production medium's. The reference
    /// deliberately keeps querying the grid live instead of precomputing
    /// decode rows; that independence is the point of the oracle.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`, `bitrate_bps` is zero, any
    /// position lies outside `field`, or any class is not strictly positive
    /// and finite.
    pub fn with_range_classes<M: PropagationModel + 'static>(
        field: Field,
        positions: &[Point],
        model: M,
        bitrate_bps: u64,
        loss_rate: f64,
        classes: &[f64],
    ) -> ReferenceMedium {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate {loss_rate} not in [0,1]"
        );
        assert!(bitrate_bps > 0, "bitrate must be positive");
        let mut grid = SpatialGrid::new(field, derived_grid_cell(&model, classes));
        for (i, &p) in positions.iter().enumerate() {
            assert!(field.contains(p), "node {i} at {p:?} outside the field");
            grid.insert(i, p);
        }
        ReferenceMedium {
            positions: positions.to_vec(),
            grid,
            model: Box::new(model),
            bitrate_bps,
            loss_rate,
            txs: Vec::new(),
        }
    }

    /// Mirrors [`Medium::start_broadcast`](crate::Medium::start_broadcast);
    /// returns the handle and the transmission's end time.
    ///
    /// # Panics
    ///
    /// Panics if `intended_range` is not strictly positive, or if the grid's
    /// candidate set disagrees with a brute-force membership scan.
    pub fn start_broadcast(
        &mut self,
        now: SimTime,
        sender: NodeId,
        intended_range: f64,
        size_bytes: usize,
        rng: &mut SimRng,
    ) -> (RefTxId, SimTime) {
        assert!(intended_range > 0.0, "intended range must be positive");
        let end = now + airtime(size_bytes, self.bitrate_bps);
        let sender_pos = self.positions[sender.index()];
        let reach = self.model.max_reach(intended_range);

        let mut receivers = Vec::new();
        for (idx, pos) in self.grid.within_entries(sender_pos, reach) {
            if idx == sender.index() {
                continue;
            }
            let rx = NodeId::from_index(idx);
            let dist = sender_pos.distance(pos);
            let eff = self.model.effective_distance(Link {
                tx: sender,
                rx,
                tx_pos: sender_pos,
                rx_pos: pos,
                distance: dist,
            });
            if eff > intended_range {
                continue;
            }
            let lost = rng.bernoulli(self.loss_rate);
            let info = RxInfo {
                distance: dist,
                effective_distance: eff,
            };
            receivers.push((rx, info, lost));
        }

        // Independent membership check: every node, no grid.
        let mut from_grid: Vec<u32> = receivers.iter().map(|(rx, _, _)| rx.0).collect();
        from_grid.sort_unstable();
        let mut brute: Vec<u32> = (0..self.positions.len())
            .filter(|&i| i != sender.index())
            .filter(|&i| {
                let dist = sender_pos.distance(self.positions[i]);
                dist <= reach
                    && self.model.effective_distance(Link {
                        tx: sender,
                        rx: NodeId::from_index(i),
                        tx_pos: sender_pos,
                        rx_pos: self.positions[i],
                        distance: dist,
                    }) <= intended_range
            })
            .map(|i| NodeId::from_index(i).0)
            .collect();
        brute.sort_unstable();
        assert_eq!(
            from_grid, brute,
            "grid candidate set disagrees with brute-force membership"
        );

        self.txs.push(RefTx {
            sender,
            start: now,
            end,
            completed: false,
            receivers,
        });
        (RefTxId(self.txs.len() - 1), end)
    }

    /// Mirrors [`Medium::complete`](crate::Medium::complete): reports every
    /// decodable receiver's outcome. A copy at receiver `r` collides exactly
    /// when some other transmission's interval strictly overlaps this one's
    /// and `r` is that transmission's sender or one of its decodable
    /// receivers.
    ///
    /// # Panics
    ///
    /// Panics if `tx` was already completed.
    pub fn complete(&mut self, tx: RefTxId) -> Vec<Delivery> {
        assert!(
            !self.txs[tx.0].completed,
            "reference transmission completed twice"
        );
        self.txs[tx.0].completed = true;
        let (start, end, nrx) = {
            let t = &self.txs[tx.0];
            (t.start, t.end, t.receivers.len())
        };
        let mut deliveries = Vec::with_capacity(nrx);
        for i in 0..nrx {
            let (rx, info, lost) = self.txs[tx.0].receivers[i];
            let collided = self.txs.iter().enumerate().any(|(j, other)| {
                j != tx.0
                    && other.start < end
                    && start < other.end
                    && (other.sender == rx || other.receivers.iter().any(|&(r, _, _)| r == rx))
            });
            let outcome = if collided {
                RxOutcome::Collision
            } else if lost {
                RxOutcome::RandomLoss
            } else {
                RxOutcome::Ok
            };
            deliveries.push(Delivery {
                receiver: rx,
                info,
                outcome,
            });
        }
        deliveries
    }
}
