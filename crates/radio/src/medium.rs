//! The shared broadcast medium.
//!
//! Models the channel effects PEAS cares about (Section 4 "Compensate packet
//! losses"): receiver-side collisions between overlapping transmissions,
//! uniform random frame loss, carrier sensing before transmitting, and
//! half-duplex radios (a transmitting node hears nothing).
//!
//! The medium is *passive*: the simulator calls [`Medium::start_broadcast`]
//! when a node transmits, schedules a delivery event at the returned end
//! time, and calls [`Medium::complete`] there to learn which receivers got
//! the frame intact. Whether a receiver was awake is the simulator's
//! business — the medium reports physical reception only.
//!
//! ## Storage and determinism
//!
//! In-flight transmissions live in dense, slot-indexed storage: a slot (and
//! its receiver-list allocation) is recycled through a free list once its
//! transmission completes, so the steady-state hot path performs no heap
//! allocation. Random loss is drawn once per decodable receiver, in
//! [`SpatialGrid`] candidate order (bucket row-major, insertion order within
//! a bucket); that draw order is part of the medium's determinism contract
//! and is relied upon by the differential tests against the brute-force
//! reference implementation (see `reference.rs`).

use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};
use peas_geom::{Field, Point, SpatialGrid};

use crate::channel::Channel;
use crate::packet::{airtime, NodeId, RxInfo};

/// Identifier of one in-flight transmission.
///
/// Packs the dense storage slot (low 32 bits, recycled between
/// transmissions) with a per-slot generation counter (high 32 bits), so
/// every handle stays unique over the medium's lifetime even though slots
/// are reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TxId(u64);

impl TxId {
    fn pack(slot: u32, generation: u32) -> TxId {
        TxId(((generation as u64) << 32) | slot as u64)
    }

    /// Dense storage index of this transmission: unique among transmissions
    /// in flight at the same instant, recycled after completion. Useful as
    /// a direct array index for caller-side per-transmission state.
    pub fn slot(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A started broadcast: schedule the completion at `end`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transmission {
    /// Handle to pass back to [`Medium::complete`].
    pub id: TxId,
    /// Time the frame occupies the channel.
    pub airtime: SimDuration,
    /// Instant the transmission finishes.
    pub end: SimTime,
}

/// The outcome of one receiver's copy of a completed frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// The physical receiver.
    pub receiver: NodeId,
    /// Link measurements for threshold filtering.
    pub info: RxInfo,
    /// How the copy fared.
    pub outcome: RxOutcome,
}

impl Delivery {
    /// Whether the frame arrived intact.
    pub fn is_ok(&self) -> bool {
        self.outcome == RxOutcome::Ok
    }
}

/// Per-copy reception result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxOutcome {
    /// Received intact.
    Ok,
    /// Destroyed by an overlapping transmission at this receiver.
    Collision,
    /// Dropped by the uniform loss process.
    RandomLoss,
}

/// Running totals the medium keeps for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediumStats {
    /// Broadcasts started.
    pub frames_sent: u64,
    /// Copies delivered intact.
    pub deliveries_ok: u64,
    /// Copies destroyed by collisions.
    pub collisions: u64,
    /// Copies dropped by random loss.
    pub random_losses: u64,
}

/// Marks an [`Arrival`] as the transmitting node's own (half-duplex) slot
/// occupation rather than a receiver entry.
const SENDER_ENTRY: u32 = u32::MAX;

/// One transmission currently arriving at a node.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    /// Storage slot of the transmission.
    slot: u32,
    /// Index into that slot's receiver list, or [`SENDER_ENTRY`] when the
    /// node is the transmission's sender.
    entry: u32,
}

/// One receiver's copy of an in-flight frame.
#[derive(Clone, Copy, Debug)]
struct RxEntry {
    rx: NodeId,
    info: RxInfo,
    /// Dropped by the uniform loss process.
    lost: bool,
    /// Destroyed by an overlapping transmission at this receiver.
    corrupted: bool,
}

/// Dense per-slot transmission state. The `receivers` allocation is kept
/// across reuse so steady-state broadcasts allocate nothing.
struct TxSlot {
    generation: u32,
    active: bool,
    sender: NodeId,
    end: SimTime,
    receivers: Vec<RxEntry>,
}

/// The broadcast medium shared by all nodes of one network.
///
/// # Examples
///
/// ```
/// use peas_des::rng::SimRng;
/// use peas_des::time::SimTime;
/// use peas_geom::{Field, Point};
/// use peas_radio::{Channel, Medium, NodeId};
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
/// let mut medium = Medium::new(Field::new(10.0, 10.0), &positions, Channel::Disc, 20_000, 0.0);
/// let mut rng = SimRng::new(1);
///
/// let tx = medium.start_broadcast(SimTime::ZERO, NodeId(0), 3.0, 25, &mut rng);
/// let deliveries = medium.complete(tx.id);
/// assert_eq!(deliveries.len(), 1);
/// assert!(deliveries[0].is_ok());
/// ```
pub struct Medium {
    positions: Vec<Point>,
    grid: SpatialGrid,
    channel: Channel,
    bitrate_bps: u64,
    loss_rate: f64,
    /// Slot-indexed in-flight transmissions; inactive slots are listed in
    /// `free` and recycled by the next broadcast.
    slots: Vec<TxSlot>,
    free: Vec<u32>,
    /// Per node: transmissions currently arriving there (plus its own).
    arrivals: Vec<Vec<Arrival>>,
    /// Ongoing transmissions for carrier sensing: (sender pos, range, end).
    on_air: Vec<(Point, f64, SimTime)>,
    /// Reused buffer for the in-reach candidates of one broadcast.
    scratch: Vec<(usize, Point)>,
    stats: MediumStats,
}

impl Medium {
    /// Creates a medium over stationary nodes at `positions`.
    ///
    /// `loss_rate` is the per-copy uniform drop probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`, `bitrate_bps` is zero, or
    /// any position lies outside `field`.
    pub fn new(
        field: Field,
        positions: &[Point],
        channel: Channel,
        bitrate_bps: u64,
        loss_rate: f64,
    ) -> Medium {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate {loss_rate} not in [0,1]"
        );
        assert!(bitrate_bps > 0, "bitrate must be positive");
        let mut grid = SpatialGrid::new(field, 10.0);
        for (i, &p) in positions.iter().enumerate() {
            assert!(field.contains(p), "node {i} at {p:?} outside the field");
            grid.insert(i, p);
        }
        Medium {
            positions: positions.to_vec(),
            grid,
            channel,
            bitrate_bps,
            loss_rate,
            slots: Vec::new(),
            free: Vec::new(),
            arrivals: vec![Vec::new(); positions.len()],
            on_air: Vec::new(),
            scratch: Vec::new(),
            stats: MediumStats::default(),
        }
    }

    /// Number of nodes on this medium.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// The propagation model in use.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Whether `node` would sense the channel busy at `now` (some ongoing
    /// transmission is audible at its position).
    pub fn carrier_busy(&mut self, node: NodeId, now: SimTime) -> bool {
        let mut i = 0;
        while i < self.on_air.len() {
            if self.on_air[i].2 <= now {
                self.on_air.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let pos = self.positions[node.index()];
        self.on_air
            .iter()
            .any(|&(sender_pos, range, _)| sender_pos.within(pos, range))
    }

    /// Starts a broadcast from `sender` with transmission power chosen to
    /// cover `intended_range` meters, carrying `size_bytes` of payload.
    ///
    /// Returns the transmission handle and end time; the caller must invoke
    /// [`Medium::complete`] once the simulated clock reaches `end`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range or `intended_range` is not
    /// strictly positive.
    pub fn start_broadcast(
        &mut self,
        now: SimTime,
        sender: NodeId,
        intended_range: f64,
        size_bytes: usize,
        rng: &mut SimRng,
    ) -> Transmission {
        assert!(intended_range > 0.0, "intended range must be positive");
        let duration = airtime(size_bytes, self.bitrate_bps);
        let end = now + duration;
        self.stats.frames_sent += 1;

        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(!s.active, "free list held an active slot");
                s.generation = s.generation.wrapping_add(1);
                s.active = true;
                s.sender = sender;
                s.end = end;
                s.receivers.clear();
                slot
            }
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "too many in-flight transmissions"
                );
                self.slots.push(TxSlot {
                    generation: 0,
                    active: true,
                    sender,
                    end,
                    receivers: Vec::new(),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let id = TxId::pack(slot, self.slots[slot as usize].generation);

        let sender_pos = self.positions[sender.index()];
        let reach = self.channel.max_reach(intended_range);
        // Sender occupies its own radio (half-duplex): its entry corrupts
        // any frame arriving during this transmission.
        self.note_arrival(slot, SENDER_ENTRY, sender);
        let mut in_reach = std::mem::take(&mut self.scratch);
        in_reach.clear();
        in_reach.extend(self.grid.within_entries(sender_pos, reach));
        for &(idx, pos) in &in_reach {
            if idx == sender.index() {
                continue;
            }
            let rx = NodeId(idx as u32);
            let dist = sender_pos.distance(pos);
            let eff = self.channel.effective_distance(sender, rx, dist);
            if eff > intended_range {
                continue; // too weak to decode at this power level
            }
            let lost = rng.bernoulli(self.loss_rate);
            let entry = self.slots[slot as usize].receivers.len() as u32;
            self.slots[slot as usize].receivers.push(RxEntry {
                rx,
                info: RxInfo {
                    distance: dist,
                    effective_distance: eff,
                },
                lost,
                corrupted: false,
            });
            self.note_arrival(slot, entry, rx);
        }
        self.scratch = in_reach;
        self.on_air.push((sender_pos, reach, end));
        Transmission {
            id,
            airtime: duration,
            end,
        }
    }

    /// Registers that transmission `slot` is arriving at `node` (as receiver
    /// entry `entry`, or as the sender itself), corrupting any overlap in
    /// both directions.
    fn note_arrival(&mut self, slot: u32, entry: u32, node: NodeId) {
        let n = node.index();
        // All stored arrivals still have end > "now" (completed ones are
        // removed at their end instant), so any existing entry overlaps.
        // Corruption of a sender's own slot occupation has no observable
        // effect (the sender hears nothing anyway), so only receiver
        // entries carry the flag.
        if !self.arrivals[n].is_empty() {
            for k in 0..self.arrivals[n].len() {
                let a = self.arrivals[n][k];
                if a.entry != SENDER_ENTRY {
                    self.slots[a.slot as usize].receivers[a.entry as usize].corrupted = true;
                }
            }
            if entry != SENDER_ENTRY {
                self.slots[slot as usize].receivers[entry as usize].corrupted = true;
            }
        }
        self.arrivals[n].push(Arrival { slot, entry });
    }

    /// Drops `node`'s arrival marker for `slot` (order-insensitive).
    fn remove_arrival(&mut self, node: NodeId, slot: u32) {
        let list = &mut self.arrivals[node.index()];
        let pos = list
            .iter()
            .position(|a| a.slot == slot)
            .expect("arrival bookkeeping out of sync");
        list.swap_remove(pos);
    }

    /// Completes a transmission, reporting every physical receiver's
    /// outcome. Must be called exactly once per started broadcast, at (or
    /// after) its `end` time.
    ///
    /// # Panics
    ///
    /// Panics if `tx` was never started or was already completed.
    pub fn complete(&mut self, tx: TxId) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.complete_into(tx, &mut out);
        out
    }

    /// Like [`Medium::complete`], but writes the deliveries into a
    /// caller-owned buffer (cleared first) so the per-transmission
    /// allocation can be reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `tx` was never started or was already completed.
    pub fn complete_into(&mut self, tx: TxId, out: &mut Vec<Delivery>) {
        out.clear();
        let slot = tx.slot();
        let known = self
            .slots
            .get(slot)
            .is_some_and(|s| s.active && s.generation == tx.generation());
        assert!(
            known,
            "complete() called for unknown or already-completed transmission"
        );
        let sender = self.slots[slot].sender;
        self.remove_arrival(sender, slot as u32);
        for i in 0..self.slots[slot].receivers.len() {
            let e = self.slots[slot].receivers[i];
            self.remove_arrival(e.rx, slot as u32);
            let outcome = if e.corrupted {
                self.stats.collisions += 1;
                RxOutcome::Collision
            } else if e.lost {
                self.stats.random_losses += 1;
                RxOutcome::RandomLoss
            } else {
                self.stats.deliveries_ok += 1;
                RxOutcome::Ok
            };
            out.push(Delivery {
                receiver: e.rx,
                info: e.info,
                outcome,
            });
        }
        self.slots[slot].active = false;
        self.free.push(slot as u32);
    }

    /// Medium-wide counters.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }
}

impl std::fmt::Debug for Medium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Medium")
            .field("nodes", &self.positions.len())
            .field("in_flight", &(self.slots.len() - self.free.len()))
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_medium(loss: f64) -> Medium {
        // Nodes at x = 0, 2, 4, ..., 18 on a line.
        let positions: Vec<Point> = (0..10).map(|i| Point::new(2.0 * i as f64, 0.0)).collect();
        Medium::new(
            Field::new(20.0, 5.0),
            &positions,
            Channel::Disc,
            20_000,
            loss,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn broadcast_reaches_nodes_in_range_only() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        assert_eq!(tx.airtime, SimDuration::from_millis(10));
        let dels = m.complete(tx.id);
        let mut rxs: Vec<u32> = dels.iter().map(|d| d.receiver.0).collect();
        rxs.sort_unstable();
        assert_eq!(rxs, vec![1, 2]); // x=2 and x=4 within 5 m
        assert!(dels.iter().all(Delivery::is_ok));
    }

    #[test]
    fn rx_info_reports_distance() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 3.0, 25, &mut rng);
        let dels = m.complete(tx.id);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].info.distance, 2.0);
        assert_eq!(dels[0].info.effective_distance, 2.0);
    }

    #[test]
    fn overlapping_transmissions_collide_at_common_receiver() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        // Node 0 and node 2 (x=4) both transmit with range 5: node 1 (x=2)
        // hears both simultaneously -> collision there.
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let tx_b = m.start_broadcast(t(1), NodeId(2), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id);
        let a1 = dels_a.iter().find(|d| d.receiver == NodeId(1)).unwrap();
        assert_eq!(a1.outcome, RxOutcome::Collision);
        let dels_b = m.complete(tx_b.id);
        let b1 = dels_b.iter().find(|d| d.receiver == NodeId(1)).unwrap();
        assert_eq!(b1.outcome, RxOutcome::Collision);
        // Node 3 (x=6) hears only tx_b: intact.
        let b3 = dels_b.iter().find(|d| d.receiver == NodeId(3)).unwrap();
        assert_eq!(b3.outcome, RxOutcome::Ok);
        // Four corrupted copies in total: tx_a at node 1 and at node 2
        // (which was deaf while sending tx_b), tx_b at node 1 and at node 0
        // (which was still sending tx_a when tx_b began).
        assert_eq!(m.stats().collisions, 4);
    }

    #[test]
    fn non_overlapping_transmissions_do_not_collide() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id); // completes at 10 ms
        let tx_b = m.start_broadcast(t(10), NodeId(2), 5.0, 25, &mut rng);
        let dels_b = m.complete(tx_b.id);
        assert!(dels_a.iter().all(Delivery::is_ok));
        assert!(dels_b.iter().all(Delivery::is_ok));
    }

    #[test]
    fn transmitting_node_cannot_receive() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        // Nodes 0 and 1 transmit simultaneously; each is deaf to the other,
        // and the medium models that as a collision at each sender.
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let tx_b = m.start_broadcast(SimTime::ZERO, NodeId(1), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id);
        let at_b = dels_a.iter().find(|d| d.receiver == NodeId(1)).unwrap();
        assert_ne!(at_b.outcome, RxOutcome::Ok);
        let dels_b = m.complete(tx_b.id);
        let at_a = dels_b.iter().find(|d| d.receiver == NodeId(0)).unwrap();
        assert_ne!(at_a.outcome, RxOutcome::Ok);
    }

    #[test]
    fn random_loss_drops_roughly_the_configured_fraction() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let mut m = Medium::new(Field::new(5.0, 5.0), &positions, Channel::Disc, 20_000, 0.3);
        let mut rng = SimRng::new(5);
        let mut lost = 0;
        let n = 2000;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            let tx = m.start_broadcast(now, NodeId(0), 2.0, 25, &mut rng);
            now = tx.end;
            let dels = m.complete(tx.id);
            if dels[0].outcome == RxOutcome::RandomLoss {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
        assert_eq!(m.stats().random_losses, lost);
    }

    #[test]
    fn carrier_sense_sees_ongoing_transmissions() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        assert!(!m.carrier_busy(NodeId(1), SimTime::ZERO));
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        assert!(m.carrier_busy(NodeId(1), t(5)));
        // Node 9 at x=18 is far outside range 5 of x=0.
        assert!(!m.carrier_busy(NodeId(9), t(5)));
        // After the frame ends the channel is clear again.
        assert!(!m.carrier_busy(NodeId(1), tx.end));
        m.complete(tx.id);
    }

    #[test]
    fn back_to_back_frames_at_same_instant_do_not_overlap() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id);
        // Second frame starts exactly when the first ended.
        let tx_b = m.start_broadcast(tx_a.end, NodeId(0), 5.0, 25, &mut rng);
        let dels_b = m.complete(tx_b.id);
        assert!(dels_a.iter().all(Delivery::is_ok));
        assert!(dels_b.iter().all(Delivery::is_ok));
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn double_complete_panics() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        m.complete(tx.id);
        m.complete(tx.id);
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn stale_id_for_reused_slot_panics() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        m.complete(tx_a.id);
        // tx_b recycles tx_a's slot; the old handle must not resolve to it.
        let tx_b = m.start_broadcast(tx_a.end, NodeId(0), 5.0, 25, &mut rng);
        assert_eq!(tx_a.id.slot(), tx_b.id.slot());
        assert_ne!(tx_a.id, tx_b.id);
        m.complete(tx_a.id);
    }

    #[test]
    fn slots_are_recycled_and_ids_stay_unique() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let mut seen = std::collections::HashSet::new();
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            let tx = m.start_broadcast(now, NodeId(0), 5.0, 25, &mut rng);
            now = tx.end;
            assert_eq!(tx.id.slot(), 0, "serial broadcasts must reuse slot 0");
            assert!(seen.insert(tx.id), "TxId reused: {:?}", tx.id);
            m.complete(tx.id);
        }
    }

    #[test]
    fn complete_into_reuses_the_buffer() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let mut buf = Vec::new();
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        m.complete_into(tx_a.id, &mut buf);
        assert_eq!(buf.len(), 2);
        let tx_b = m.start_broadcast(tx_a.end, NodeId(9), 3.0, 25, &mut rng);
        m.complete_into(tx_b.id, &mut buf);
        // Cleared and refilled, not appended.
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].receiver, NodeId(8));
    }

    #[test]
    fn stats_track_sent_and_ok() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(5), 3.0, 25, &mut rng);
        let dels = m.complete(tx.id);
        assert_eq!(m.stats().frames_sent, 1);
        assert_eq!(m.stats().deliveries_ok, dels.len() as u64);
    }

    #[test]
    fn shadowed_channel_filters_by_effective_distance() {
        let positions: Vec<Point> = (0..40).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut m = Medium::new(
            Field::new(40.0, 5.0),
            &positions,
            Channel::shadowed(3),
            20_000,
            0.0,
        );
        let mut rng = SimRng::new(9);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 10.0, 25, &mut rng);
        let dels = m.complete(tx.id);
        // Every delivered copy must appear within the intended range.
        assert!(dels.iter().all(|d| d.info.effective_distance <= 10.0));
        // Shadowing should make the receiver set differ from the pure disc.
        let true_dists: Vec<f64> = dels.iter().map(|d| d.info.distance).collect();
        let some_beyond = true_dists.iter().any(|&d| d > 10.0);
        let some_missing = (1..=10).any(|i| dels.iter().all(|d| d.receiver != NodeId(i)));
        assert!(
            some_beyond || some_missing,
            "shadowing had no observable effect: {true_dists:?}"
        );
    }
}
