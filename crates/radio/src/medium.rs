//! The shared broadcast medium.
//!
//! Models the channel effects PEAS cares about (Section 4 "Compensate packet
//! losses"): receiver-side collisions between overlapping transmissions,
//! uniform random frame loss, carrier sensing before transmitting, and
//! half-duplex radios (a transmitting node hears nothing).
//!
//! The medium is *passive*: the simulator calls [`Medium::start_broadcast`]
//! when a node transmits, schedules a delivery event at the returned end
//! time, and calls [`Medium::complete`] there to learn which receivers got
//! the frame intact. Whether a receiver was awake is the simulator's
//! business — the medium reports physical reception only.
//!
//! ## Storage and determinism
//!
//! In-flight transmissions live in dense, slot-indexed storage: a slot (and
//! its receiver-list allocation) is recycled through a free list once its
//! transmission completes, so the steady-state hot path performs no heap
//! allocation. Random loss is drawn once per decodable receiver, in
//! [`SpatialGrid`] candidate order (bucket row-major, insertion order within
//! a bucket); that draw order is part of the medium's determinism contract
//! and is relied upon by the differential tests against the brute-force
//! reference implementation (see `reference.rs`).
//!
//! ## Static-topology fast path
//!
//! Nodes never move, so for the handful of transmission ranges the protocol
//! actually uses (the probing range `Rp`, the data range), the decodable
//! receiver set of every possible broadcast is known at construction time.
//! [`Medium::with_range_classes`] precomputes, per range class, a CSR table
//! of decode rows — receiver id, true distance and effective (shadowed)
//! distance, already filtered to `eff <= range` and stored in grid candidate
//! order — built on top of [`peas_geom::NeighborTables`]. A broadcast whose
//! range matches a class then replays its row as one slice iteration: no
//! grid scan, no `sqrt`, no per-link shadowing draw. Because the rows keep
//! candidate order and the filtered-out candidates never consumed loss
//! draws in the first place, the fast path is RNG-for-RNG identical to the
//! query path, which [`Medium::set_fast_path`] exposes for differential
//! tests. Broadcasts at any other range fall back to the live grid query.

use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};
use peas_geom::{Field, NeighborTables, Point, SpatialGrid};

use crate::packet::{airtime, NodeId, RxInfo};
use crate::propagation::{Link, PropagationModel};

/// Identifier of one in-flight transmission.
///
/// Packs the dense storage slot (low 32 bits, recycled between
/// transmissions) with a per-slot generation counter (high 32 bits), so
/// every handle stays unique over the medium's lifetime even though slots
/// are reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TxId(u64);

impl TxId {
    fn pack(slot: u32, generation: u32) -> TxId {
        TxId(((generation as u64) << 32) | slot as u64)
    }

    /// Dense storage index of this transmission: unique among transmissions
    /// in flight at the same instant, recycled after completion. Useful as
    /// a direct array index for caller-side per-transmission state.
    pub fn slot(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }

    fn generation(self) -> u32 {
        // peas-lint: allow(r3-unchecked-cast) -- the high 32 bits of a packed u64 always fit u32
        (self.0 >> 32) as u32
    }
}

/// A started broadcast: schedule the completion at `end`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transmission {
    /// Handle to pass back to [`Medium::complete`].
    pub id: TxId,
    /// Time the frame occupies the channel.
    pub airtime: SimDuration,
    /// Instant the transmission finishes.
    pub end: SimTime,
}

/// The outcome of one receiver's copy of a completed frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// The physical receiver.
    pub receiver: NodeId,
    /// Link measurements for threshold filtering.
    pub info: RxInfo,
    /// How the copy fared.
    pub outcome: RxOutcome,
}

impl Delivery {
    /// Whether the frame arrived intact.
    pub fn is_ok(&self) -> bool {
        self.outcome == RxOutcome::Ok
    }
}

/// Per-copy reception result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxOutcome {
    /// Received intact.
    Ok,
    /// Destroyed by an overlapping transmission at this receiver.
    Collision,
    /// Dropped by the uniform loss process.
    RandomLoss,
}

/// Running totals the medium keeps for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediumStats {
    /// Broadcasts started.
    pub frames_sent: u64,
    /// Copies delivered intact.
    pub deliveries_ok: u64,
    /// Copies destroyed by collisions.
    pub collisions: u64,
    /// Copies dropped by random loss.
    pub random_losses: u64,
}

/// Marks an [`Arrival`] as the transmitting node's own (half-duplex) slot
/// occupation rather than a receiver entry.
const SENDER_ENTRY: u32 = u32::MAX;

/// Sentinel slot meaning "no arrival" in the inline per-node arrival slot
/// (valid slots stay below `u32::MAX`; `start_broadcast` asserts it).
const NO_ARRIVAL: u32 = u32::MAX;

/// One transmission currently arriving at a node.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    /// Storage slot of the transmission.
    slot: u32,
    /// Index into that slot's receiver list, or [`SENDER_ENTRY`] when the
    /// node is the transmission's sender.
    entry: u32,
}

/// One receiver's copy of an in-flight frame.
#[derive(Clone, Copy, Debug)]
struct RxEntry {
    rx: NodeId,
    info: RxInfo,
    /// Dropped by the uniform loss process.
    lost: bool,
    /// Destroyed by an overlapping transmission at this receiver.
    corrupted: bool,
}

/// Dense per-slot transmission state. The `receivers` allocation is kept
/// across reuse so steady-state broadcasts allocate nothing.
struct TxSlot {
    generation: u32,
    active: bool,
    sender: NodeId,
    end: SimTime,
    receivers: Vec<RxEntry>,
}

/// Grid cell size used when no range classes are declared. Chosen for the
/// paper's 50 × 50 m field with 10 m data range; [`Medium::with_range_classes`]
/// derives the cell from the declared classes instead.
pub const DEFAULT_GRID_CELL: f64 = 10.0;

/// The bucket-grid cell size for a propagation model and set of range
/// classes: the largest physical reach any class can have (so one class's
/// candidates are always found within the 3 × 3 bucket neighborhood),
/// falling back to [`DEFAULT_GRID_CELL`] when no classes are declared.
pub(crate) fn derived_grid_cell(model: &dyn PropagationModel, classes: &[f64]) -> f64 {
    let mut cell = 0.0f64;
    for &r in classes {
        assert!(
            r.is_finite() && r > 0.0,
            "range class must be positive, got {r}"
        );
        cell = cell.max(model.max_reach(r));
    }
    if cell == 0.0 {
        DEFAULT_GRID_CELL
    } else {
        cell
    }
}

/// One precomputed decodable receiver of a fast-path broadcast.
#[derive(Clone, Copy, Debug)]
struct DecodeRow {
    rx: u32,
    /// True Euclidean distance of the link.
    dist: f64,
    /// Effective (shadowed) distance; `<= range` by construction.
    eff: f64,
}

/// Spatially bucketed carrier-sense index over in-flight transmissions.
///
/// Carrier sense asks "is any ongoing transmission audible at `pos` right
/// now?" — a boolean over the same `sender_pos.within(pos, range)` predicate
/// regardless of how the candidates are enumerated, so bucketing changes
/// nothing observable. Each transmission is registered in every cell its
/// reach disk's bounding box touches; a query then scans only the querying
/// node's own cell, lazily purging entries whose end time has passed. With
/// the cell size matched to the largest reach (the same `grid_cell` as the
/// decode grid) this turns a global `O(all on-air)` scan per send attempt
/// into an `O(local on-air)` one.
struct CarrierGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    /// Per cell: (sender position, reach, transmission end).
    cells: Vec<Vec<(Point, f64, SimTime)>>,
}

impl CarrierGrid {
    /// `min_cell` is the decode grid's cell (the largest reach); `nodes`
    /// bounds the cell count. Carrier-sense contention scales with the
    /// node count, not the field area, so on a sparse tier (few nodes on
    /// a big field) a reach-sized grid would be mostly-empty megabytes of
    /// bucket headers that every insert cache-misses across. Capping the
    /// grid at ~`nodes` cells keeps it dense at every tier; cells never
    /// drop below `min_cell`, so a disk still spans O(1) buckets.
    fn new(field: Field, min_cell: f64, nodes: usize) -> CarrierGrid {
        let max_side = (nodes.max(16) as f64).sqrt().ceil();
        let cell = min_cell
            .max(field.width() / max_side)
            .max(field.height() / max_side);
        let cols = (field.width() / cell).ceil().max(1.0) as usize;
        let rows = (field.height() / cell).ceil().max(1.0) as usize;
        CarrierGrid {
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        }
    }

    /// Registers a transmission into every cell its reach disk's bounding
    /// box intersects (clamped to the field).
    ///
    /// Each touched cell is purged of expired entries first. Without that,
    /// entries in cells that are inserted into but rarely queried pile up
    /// unboundedly (a busy tier retires millions of transmissions);
    /// purge-on-insert bounds every cell to its live transmission count,
    /// because a cell only ever grows through an insert.
    fn insert(&mut self, sender_pos: Point, reach: f64, end: SimTime, now: SimTime) {
        let x0 = (((sender_pos.x - reach).max(0.0) / self.cell) as usize).min(self.cols - 1);
        let x1 = (((sender_pos.x + reach) / self.cell) as usize).min(self.cols - 1);
        let y0 = (((sender_pos.y - reach).max(0.0) / self.cell) as usize).min(self.rows - 1);
        let y1 = (((sender_pos.y + reach) / self.cell) as usize).min(self.rows - 1);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let bucket = &mut self.cells[cy * self.cols + cx];
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].2 <= now {
                        bucket.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                bucket.push((sender_pos, reach, end));
            }
        }
    }

    /// Whether any live transmission reaches `pos` at time `now`.
    ///
    /// Expired entries encountered along the way are dropped.
    fn busy_at(&mut self, pos: Point, now: SimTime) -> bool {
        let cx = ((pos.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((pos.y / self.cell) as usize).min(self.rows - 1);
        let bucket = &mut self.cells[cy * self.cols + cx];
        let mut i = 0;
        while i < bucket.len() {
            let (sender_pos, range, end) = bucket[i];
            if end <= now {
                bucket.swap_remove(i);
                continue;
            }
            if sender_pos.within(pos, range) {
                return true;
            }
            i += 1;
        }
        false
    }
}

/// Per-range-class CSR of decode rows: `offsets[i]..offsets[i + 1]` indexes
/// sender `i`'s decodable receivers in grid candidate order.
struct DecodeTable {
    range: f64,
    /// The model's physical reach for this class, cached at build time so
    /// class-matching broadcasts never touch the (dynamically dispatched)
    /// propagation model on the hot path.
    reach: f64,
    offsets: Vec<u32>,
    rows: Vec<DecodeRow>,
}

/// The broadcast medium shared by all nodes of one network.
///
/// # Examples
///
/// ```
/// use peas_des::rng::SimRng;
/// use peas_des::time::SimTime;
/// use peas_geom::{Field, Point};
/// use peas_radio::{Disc, Medium, NodeId};
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
/// let mut medium = Medium::new(Field::new(10.0, 10.0), &positions, Disc, 20_000, 0.0);
/// let mut rng = SimRng::new(1);
///
/// let tx = medium.start_broadcast(SimTime::ZERO, NodeId(0), 3.0, 25, &mut rng);
/// let deliveries = medium.complete(tx.id);
/// assert_eq!(deliveries.len(), 1);
/// assert!(deliveries[0].is_ok());
/// ```
pub struct Medium {
    positions: Vec<Point>,
    grid: SpatialGrid,
    grid_cell: f64,
    model: Box<dyn PropagationModel>,
    bitrate_bps: u64,
    loss_rate: f64,
    /// Precomputed decode rows, one table per declared range class.
    tables: Vec<DecodeTable>,
    /// When false, class-matching broadcasts use the live grid query even
    /// though a table exists (differential-testing hook).
    fast_path: bool,
    /// Slot-indexed in-flight transmissions; inactive slots are listed in
    /// `free` and recycled by the next broadcast.
    slots: Vec<TxSlot>,
    free: Vec<u32>,
    /// Per node: the first (usually only) transmission currently arriving
    /// there (plus its own), inline so the common zero/one-arrival case is
    /// a single flat-array access instead of a per-node heap Vec;
    /// `slot == NO_ARRIVAL` means none. The list's internal order is
    /// unobservable — corruption marks every entry and removal is by
    /// membership — so the first/overflow split changes nothing.
    arrivals_first: Vec<Arrival>,
    /// Rare overflow: second and later concurrent arrivals per node.
    arrivals_more: Vec<Vec<Arrival>>,
    /// Ongoing transmissions for carrier sensing, bucketed by cell.
    on_air: CarrierGrid,
    /// Reused buffer for the in-reach candidates of one broadcast.
    scratch: Vec<(usize, Point)>,
    stats: MediumStats,
}

impl Medium {
    /// Creates a medium over stationary nodes at `positions` with no
    /// declared range classes: every broadcast uses the live grid query, on
    /// a [`DEFAULT_GRID_CELL`]-sized bucket grid.
    ///
    /// `loss_rate` is the per-copy uniform drop probability in `[0, 1]`.
    /// Callers that know their transmission ranges up front should prefer
    /// [`Medium::with_range_classes`], which also sizes the bucket grid to
    /// fit the largest reach instead of assuming the default.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`, `bitrate_bps` is zero, or
    /// any position lies outside `field`.
    pub fn new<M: PropagationModel + 'static>(
        field: Field,
        positions: &[Point],
        model: M,
        bitrate_bps: u64,
        loss_rate: f64,
    ) -> Medium {
        Medium::with_range_classes(field, positions, model, bitrate_bps, loss_rate, &[])
    }

    /// Creates a medium that precomputes the decodable receiver set of every
    /// (sender, range class) pair, so broadcasts at exactly one of the
    /// declared `classes` ranges replay a flat decode row instead of running
    /// a spatial query (see the module-level *Static-topology fast path*
    /// notes). Class matching is exact `f64` equality — pass the same
    /// configured constants you will later hand to
    /// [`Medium::start_broadcast`].
    ///
    /// The bucket grid's cell size is derived from the classes (the largest
    /// [`PropagationModel::max_reach`] over them) rather than hardcoded, so
    /// fallback queries at unclassified ranges stay correct and cheap
    /// whatever the configuration. With an empty class list this is exactly
    /// [`Medium::new`].
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`, `bitrate_bps` is zero, any
    /// position lies outside `field`, or any class is not strictly positive
    /// and finite.
    pub fn with_range_classes<M: PropagationModel + 'static>(
        field: Field,
        positions: &[Point],
        model: M,
        bitrate_bps: u64,
        loss_rate: f64,
        classes: &[f64],
    ) -> Medium {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate {loss_rate} not in [0,1]"
        );
        assert!(bitrate_bps > 0, "bitrate must be positive");
        let grid_cell = derived_grid_cell(&model, classes);
        let mut grid = SpatialGrid::new(field, grid_cell);
        for (i, &p) in positions.iter().enumerate() {
            assert!(field.contains(p), "node {i} at {p:?} outside the field");
            grid.insert(i, p);
        }

        // Physical adjacency at each class's maximum reach, rows in grid
        // candidate order; then narrow each edge once through the
        // propagation model to the decodable set, exactly as the query path
        // would per broadcast.
        let reaches: Vec<f64> = classes.iter().map(|&r| model.max_reach(r)).collect();
        let adjacency = NeighborTables::build(&grid, positions, &reaches);
        // Narrow each physical edge through the propagation model to the
        // decodable set, exactly as the query path would per broadcast.
        // Large topologies narrow on the same bounded chunk pool the
        // adjacency build uses; `effective_distance` is a pure per-link
        // function (the trait's documented contract), so chunk-order
        // splicing is byte-identical to a serial pass.
        let workers = peas_geom::par::build_workers(positions.len());
        let tables = classes
            .iter()
            .enumerate()
            .map(|(class, &range)| {
                let model = &model;
                let chunks = peas_geom::par::chunked_build(positions.len(), workers, |span| {
                    let mut rows = Vec::new();
                    let mut row_ends = Vec::with_capacity(span.len());
                    for i in span {
                        let ids = adjacency.neighbors(class, i);
                        let dists = adjacency.distances(class, i);
                        for (&j, &dist) in ids.iter().zip(dists) {
                            let eff = model.effective_distance(Link {
                                tx: NodeId::from_index(i),
                                rx: NodeId(j),
                                tx_pos: positions[i],
                                rx_pos: positions[j as usize],
                                distance: dist,
                            });
                            if eff <= range {
                                rows.push(DecodeRow { rx: j, dist, eff });
                            }
                        }
                        row_ends.push(rows.len());
                    }
                    (rows, row_ends)
                });
                let total: usize = chunks.iter().map(|(r, _)| r.len()).sum();
                let _cap = u32::try_from(total)
                    // peas-lint: allow(r1-unchecked-panic) -- u32 offsets are a deliberate CSR size cap; >4G edges means a misconfigured scenario
                    .expect("more than u32::MAX decode rows in one class");
                let mut t = DecodeTable {
                    range,
                    reach: model.max_reach(range),
                    offsets: Vec::with_capacity(positions.len() + 1),
                    rows: Vec::with_capacity(total),
                };
                t.offsets.push(0);
                for (chunk_rows, row_ends) in chunks {
                    let base = t.rows.len();
                    t.rows.extend_from_slice(&chunk_rows);
                    t.offsets
                        // peas-lint: allow(r3-unchecked-cast) -- base + end <= total, checked against u32 above
                        .extend(row_ends.iter().map(|&end| (base + end) as u32));
                }
                t
            })
            .collect();

        Medium {
            positions: positions.to_vec(),
            grid,
            grid_cell,
            model: Box::new(model),
            bitrate_bps,
            loss_rate,
            tables,
            fast_path: true,
            slots: Vec::new(),
            free: Vec::new(),
            arrivals_first: vec![
                Arrival {
                    slot: NO_ARRIVAL,
                    entry: 0,
                };
                positions.len()
            ],
            arrivals_more: vec![Vec::new(); positions.len()],
            on_air: CarrierGrid::new(field, grid_cell, positions.len()),
            scratch: Vec::new(),
            stats: MediumStats::default(),
        }
    }

    /// Enables or disables the precomputed decode-row fast path. Defaults to
    /// enabled; disabling forces every broadcast through the live grid
    /// query. The two paths are RNG-for-RNG identical (same receivers, same
    /// draw order), so this only exists for differential tests and
    /// benchmarking the query path.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// The bucket-grid cell size in meters: the largest class reach when
    /// range classes were declared, [`DEFAULT_GRID_CELL`] otherwise.
    pub fn grid_cell(&self) -> f64 {
        self.grid_cell
    }

    /// Number of precomputed range classes.
    pub fn range_class_count(&self) -> usize {
        self.tables.len()
    }

    /// Bytes of precomputed decode-table payload across all range classes:
    /// offsets plus one [`DecodeRow`]-sized entry per decodable (sender,
    /// receiver) pair. The scale bench reports this as part of the
    /// per-topology memory budget.
    pub fn table_memory_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.offsets.len() * std::mem::size_of::<u32>()
                    + t.rows.len() * std::mem::size_of::<DecodeRow>()
            })
            .sum()
    }

    /// Number of nodes on this medium.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// The propagation model in use.
    pub fn model(&self) -> &dyn PropagationModel {
        &*self.model
    }

    /// Whether `node` would sense the channel busy at `now` (some ongoing
    /// transmission is audible at its position).
    pub fn carrier_busy(&mut self, node: NodeId, now: SimTime) -> bool {
        self.on_air.busy_at(self.positions[node.index()], now)
    }

    /// Starts a broadcast from `sender` with transmission power chosen to
    /// cover `intended_range` meters, carrying `size_bytes` of payload.
    ///
    /// Returns the transmission handle and end time; the caller must invoke
    /// [`Medium::complete`] once the simulated clock reaches `end`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range or `intended_range` is not
    /// strictly positive.
    pub fn start_broadcast(
        &mut self,
        now: SimTime,
        sender: NodeId,
        intended_range: f64,
        size_bytes: usize,
        rng: &mut SimRng,
    ) -> Transmission {
        assert!(intended_range > 0.0, "intended range must be positive");
        let duration = airtime(size_bytes, self.bitrate_bps);
        let end = now + duration;
        self.stats.frames_sent += 1;

        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(!s.active, "free list held an active slot");
                s.generation = s.generation.wrapping_add(1);
                s.active = true;
                s.sender = sender;
                s.end = end;
                s.receivers.clear();
                slot
            }
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "too many in-flight transmissions"
                );
                self.slots.push(TxSlot {
                    generation: 0,
                    active: true,
                    sender,
                    end,
                    receivers: Vec::new(),
                });
                // peas-lint: allow(r3-unchecked-cast) -- live slots are bounded by in-flight transmissions, one per node
                (self.slots.len() - 1) as u32
            }
        };
        let id = TxId::pack(slot, self.slots[slot as usize].generation);

        let sender_pos = self.positions[sender.index()];
        // Classified ranges reuse the reach cached at table build, so the
        // per-broadcast fast path never dispatches into the propagation
        // model; only unclassified fallback ranges pay the virtual call.
        let class = self.tables.iter().position(|t| t.range == intended_range);
        let reach = match class {
            Some(c) => self.tables[c].reach,
            None => self.model.max_reach(intended_range),
        };
        let class = class.filter(|_| self.fast_path);
        // Sender occupies its own radio (half-duplex): its entry corrupts
        // any frame arriving during this transmission.
        self.note_arrival(slot, SENDER_ENTRY, sender);
        // Take the receiver list out of the slot so `push_receiver` can
        // borrow `self` mutably; no entry of the list can be reached through
        // `self.arrivals` while it is detached (each receiver is registered
        // at most once per transmission, and only after its entry exists).
        let mut receivers = std::mem::take(&mut self.slots[slot as usize].receivers);
        if let Some(class) = class {
            // Fast path: replay the precomputed decode row. Same receivers,
            // same order, same loss draws as the query path below.
            let lo = self.tables[class].offsets[sender.index()] as usize;
            let hi = self.tables[class].offsets[sender.index() + 1] as usize;
            for k in lo..hi {
                let row = self.tables[class].rows[k];
                self.push_receiver(slot, &mut receivers, NodeId(row.rx), row.dist, row.eff, rng);
            }
        } else {
            let mut in_reach = std::mem::take(&mut self.scratch);
            in_reach.clear();
            in_reach.extend(self.grid.within_entries(sender_pos, reach));
            for &(idx, pos) in &in_reach {
                if idx == sender.index() {
                    continue;
                }
                let rx = NodeId::from_index(idx);
                let dist = sender_pos.distance(pos);
                let eff = self.model.effective_distance(Link {
                    tx: sender,
                    rx,
                    tx_pos: sender_pos,
                    rx_pos: pos,
                    distance: dist,
                });
                if eff > intended_range {
                    continue; // too weak to decode at this power level
                }
                self.push_receiver(slot, &mut receivers, rx, dist, eff, rng);
            }
            self.scratch = in_reach;
        }
        self.slots[slot as usize].receivers = receivers;
        self.on_air.insert(sender_pos, reach, end, now);
        Transmission {
            id,
            airtime: duration,
            end,
        }
    }

    /// Registers `rx` as a decodable receiver of the transmission in `slot`
    /// (whose receiver list is detached as `receivers`): draws the loss
    /// process, marks overlap corruption in both directions, and appends the
    /// entry plus its arrival marker.
    fn push_receiver(
        &mut self,
        slot: u32,
        receivers: &mut Vec<RxEntry>,
        rx: NodeId,
        dist: f64,
        eff: f64,
        rng: &mut SimRng,
    ) {
        let lost = rng.bernoulli(self.loss_rate);
        let n = rx.index();
        // All stored arrivals still have end > "now" (completed ones are
        // removed at their end instant), so any existing entry overlaps.
        let corrupted = self.arrivals_first[n].slot != NO_ARRIVAL;
        if corrupted {
            self.corrupt_existing(n);
        }
        self.push_arrival(
            n,
            Arrival {
                slot,
                // peas-lint: allow(r3-unchecked-cast) -- receiver entries are bounded by the node count, validated below u32
                entry: receivers.len() as u32,
            },
        );
        receivers.push(RxEntry {
            rx,
            info: RxInfo {
                distance: dist,
                effective_distance: eff,
            },
            lost,
            corrupted,
        });
    }

    /// Registers that transmission `slot` is arriving at `node` (as receiver
    /// entry `entry`, or as the sender itself), corrupting any overlap in
    /// both directions.
    fn note_arrival(&mut self, slot: u32, entry: u32, node: NodeId) {
        let n = node.index();
        // All stored arrivals still have end > "now" (completed ones are
        // removed at their end instant), so any existing entry overlaps.
        // Corruption of a sender's own slot occupation has no observable
        // effect (the sender hears nothing anyway), so only receiver
        // entries carry the flag.
        if self.arrivals_first[n].slot != NO_ARRIVAL {
            self.corrupt_existing(n);
            if entry != SENDER_ENTRY {
                self.slots[slot as usize].receivers[entry as usize].corrupted = true;
            }
        }
        self.push_arrival(n, Arrival { slot, entry });
    }

    /// Marks every receiver entry currently arriving at node `n` corrupted.
    fn corrupt_existing(&mut self, n: usize) {
        let first = self.arrivals_first[n];
        if first.entry != SENDER_ENTRY {
            self.slots[first.slot as usize].receivers[first.entry as usize].corrupted = true;
        }
        for k in 0..self.arrivals_more[n].len() {
            let a = self.arrivals_more[n][k];
            if a.entry != SENDER_ENTRY {
                self.slots[a.slot as usize].receivers[a.entry as usize].corrupted = true;
            }
        }
    }

    /// Appends an arrival marker for node `n`: into the inline slot when
    /// free, the overflow list otherwise.
    fn push_arrival(&mut self, n: usize, a: Arrival) {
        if self.arrivals_first[n].slot == NO_ARRIVAL {
            self.arrivals_first[n] = a;
        } else {
            self.arrivals_more[n].push(a);
        }
    }

    /// Drops `node`'s arrival marker for `slot` (order-insensitive).
    fn remove_arrival(&mut self, node: NodeId, slot: u32) {
        let n = node.index();
        if self.arrivals_first[n].slot == slot {
            // Promote any overflow entry into the inline slot; which one is
            // immaterial (the list is a set).
            self.arrivals_first[n] = self.arrivals_more[n].pop().unwrap_or(Arrival {
                slot: NO_ARRIVAL,
                entry: 0,
            });
            return;
        }
        let list = &mut self.arrivals_more[n];
        let pos = list
            .iter()
            .position(|a| a.slot == slot)
            // peas-lint: allow(r1-unchecked-panic) -- markers are added on start_broadcast and removed exactly once on complete/abort
            .expect("arrival bookkeeping out of sync");
        list.swap_remove(pos);
    }

    /// Completes a transmission, reporting every physical receiver's
    /// outcome. Must be called exactly once per started broadcast, at (or
    /// after) its `end` time.
    ///
    /// # Panics
    ///
    /// Panics if `tx` was never started or was already completed.
    pub fn complete(&mut self, tx: TxId) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.complete_into(tx, &mut out);
        out
    }

    /// Like [`Medium::complete`], but writes the deliveries into a
    /// caller-owned buffer (cleared first) so the per-transmission
    /// allocation can be reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `tx` was never started or was already completed.
    pub fn complete_into(&mut self, tx: TxId, out: &mut Vec<Delivery>) {
        out.clear();
        let slot = tx.slot();
        let known = self
            .slots
            .get(slot)
            .is_some_and(|s| s.active && s.generation == tx.generation());
        assert!(
            known,
            "complete() called for unknown or already-completed transmission"
        );
        let sender = self.slots[slot].sender;
        // peas-lint: allow(r3-unchecked-cast) -- slot round-trips through TxId's packed low u32
        self.remove_arrival(sender, slot as u32);
        for i in 0..self.slots[slot].receivers.len() {
            let e = self.slots[slot].receivers[i];
            // peas-lint: allow(r3-unchecked-cast) -- slot round-trips through TxId's packed low u32
            self.remove_arrival(e.rx, slot as u32);
            let outcome = if e.corrupted {
                self.stats.collisions += 1;
                RxOutcome::Collision
            } else if e.lost {
                self.stats.random_losses += 1;
                RxOutcome::RandomLoss
            } else {
                self.stats.deliveries_ok += 1;
                RxOutcome::Ok
            };
            out.push(Delivery {
                receiver: e.rx,
                info: e.info,
                outcome,
            });
        }
        self.slots[slot].active = false;
        // peas-lint: allow(r3-unchecked-cast) -- slot round-trips through TxId's packed low u32
        self.free.push(slot as u32);
    }

    /// Medium-wide counters.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }
}

impl std::fmt::Debug for Medium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Medium")
            .field("nodes", &self.positions.len())
            .field("in_flight", &(self.slots.len() - self.free.len()))
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::{Disc, LogNormalShadowing, PropagationSpec};

    fn line_medium(loss: f64) -> Medium {
        // Nodes at x = 0, 2, 4, ..., 18 on a line.
        let positions: Vec<Point> = (0..10).map(|i| Point::new(2.0 * i as f64, 0.0)).collect();
        Medium::new(Field::new(20.0, 5.0), &positions, Disc, 20_000, loss)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn broadcast_reaches_nodes_in_range_only() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        assert_eq!(tx.airtime, SimDuration::from_millis(10));
        let dels = m.complete(tx.id);
        let mut rxs: Vec<u32> = dels.iter().map(|d| d.receiver.0).collect();
        rxs.sort_unstable();
        assert_eq!(rxs, vec![1, 2]); // x=2 and x=4 within 5 m
        assert!(dels.iter().all(Delivery::is_ok));
    }

    #[test]
    fn rx_info_reports_distance() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 3.0, 25, &mut rng);
        let dels = m.complete(tx.id);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].info.distance, 2.0);
        assert_eq!(dels[0].info.effective_distance, 2.0);
    }

    #[test]
    fn overlapping_transmissions_collide_at_common_receiver() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        // Node 0 and node 2 (x=4) both transmit with range 5: node 1 (x=2)
        // hears both simultaneously -> collision there.
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let tx_b = m.start_broadcast(t(1), NodeId(2), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id);
        let a1 = dels_a.iter().find(|d| d.receiver == NodeId(1)).unwrap();
        assert_eq!(a1.outcome, RxOutcome::Collision);
        let dels_b = m.complete(tx_b.id);
        let b1 = dels_b.iter().find(|d| d.receiver == NodeId(1)).unwrap();
        assert_eq!(b1.outcome, RxOutcome::Collision);
        // Node 3 (x=6) hears only tx_b: intact.
        let b3 = dels_b.iter().find(|d| d.receiver == NodeId(3)).unwrap();
        assert_eq!(b3.outcome, RxOutcome::Ok);
        // Four corrupted copies in total: tx_a at node 1 and at node 2
        // (which was deaf while sending tx_b), tx_b at node 1 and at node 0
        // (which was still sending tx_a when tx_b began).
        assert_eq!(m.stats().collisions, 4);
    }

    #[test]
    fn non_overlapping_transmissions_do_not_collide() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id); // completes at 10 ms
        let tx_b = m.start_broadcast(t(10), NodeId(2), 5.0, 25, &mut rng);
        let dels_b = m.complete(tx_b.id);
        assert!(dels_a.iter().all(Delivery::is_ok));
        assert!(dels_b.iter().all(Delivery::is_ok));
    }

    #[test]
    fn transmitting_node_cannot_receive() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        // Nodes 0 and 1 transmit simultaneously; each is deaf to the other,
        // and the medium models that as a collision at each sender.
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let tx_b = m.start_broadcast(SimTime::ZERO, NodeId(1), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id);
        let at_b = dels_a.iter().find(|d| d.receiver == NodeId(1)).unwrap();
        assert_ne!(at_b.outcome, RxOutcome::Ok);
        let dels_b = m.complete(tx_b.id);
        let at_a = dels_b.iter().find(|d| d.receiver == NodeId(0)).unwrap();
        assert_ne!(at_a.outcome, RxOutcome::Ok);
    }

    #[test]
    fn random_loss_drops_roughly_the_configured_fraction() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let mut m = Medium::new(Field::new(5.0, 5.0), &positions, Disc, 20_000, 0.3);
        let mut rng = SimRng::new(5);
        let mut lost = 0;
        let n = 2000;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            let tx = m.start_broadcast(now, NodeId(0), 2.0, 25, &mut rng);
            now = tx.end;
            let dels = m.complete(tx.id);
            if dels[0].outcome == RxOutcome::RandomLoss {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
        assert_eq!(m.stats().random_losses, lost);
    }

    #[test]
    fn carrier_sense_sees_ongoing_transmissions() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        assert!(!m.carrier_busy(NodeId(1), SimTime::ZERO));
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        assert!(m.carrier_busy(NodeId(1), t(5)));
        // Node 9 at x=18 is far outside range 5 of x=0.
        assert!(!m.carrier_busy(NodeId(9), t(5)));
        // After the frame ends the channel is clear again.
        assert!(!m.carrier_busy(NodeId(1), tx.end));
        m.complete(tx.id);
    }

    #[test]
    fn back_to_back_frames_at_same_instant_do_not_overlap() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let dels_a = m.complete(tx_a.id);
        // Second frame starts exactly when the first ended.
        let tx_b = m.start_broadcast(tx_a.end, NodeId(0), 5.0, 25, &mut rng);
        let dels_b = m.complete(tx_b.id);
        assert!(dels_a.iter().all(Delivery::is_ok));
        assert!(dels_b.iter().all(Delivery::is_ok));
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn double_complete_panics() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        m.complete(tx.id);
        m.complete(tx.id);
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn stale_id_for_reused_slot_panics() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        m.complete(tx_a.id);
        // tx_b recycles tx_a's slot; the old handle must not resolve to it.
        let tx_b = m.start_broadcast(tx_a.end, NodeId(0), 5.0, 25, &mut rng);
        assert_eq!(tx_a.id.slot(), tx_b.id.slot());
        assert_ne!(tx_a.id, tx_b.id);
        m.complete(tx_a.id);
    }

    #[test]
    fn slots_are_recycled_and_ids_stay_unique() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let mut seen = std::collections::HashSet::new();
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            let tx = m.start_broadcast(now, NodeId(0), 5.0, 25, &mut rng);
            now = tx.end;
            assert_eq!(tx.id.slot(), 0, "serial broadcasts must reuse slot 0");
            assert!(seen.insert(tx.id), "TxId reused: {:?}", tx.id);
            m.complete(tx.id);
        }
    }

    #[test]
    fn complete_into_reuses_the_buffer() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let mut buf = Vec::new();
        let tx_a = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        m.complete_into(tx_a.id, &mut buf);
        assert_eq!(buf.len(), 2);
        let tx_b = m.start_broadcast(tx_a.end, NodeId(9), 3.0, 25, &mut rng);
        m.complete_into(tx_b.id, &mut buf);
        // Cleared and refilled, not appended.
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].receiver, NodeId(8));
    }

    #[test]
    fn stats_track_sent_and_ok() {
        let mut m = line_medium(0.0);
        let mut rng = SimRng::new(1);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(5), 3.0, 25, &mut rng);
        let dels = m.complete(tx.id);
        assert_eq!(m.stats().frames_sent, 1);
        assert_eq!(m.stats().deliveries_ok, dels.len() as u64);
    }

    /// Drives a schedule with overlapping, loss-prone broadcasts at the
    /// declared class ranges plus an unclassified range, and returns every
    /// delivery in order.
    fn drive_schedule(m: &mut Medium, classes: &[f64], seed: u64) -> Vec<Delivery> {
        let mut rng = SimRng::new(seed);
        let mut out = Vec::new();
        let n = m.node_count() as u32;
        let mut pending: Vec<TxId> = Vec::new();
        let mut now = SimTime::ZERO;
        for step in 0..60u32 {
            let sender = NodeId((step * 7) % n);
            let range = if step % 5 == 4 {
                4.5 // unclassified: must take the query path in both media
            } else {
                classes[step as usize % classes.len()]
            };
            let tx = m.start_broadcast(now, sender, range, 25, &mut rng);
            pending.push(tx.id);
            // Overlap every other pair of frames.
            if step % 2 == 1 {
                now = tx.end;
                for id in pending.drain(..) {
                    out.extend(m.complete(id));
                }
            } else {
                now += SimDuration::from_millis(3);
            }
        }
        for id in pending {
            out.extend(m.complete(id));
        }
        out
    }

    #[test]
    fn fast_path_is_byte_identical_to_query_path() {
        let positions: Vec<Point> = (0..40)
            .map(|i| Point::new((i % 8) as f64 * 2.5, (i / 8) as f64 * 3.5))
            .collect();
        let field = Field::new(20.0, 20.0);
        let classes = [3.0, 10.0];
        for spec in [
            PropagationSpec::Disc,
            PropagationSpec::shadowed(42),
            PropagationSpec::Terrain(crate::propagation::TerrainSpec::generated(5, 5, 5.0, 7)),
        ] {
            for loss in [0.0, 0.3] {
                // `spec.build()` returns a boxed model; the generic
                // constructor accepts it through the Box delegation impl.
                let mut fast = Medium::with_range_classes(
                    field,
                    &positions,
                    spec.build(),
                    20_000,
                    loss,
                    &classes,
                );
                let mut slow = Medium::with_range_classes(
                    field,
                    &positions,
                    spec.build(),
                    20_000,
                    loss,
                    &classes,
                );
                slow.set_fast_path(false);
                let a = drive_schedule(&mut fast, &classes, 77);
                let b = drive_schedule(&mut slow, &classes, 77);
                assert_eq!(a, b, "model {spec:?} loss {loss}");
                assert!(!a.is_empty());
                assert_eq!(fast.stats(), slow.stats());
            }
        }
    }

    #[test]
    fn unclassified_range_falls_back_to_query_path() {
        let positions: Vec<Point> = (0..10).map(|i| Point::new(2.0 * i as f64, 0.0)).collect();
        let mut m = Medium::with_range_classes(
            Field::new(20.0, 5.0),
            &positions,
            Disc,
            20_000,
            0.0,
            &[3.0],
        );
        let mut rng = SimRng::new(1);
        // 5.0 is not a declared class; the broadcast must still deliver.
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 5.0, 25, &mut rng);
        let mut rxs: Vec<u32> = m.complete(tx.id).iter().map(|d| d.receiver.0).collect();
        rxs.sort_unstable();
        assert_eq!(rxs, vec![1, 2]);
    }

    #[test]
    fn grid_cell_derives_from_largest_class_reach() {
        let positions = vec![Point::new(1.0, 1.0)];
        let field = Field::new(60.0, 60.0);
        let m = Medium::with_range_classes(field, &positions, Disc, 20_000, 0.0, &[3.0, 10.0]);
        assert_eq!(m.grid_cell(), 10.0);
        assert_eq!(m.range_class_count(), 2);
        // Shadowing widens the physical reach past the intended range.
        let shadowed = Medium::with_range_classes(
            field,
            &positions,
            LogNormalShadowing::with_defaults(1),
            20_000,
            0.0,
            &[10.0],
        );
        assert_eq!(
            shadowed.grid_cell(),
            LogNormalShadowing::with_defaults(1).max_reach(10.0)
        );
        assert!(shadowed.grid_cell() > 10.0);
        // Class-less construction keeps the documented default.
        let plain = Medium::new(field, &positions, Disc, 20_000, 0.0);
        assert_eq!(plain.grid_cell(), DEFAULT_GRID_CELL);
        assert_eq!(plain.range_class_count(), 0);
    }

    #[test]
    fn shadowed_channel_filters_by_effective_distance() {
        let positions: Vec<Point> = (0..40).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut m = Medium::new(
            Field::new(40.0, 5.0),
            &positions,
            LogNormalShadowing::with_defaults(3),
            20_000,
            0.0,
        );
        let mut rng = SimRng::new(9);
        let tx = m.start_broadcast(SimTime::ZERO, NodeId(0), 10.0, 25, &mut rng);
        let dels = m.complete(tx.id);
        // Every delivered copy must appear within the intended range.
        assert!(dels.iter().all(|d| d.info.effective_distance <= 10.0));
        // Shadowing should make the receiver set differ from the pure disc.
        let true_dists: Vec<f64> = dels.iter().map(|d| d.info.distance).collect();
        let some_beyond = true_dists.iter().any(|&d| d > 10.0);
        let some_missing = (1..=10).any(|i| dels.iter().all(|d| d.receiver != NodeId(i)));
        assert!(
            some_beyond || some_missing,
            "shadowing had no observable effect: {true_dists:?}"
        );
    }
}
