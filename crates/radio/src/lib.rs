//! # peas-radio — wireless substrate and energy model
//!
//! The radio layer for the PEAS (ICDCS 2003) reproduction, standing in for
//! the PARSEC radio model the authors used:
//!
//! * [`PowerProfile`] — the Berkeley-Motes-like per-mode power draws of
//!   Section 5.1 (tx 60 mW, rx 12 mW, idle 12 mW, sleep 0.03 mW);
//! * [`Battery`] / [`EnergyLedger`] — finite 54–60 J reserves with every
//!   joule attributed to a cause, so Table 1's overhead ratio is *measured*;
//! * [`packet`] — node ids, frame airtime (25 bytes at 20 kbps = 10 ms) and
//!   per-link reception info;
//! * [`PropagationModel`] — the pluggable per-link loss term, with
//!   [`Disc`], [`LogNormalShadowing`] and terrain-raster [`Terrain`]
//!   built-ins (and [`PropagationSpec`], their config-friendly recipe);
//! * [`Medium`] — the shared broadcast channel with receiver-side
//!   collisions, uniform loss, carrier sensing and half-duplex radios.
//!
//! # Example
//!
//! ```
//! use peas_des::rng::SimRng;
//! use peas_des::time::SimTime;
//! use peas_geom::{Field, Point};
//! use peas_radio::{Disc, Medium, NodeId, PowerProfile};
//!
//! let positions = vec![Point::new(1.0, 1.0), Point::new(3.0, 1.0)];
//! let mut medium = Medium::new(Field::new(10.0, 10.0), &positions, Disc, 20_000, 0.0);
//! let mut rng = SimRng::new(1);
//!
//! // Node 0 probes its 3 m neighborhood, as PEAS does.
//! let tx = medium.start_broadcast(SimTime::ZERO, NodeId(0), 3.0, 25, &mut rng);
//! let deliveries = medium.complete(tx.id);
//! assert_eq!(deliveries[0].receiver, NodeId(1));
//!
//! // Transmitting that frame cost 60 mW x 10 ms.
//! let energy = PowerProfile::motes().tx_energy(tx.airtime);
//! assert!((energy - 0.0006).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod medium;
pub mod packet;
pub mod power;
pub mod propagation;
pub mod reference;

pub use energy::{Battery, EnergyCause, EnergyLedger};
pub use medium::{Delivery, Medium, MediumStats, RxOutcome, Transmission, TxId, DEFAULT_GRID_CELL};
pub use packet::{airtime, NodeId, RxInfo, PAPER_BITRATE_BPS, PAPER_CONTROL_FRAME_BYTES};
pub use power::PowerProfile;
pub use propagation::{
    Disc, HeightMap, Link, LogNormalShadowing, PropagationModel, PropagationSpec, Terrain,
    TerrainSpec, DEFAULT_ANTENNA_HEIGHT, DEFAULT_DIFFRACTION, DEFAULT_PATH_LOSS_EXP,
    DEFAULT_SIGMA_DB, DEFAULT_WAVELENGTH,
};
