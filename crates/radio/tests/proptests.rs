//! Property-based tests for the radio substrate: conservation laws of the
//! medium, energy arithmetic, and propagation-model invariants.

use proptest::prelude::*;

use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};
use peas_geom::{Field, Point};
use peas_radio::{
    airtime, Battery, Disc, EnergyCause, EnergyLedger, Link, LogNormalShadowing, Medium, NodeId,
    PropagationModel, PropagationSpec, TerrainSpec,
};

fn arb_positions(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 2..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

/// A link between two abstract nodes laid out along the x axis. Identity-
/// keyed models (shadowing) only read the ids and distance; position-keyed
/// models (terrain) only read the endpoints.
fn link(a: u32, b: u32, dist: f64) -> Link {
    Link {
        tx: NodeId(a),
        rx: NodeId(b),
        tx_pos: Point::new(0.0, 0.0),
        rx_pos: Point::new(dist, 0.0),
        distance: dist,
    }
}

proptest! {
    /// Every delivery of a completed broadcast goes to a node that is
    /// physically within the intended range (disc model), never to the
    /// sender, and each receiver appears at most once.
    #[test]
    fn deliveries_respect_geometry(
        positions in arb_positions(40),
        sender in 0usize..40,
        range in 1.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let sender = sender % positions.len();
        let field = Field::new(50.0, 50.0);
        let mut medium = Medium::new(field, &positions, Disc, 20_000, 0.0);
        let mut rng = SimRng::new(seed);
        let tx = medium.start_broadcast(SimTime::ZERO, NodeId(sender as u32), range, 25, &mut rng);
        let deliveries = medium.complete(tx.id);
        let mut seen = std::collections::HashSet::new();
        for d in &deliveries {
            prop_assert_ne!(d.receiver.index(), sender, "sender cannot receive itself");
            prop_assert!(seen.insert(d.receiver), "duplicate receiver");
            let dist = positions[sender].distance(positions[d.receiver.index()]);
            prop_assert!(dist <= range + 1e-9);
            prop_assert!((d.info.distance - dist).abs() < 1e-9);
        }
        // Conversely every in-range node is among the deliveries.
        let in_range = positions
            .iter()
            .enumerate()
            .filter(|&(i, p)| i != sender && positions[sender].within(*p, range))
            .count();
        prop_assert_eq!(deliveries.len(), in_range);
    }

    /// Non-overlapping transmissions are always delivered intact on a
    /// loss-free channel, regardless of schedule.
    #[test]
    fn sequential_frames_never_collide(
        positions in arb_positions(20),
        gaps_ms in prop::collection::vec(0u64..50, 1..20),
        seed in any::<u64>(),
    ) {
        let field = Field::new(50.0, 50.0);
        let mut medium = Medium::new(field, &positions, Disc, 20_000, 0.0);
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        for (i, &gap) in gaps_ms.iter().enumerate() {
            let sender = NodeId((i % positions.len()) as u32);
            let tx = medium.start_broadcast(now, sender, 10.0, 25, &mut rng);
            let deliveries = medium.complete(tx.id);
            prop_assert!(deliveries.iter().all(|d| d.is_ok()));
            now = tx.end + SimDuration::from_millis(gap);
        }
        prop_assert_eq!(medium.stats().collisions, 0);
    }

    /// Medium statistics balance: sent copies = ok + collided + lost.
    #[test]
    fn stats_balance(
        positions in arb_positions(25),
        starts_ms in prop::collection::vec(0u64..100, 1..25),
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let field = Field::new(50.0, 50.0);
        let mut medium = Medium::new(field, &positions, Disc, 20_000, loss);
        let mut rng = SimRng::new(seed);
        let mut pending = Vec::new();
        let mut sorted = starts_ms.clone();
        sorted.sort_unstable();
        let mut copies = 0usize;
        for (i, &start) in sorted.iter().enumerate() {
            let sender = NodeId((i % positions.len()) as u32);
            let tx = medium.start_broadcast(
                SimTime::from_nanos(start * 1_000_000),
                sender,
                10.0,
                25,
                &mut rng,
            );
            pending.push(tx.id);
        }
        for id in pending {
            copies += medium.complete(id).len();
        }
        let stats = medium.stats();
        prop_assert_eq!(
            copies as u64,
            stats.deliveries_ok + stats.collisions + stats.random_losses
        );
        prop_assert_eq!(stats.frames_sent, sorted.len() as u64);
    }

    /// Battery drain arithmetic: sum of drains equals consumed, floor at 0.
    #[test]
    fn battery_conservation(capacity in 0.0f64..100.0, drains in prop::collection::vec(0.0f64..10.0, 0..50)) {
        let mut b = Battery::new(capacity);
        for &d in &drains {
            b.drain(d);
        }
        let total: f64 = drains.iter().sum();
        if total <= capacity {
            prop_assert!((b.consumed_j() - total).abs() < 1e-9);
        } else {
            prop_assert!(b.is_depleted());
            prop_assert!((b.consumed_j() - capacity).abs() < 1e-9);
        }
    }

    /// Ledger totals equal the sum of per-cause entries.
    #[test]
    fn ledger_totals(entries in prop::collection::vec((0usize..7, 0.0f64..5.0), 0..60)) {
        let mut ledger = EnergyLedger::new();
        let mut expected = 0.0;
        let mut expected_overhead = 0.0;
        for (cause_idx, joules) in entries {
            let cause = EnergyCause::ALL[cause_idx];
            ledger.add(cause, joules);
            expected += joules;
            if cause.is_protocol_overhead() {
                expected_overhead += joules;
            }
        }
        prop_assert!((ledger.total_j() - expected).abs() < 1e-9);
        prop_assert!((ledger.protocol_overhead_j() - expected_overhead).abs() < 1e-9);
        if expected > 0.0 {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ledger.overhead_ratio()));
        }
    }

    /// Airtime is linear in size and inversely proportional to bitrate.
    #[test]
    fn airtime_scaling(size in 1usize..1_000, bitrate in 1_000u64..1_000_000) {
        let t1 = airtime(size, bitrate);
        let t2 = airtime(size * 2, bitrate);
        // Doubling the size doubles the airtime (up to 1 ns rounding).
        let diff = (t2.as_nanos() as i128 - 2 * t1.as_nanos() as i128).abs();
        prop_assert!(diff <= 2, "airtime not linear: {t1:?} vs {t2:?}");
    }

    /// Differential test: the dense slot-recycling [`Medium`] — including
    /// its precomputed decode-row fast path — must produce exactly the
    /// delivery vectors of the retained brute-force [`ReferenceMedium`]
    /// oracle when both are driven through the same chronological schedule
    /// of overlapping broadcasts with identically-seeded RNGs — across
    /// random topologies, loss rates and all three propagation models. Each
    /// schedule entry either hits one of the two declared range classes
    /// (exercising the fast path) or an arbitrary range (exercising the
    /// grid fallback).
    #[test]
    fn dense_medium_matches_brute_force_reference(
        positions in arb_positions(25),
        schedule in prop::collection::vec(
            (0u64..150, 0usize..25, 1.0f64..15.0, 10usize..60, 0u32..4),
            1..40,
        ),
        class_rp in 1.0f64..6.0,
        class_rt in 6.0f64..15.0,
        loss in 0.0f64..0.5,
        model_pick in 0u32..3,
        model_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        use peas_radio::reference::ReferenceMedium;

        let field = Field::new(50.0, 50.0);
        let spec = match model_pick {
            0 => PropagationSpec::Disc,
            1 => PropagationSpec::shadowed(model_seed),
            // An 11x11 lattice at 5 m pitch covers the 50 m field exactly.
            _ => PropagationSpec::Terrain(TerrainSpec::generated(11, 11, 5.0, model_seed)),
        };
        let classes = [class_rp, class_rt];
        let mut medium = Medium::with_range_classes(
            field, &positions, spec.build(), 20_000, loss, &classes,
        );
        let mut reference = ReferenceMedium::with_range_classes(
            field, &positions, spec.build(), 20_000, loss, &classes,
        );
        // The loss draws follow the documented grid-order contract in both
        // implementations, so identically-seeded generators stay aligned.
        let mut medium_rng = SimRng::new(rng_seed);
        let mut reference_rng = SimRng::new(rng_seed);

        // Broadcasts sorted by start time; the sort is stable, so ties keep
        // schedule order and both mediums see the identical sequence.
        let mut starts: Vec<(SimTime, usize, f64, usize)> = schedule
            .iter()
            .map(|&(ms, sender, range, size, pick)| {
                (
                    SimTime::from_nanos(ms * 1_000_000),
                    sender % positions.len(),
                    // Half the entries broadcast at a class range (fast
                    // path), half at the raw range (grid fallback).
                    match pick {
                        0 => class_rp,
                        1 => class_rt,
                        _ => range,
                    },
                    size,
                )
            })
            .collect();
        starts.sort_by_key(|&(t, ..)| t);

        // In-flight transmissions awaiting completion, in start order.
        let mut pending: Vec<(SimTime, peas_radio::TxId, peas_radio::reference::RefTxId)> =
            Vec::new();
        let mut next = 0usize;
        loop {
            // Earliest completion (first among equals — start order).
            let done = pending
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(end, ..))| end)
                .map(|(i, &(end, ..))| (i, end));
            let start = starts.get(next).map(|&(t, ..)| t);
            // Punctual completion: at equal instants, completes run first.
            let complete_now = match (done, start) {
                (Some((_, end)), Some(s)) => end <= s,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if complete_now {
                let (i, _) = done.unwrap();
                let (_, tx, rtx) = pending.remove(i);
                let got = medium.complete(tx);
                let want = reference.complete(rtx);
                prop_assert_eq!(got, want);
            } else {
                let (t, sender, range, size) = starts[next];
                next += 1;
                let tx = medium.start_broadcast(
                    t,
                    NodeId(sender as u32),
                    range,
                    size,
                    &mut medium_rng,
                );
                let (rtx, ref_end) = reference.start_broadcast(
                    t,
                    NodeId(sender as u32),
                    range,
                    size,
                    &mut reference_rng,
                );
                prop_assert_eq!(tx.end, ref_end);
                pending.push((tx.end, tx.id, rtx));
            }
        }
    }

    /// Shadowed links: symmetric, deterministic, and positive.
    #[test]
    fn shadowing_invariants(seed in any::<u64>(), a in 0u32..1_000, b in 0u32..1_000, dist in 0.1f64..50.0) {
        prop_assume!(a != b);
        let m = LogNormalShadowing::with_defaults(seed);
        let d1 = m.effective_distance(link(a, b, dist));
        let d2 = m.effective_distance(link(b, a, dist));
        prop_assert_eq!(d1, d2);
        prop_assert!(d1 > 0.0 && d1.is_finite());
        // Determinism across a fresh model with the same seed.
        let m2 = LogNormalShadowing::with_defaults(seed);
        prop_assert_eq!(d1, m2.effective_distance(link(a, b, dist)));
    }

    /// Terrain links: symmetric, deterministic, never shorter than the
    /// physical distance (diffraction only adds loss), and never delivered
    /// beyond the intended range the grid was sized for (`max_reach` is the
    /// identity, so the loss term must be non-negative).
    #[test]
    fn terrain_invariants(
        raster_seed in any::<u64>(),
        ax in 0.0f64..50.0, ay in 0.0f64..50.0,
        bx in 0.0f64..50.0, by in 0.0f64..50.0,
        a in 0u32..1_000, b in 0u32..1_000,
    ) {
        prop_assume!(a != b);
        let spec = TerrainSpec::generated(11, 11, 5.0, raster_seed);
        let model = PropagationSpec::Terrain(spec).build();
        let (pa, pb) = (Point::new(ax, ay), Point::new(bx, by));
        let dist = pa.distance(pb);
        prop_assume!(dist > 1e-6);
        let fwd = Link { tx: NodeId(a), rx: NodeId(b), tx_pos: pa, rx_pos: pb, distance: dist };
        let rev = Link { tx: NodeId(b), rx: NodeId(a), tx_pos: pb, rx_pos: pa, distance: dist };
        let d1 = model.effective_distance(fwd);
        prop_assert_eq!(d1, model.effective_distance(rev));
        prop_assert!(d1.is_finite());
        prop_assert!(d1 >= dist - 1e-12, "terrain shortened a link: {d1} < {dist}");
        prop_assert_eq!(model.max_reach(7.5), 7.5);
        // Determinism across a fresh model built from the same spec.
        let again = PropagationSpec::Terrain(TerrainSpec::generated(11, 11, 5.0, raster_seed)).build();
        prop_assert_eq!(d1, again.effective_distance(fwd));
    }
}
