//! Property-based tests for the baseline schedulers: the stepped driver's
//! invariants must hold for every scheduler under arbitrary scenarios.

use proptest::prelude::*;

use peas_baselines::{
    AfecaLike, AlwaysOn, BaselineScenario, GafGrid, SleepScheduler, SynchronizedRounds,
};

fn arb_scenario() -> impl Strategy<Value = (BaselineScenario, u64)> {
    (
        20usize..150,  // node_count
        0.0f64..100.0, // failure rate per 5000 s
        any::<u64>(),  // seed
    )
        .prop_map(|(n, failures, seed)| {
            let mut s = BaselineScenario::paper(n).with_failures(failures);
            s.coverage_resolution = 2.5;
            s.step_secs = 50.0;
            s.horizon_secs = 3_000.0;
            (s, seed)
        })
}

fn schedulers() -> Vec<Box<dyn SleepScheduler>> {
    vec![
        Box::new(AlwaysOn),
        Box::new(SynchronizedRounds::paper()),
        Box::new(GafGrid::paper()),
        Box::new(AfecaLike::paper()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every scheduler produces a well-formed report: monotone time,
    /// coverage values in [0, 1] and monotone in k, awake counts within
    /// the population, and death accounting that never exceeds it.
    #[test]
    fn reports_are_well_formed((scenario, seed) in arb_scenario()) {
        for scheduler in schedulers() {
            let report = scheduler.run(&scenario, seed);
            prop_assert!(!report.samples.is_empty(), "{}", scheduler.name());
            let mut last_t = f64::NEG_INFINITY;
            for (t, covs) in &report.samples {
                prop_assert!(*t > last_t, "{}: time regressed", scheduler.name());
                last_t = *t;
                prop_assert_eq!(covs.len(), scenario.max_k as usize);
                for pair in covs.windows(2) {
                    prop_assert!((0.0..=1.0).contains(&pair[0]));
                    prop_assert!(pair[0] >= pair[1] - 1e-12,
                        "{}: k-coverage not monotone", scheduler.name());
                }
            }
            for &(_, awake) in &report.awake_counts {
                prop_assert!(awake <= scenario.node_count);
            }
            prop_assert!(
                (report.failures + report.energy_deaths) as usize <= scenario.node_count
            );
            prop_assert!(report.end_secs <= scenario.horizon_secs + scenario.step_secs);
        }
    }

    /// Same seed, same report: the baselines are as deterministic as the
    /// packet-level simulator.
    #[test]
    fn baselines_are_deterministic((scenario, seed) in arb_scenario()) {
        for scheduler in schedulers() {
            let a = scheduler.run(&scenario, seed);
            let b = scheduler.run(&scenario, seed);
            prop_assert_eq!(a.samples.len(), b.samples.len());
            for (sa, sb) in a.samples.iter().zip(&b.samples) {
                prop_assert_eq!(sa, sb);
            }
            prop_assert_eq!(a.failures, b.failures);
            prop_assert_eq!(a.energy_deaths, b.energy_deaths);
        }
    }

    /// The synchronized-rounds elected set always respects the separation
    /// constraint: its awake count can never exceed the packing bound
    /// area/(π(separation/2)²) by more than rounding slack.
    #[test]
    fn synchronized_awake_set_respects_packing((scenario, seed) in arb_scenario()) {
        let report = SynchronizedRounds::paper().run(&scenario, seed);
        let packing = scenario.field.area()
            / (std::f64::consts::PI * (scenario.separation / 2.0).powi(2));
        for &(_, awake) in &report.awake_counts {
            prop_assert!(
                (awake as f64) <= packing,
                "awake {awake} exceeds the Rp packing bound {packing:.0}"
            );
        }
    }
}
