//! # peas-baselines — the sleep schedulers PEAS is compared against
//!
//! Reproduces the comparison points of the PEAS paper (ICDCS 2003):
//!
//! * [`AlwaysOn`] — no sleep scheduling: lifetime is one battery,
//!   regardless of deployment size (the motivation for everything else);
//! * [`SynchronizedRounds`] — the deterministic elect-and-doze pattern of
//!   GAF/SPAN-style schemes as characterized in Section 2.1.1, which
//!   leaves Figure 4's "big gaps" when nodes fail unexpectedly;
//! * [`GafGrid`] — a GAF-like geographic-cell leader rotation;
//! * [`AfecaLike`] — AFECA-style independent duty cycling, with sleep
//!   periods proportional to the neighbor count.
//!
//! These run on a coarse awake-set/energy/coverage simulator
//! ([`BaselineScenario`]); see the module docs of [`scenario`] for why
//! that is the right level of abstraction for the comparison.
//!
//! # Example
//!
//! ```
//! use peas_baselines::{AlwaysOn, BaselineScenario, SleepScheduler};
//!
//! let mut scenario = BaselineScenario::paper(80);
//! scenario.coverage_resolution = 2.5; // coarse, for a fast doctest
//! scenario.step_secs = 50.0;
//! let report = AlwaysOn.run(&scenario, 7);
//! // All nodes awake from t = 0: the network covers the field immediately
//! // but dies when the first batteries drain (4500-5000 s).
//! let lifetime = report.coverage_lifetime(1, 0.9);
//! assert!((4000.0..5500.0).contains(&lifetime));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod schedulers;

pub use scenario::{BaselineReport, BaselineScenario};
pub use schedulers::{AfecaLike, AlwaysOn, GafGrid, SleepScheduler, SynchronizedRounds};
