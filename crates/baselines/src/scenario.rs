//! The shared scenario and report types for baseline sleep schedulers.
//!
//! The baselines (always-on, synchronized rounds, GAF-style grid) exist to
//! reproduce the *comparisons* the paper makes in Sections 1, 2.1.1 and 6 —
//! lifetime extension versus no scheduling, and robustness versus
//! deterministic synchronized wakeups. They run on a coarse time-stepped
//! simulator (energy + failures + coverage), not the packet-level radio:
//! what distinguishes the schemes is *which nodes are awake when*, not
//! their MAC behaviour. PEAS itself runs in the full `peas-sim` simulator;
//! comparisons against these baselines are apples-to-apples on the energy
//! and coverage model.

use peas_des::rng::SimRng;
use peas_geom::{CoverageGrid, Deployment, Field, Point};

/// Energy/coverage scenario shared by all baseline schedulers.
#[derive(Clone, Debug)]
pub struct BaselineScenario {
    /// The deployment field.
    pub field: Field,
    /// Number of deployed sensors.
    pub node_count: usize,
    /// Placement strategy.
    pub deployment: Deployment,
    /// Sensing range for coverage, meters.
    pub sensing_range: f64,
    /// Minimum separation the scheduler should aim for between awake
    /// nodes (PEAS's `Rp`; GAF derives its cell size from it).
    pub separation: f64,
    /// Battery, joules (uniform in the range, like the paper's 54–60 J).
    pub battery_range: (f64, f64),
    /// Awake (idle/rx) draw, mW.
    pub idle_mw: f64,
    /// Sleep draw, mW.
    pub sleep_mw: f64,
    /// Failures per 5000 s (0 = failure-free).
    pub failure_rate_per_5000s: f64,
    /// Simulation step, seconds.
    pub step_secs: f64,
    /// Hard stop, seconds.
    pub horizon_secs: f64,
    /// Coverage lattice resolution, meters.
    pub coverage_resolution: f64,
    /// Highest K-coverage recorded.
    pub max_k: u32,
}

impl BaselineScenario {
    /// The paper's setting: 50 × 50 m, 10 m sensing, `Rp` = 3 m, Motes
    /// power, 54–60 J batteries.
    pub fn paper(node_count: usize) -> BaselineScenario {
        BaselineScenario {
            field: Field::paper(),
            node_count,
            deployment: Deployment::Uniform,
            sensing_range: 10.0,
            separation: 3.0,
            battery_range: (54.0, 60.0),
            idle_mw: 12.0,
            sleep_mw: 0.03,
            failure_rate_per_5000s: 0.0,
            step_secs: 10.0,
            horizon_secs: 80_000.0,
            coverage_resolution: 1.0,
            max_k: 5,
        }
    }

    /// Sets the failure rate, builder-style.
    pub fn with_failures(mut self, per_5000s: f64) -> BaselineScenario {
        self.failure_rate_per_5000s = per_5000s;
        self
    }
}

/// What one baseline run produced.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// `(t, k_coverages[1..=max_k])` snapshots.
    pub samples: Vec<(f64, Vec<f64>)>,
    /// Awake-set size over time.
    pub awake_counts: Vec<(f64, usize)>,
    /// Failures injected.
    pub failures: u64,
    /// Nodes dead of energy depletion.
    pub energy_deaths: u64,
    /// When the run ended.
    pub end_secs: f64,
}

impl BaselineReport {
    /// K-coverage lifetime at `threshold` (same extraction rule as the
    /// PEAS reports: first sustained drop after first reaching it).
    pub fn coverage_lifetime(&self, k: u32, threshold: f64) -> f64 {
        assert!(k >= 1, "k must be at least 1");
        let series: peas_analysis::TimeSeries = self
            .samples
            .iter()
            .map(|(t, covs)| (*t, covs[(k - 1) as usize]))
            .collect();
        series.lifetime_above(threshold).unwrap_or(0.0)
    }

    /// Mean awake-set size over the functioning phase.
    pub fn mean_awake(&self) -> f64 {
        if self.awake_counts.is_empty() {
            return 0.0;
        }
        self.awake_counts
            .iter()
            .map(|&(_, n)| n as f64)
            .sum::<f64>()
            / self.awake_counts.len() as f64
    }
}

/// Shared node state for the stepped simulators.
pub(crate) struct SteppedNode {
    pub pos: Point,
    pub battery_j: f64,
    pub alive: bool,
    pub awake: bool,
}

/// Common driver: the scheduler supplies a `decide` callback invoked each
/// step to set the awake flags; the driver handles deployment, energy,
/// failures and coverage sampling.
pub(crate) fn run_stepped<F>(
    scenario: &BaselineScenario,
    seed: u64,
    mut decide: F,
) -> BaselineReport
where
    F: FnMut(f64, &mut [SteppedNode], &mut SimRng),
{
    let mut deploy_rng = SimRng::stream(seed, 1);
    let mut battery_rng = SimRng::stream(seed, 2);
    let mut failure_rng = SimRng::stream(seed, 3);
    let mut decide_rng = SimRng::stream(seed, 4);

    let positions =
        scenario
            .deployment
            .generate(scenario.field, scenario.node_count, &mut deploy_rng);
    let mut nodes: Vec<SteppedNode> = positions
        .into_iter()
        .map(|pos| SteppedNode {
            pos,
            battery_j: battery_rng.range_f64(scenario.battery_range.0, scenario.battery_range.1),
            alive: true,
            awake: false,
        })
        .collect();

    let coverage = CoverageGrid::new(scenario.field, scenario.coverage_resolution);
    let failure_per_step = scenario.failure_rate_per_5000s / 5000.0 * scenario.step_secs;

    let mut samples = Vec::new();
    let mut awake_counts = Vec::new();
    let mut failures = 0u64;
    let mut energy_deaths = 0u64;
    let mut t = 0.0;
    while t < scenario.horizon_secs {
        // Failures: Poisson-thinned per step.
        let mut expected = failure_per_step;
        while expected > 0.0 {
            let p = expected.min(1.0);
            if failure_rng.bernoulli(p) {
                let alive: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].alive).collect();
                if let Some(&victim) = failure_rng.choose(&alive) {
                    nodes[victim].alive = false;
                    nodes[victim].awake = false;
                    failures += 1;
                }
            }
            expected -= 1.0;
        }

        decide(t, &mut nodes, &mut decide_rng);

        // Energy integration over the step.
        for node in nodes.iter_mut().filter(|n| n.alive) {
            let mw = if node.awake {
                scenario.idle_mw
            } else {
                scenario.sleep_mw
            };
            node.battery_j -= mw * 1e-3 * scenario.step_secs;
            if node.battery_j <= 0.0 {
                node.alive = false;
                node.awake = false;
                energy_deaths += 1;
            }
        }

        let awake: Vec<Point> = nodes
            .iter()
            .filter(|n| n.alive && n.awake)
            .map(|n| n.pos)
            .collect();
        let covs = coverage.k_coverages(&awake, scenario.sensing_range, scenario.max_k);
        samples.push((t, covs));
        awake_counts.push((t, awake.len()));

        if nodes.iter().all(|n| !n.alive) {
            break;
        }
        t += scenario.step_secs;
    }

    BaselineReport {
        samples,
        awake_counts,
        failures,
        energy_deaths,
        end_secs: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_defaults() {
        let s = BaselineScenario::paper(160);
        assert_eq!(s.node_count, 160);
        assert_eq!(s.idle_mw, 12.0);
        assert_eq!(s.failure_rate_per_5000s, 0.0);
        let s = s.with_failures(10.66);
        assert_eq!(s.failure_rate_per_5000s, 10.66);
    }

    #[test]
    fn stepped_driver_respects_horizon_and_energy() {
        let mut s = BaselineScenario::paper(60);
        s.horizon_secs = 100.0;
        // Everyone always awake.
        let report = run_stepped(&s, 1, |_, nodes, _| {
            for n in nodes.iter_mut() {
                n.awake = n.alive;
            }
        });
        assert!(report.end_secs <= 100.0);
        assert_eq!(report.failures, 0);
        assert!(report.samples.len() >= 9);
        // Coverage with all 60 awake should be near-total at 10 m sensing.
        let (_, covs) = &report.samples[5];
        assert!(covs[0] > 0.95, "1-coverage {covs:?}");
    }

    #[test]
    fn failures_reduce_population() {
        let mut s = BaselineScenario::paper(50).with_failures(500.0);
        s.horizon_secs = 2_000.0;
        let report = run_stepped(&s, 3, |_, nodes, _| {
            for n in nodes.iter_mut() {
                n.awake = n.alive;
            }
        });
        // 500 per 5000 s = 0.1/s; the 50-node population is wiped out by
        // failures well before the horizon.
        assert!(report.failures >= 40, "failures {}", report.failures);
        assert!(report.end_secs < 2_000.0, "ended {}", report.end_secs);
    }

    #[test]
    fn lifetime_extraction_from_report() {
        let report = BaselineReport {
            samples: vec![
                (0.0, vec![0.95; 5]),
                (10.0, vec![0.96; 5]),
                (20.0, vec![0.5; 5]),
            ],
            awake_counts: vec![(0.0, 10), (10.0, 10), (20.0, 2)],
            failures: 0,
            energy_deaths: 8,
            end_secs: 20.0,
        };
        assert_eq!(report.coverage_lifetime(1, 0.9), 20.0);
        assert!((report.mean_awake() - 22.0 / 3.0).abs() < 1e-12);
    }
}
