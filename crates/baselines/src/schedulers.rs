//! The baseline sleep schedulers PEAS is compared against.
//!
//! * [`AlwaysOn`] — no scheduling at all: every alive node stays awake.
//!   The network dies when the first generation of batteries runs out
//!   (~4500–5000 s with the paper's parameters) no matter how many nodes
//!   were deployed — the strawman that motivates sleep scheduling.
//! * [`SynchronizedRounds`] — the deterministic approach of GAF/SPAN-style
//!   schemes as characterized in Section 2.1.1: a working set is elected,
//!   sleepers doze for the workers' *predicted* lifetime, and everybody
//!   re-elects at the round boundary. Robust to battery depletion, but an
//!   unexpected failure leaves its area uncovered until the boundary
//!   (Figure 4's "big gaps").
//! * [`GafGrid`] — a GAF-like geographic variant: the field is divided
//!   into fixed cells and each cell keeps exactly one leader awake,
//!   rotating leadership at round boundaries; a failed leader is only
//!   replaced at the next boundary.

use crate::scenario::{run_stepped, BaselineReport, BaselineScenario, SteppedNode};
use peas_des::rng::SimRng;
use peas_des::DetMap;

/// A baseline sleep-scheduling policy.
pub trait SleepScheduler {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Runs the policy on `scenario` with the given seed.
    fn run(&self, scenario: &BaselineScenario, seed: u64) -> BaselineReport;
}

/// Every alive node is awake all the time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysOn;

impl SleepScheduler for AlwaysOn {
    fn name(&self) -> &'static str {
        "always-on"
    }

    fn run(&self, scenario: &BaselineScenario, seed: u64) -> BaselineReport {
        run_stepped(scenario, seed, |_, nodes, _| {
            for n in nodes.iter_mut() {
                n.awake = n.alive;
            }
        })
    }
}

/// Synchronized rounds: elect a separation-respecting working set, sleep
/// everyone else until the round boundary, repeat.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynchronizedRounds {
    /// Round length in seconds — the workers' *predicted* lifetime. The
    /// paper's batteries sustain 4500–5000 s awake, so a conservative
    /// predictor would use something near 4500 s; shorter rounds trade
    /// energy (more re-elections) for failure resilience.
    pub round_secs: f64,
}

impl SynchronizedRounds {
    /// A round length matching the paper's battery floor (4500 s).
    pub fn paper() -> SynchronizedRounds {
        SynchronizedRounds { round_secs: 4500.0 }
    }
}

/// Greedy election of an awake set with pairwise separation: randomized
/// order, claim a spot unless a closer already-elected node exists.
fn elect_separated(nodes: &mut [SteppedNode], separation: f64, rng: &mut SimRng) {
    let mut order: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].alive).collect();
    rng.shuffle(&mut order);
    let mut elected: Vec<usize> = Vec::new();
    for &i in &order {
        let p = nodes[i].pos;
        let taken = elected.iter().any(|&j| nodes[j].pos.within(p, separation));
        if !taken {
            elected.push(i);
        }
    }
    for n in nodes.iter_mut() {
        n.awake = false;
    }
    for &i in &elected {
        nodes[i].awake = true;
    }
}

impl SleepScheduler for SynchronizedRounds {
    fn name(&self) -> &'static str {
        "synchronized-rounds"
    }

    fn run(&self, scenario: &BaselineScenario, seed: u64) -> BaselineReport {
        assert!(self.round_secs > 0.0, "round length must be positive");
        let round = self.round_secs;
        let separation = scenario.separation;
        let mut next_election = 0.0;
        run_stepped(scenario, seed, move |t, nodes, rng| {
            if t >= next_election {
                elect_separated(nodes, separation, rng);
                next_election = t + round;
            } else {
                // Between boundaries nobody replaces failures — the defining
                // weakness under unexpected failures (Section 2.1.1): just
                // clear the awake flag of the dead.
                for n in nodes.iter_mut() {
                    if !n.alive {
                        n.awake = false;
                    }
                }
            }
        })
    }
}

/// GAF-style fixed geographic cells with one rotating leader per cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GafGrid {
    /// Cell side, meters. GAF uses `r = Rt/√5` so that any node in a cell
    /// reaches any node in the four adjacent cells.
    pub cell_size: f64,
    /// Leadership rotation period, seconds.
    pub round_secs: f64,
}

impl GafGrid {
    /// GAF cell sizing from the paper's 10 m radio range: `10/√5 ≈ 4.47 m`,
    /// rotating at the predicted worker lifetime.
    pub fn paper() -> GafGrid {
        GafGrid {
            cell_size: 10.0 / 5.0f64.sqrt(),
            round_secs: 4500.0,
        }
    }
}

impl SleepScheduler for GafGrid {
    fn name(&self) -> &'static str {
        "gaf-grid"
    }

    fn run(&self, scenario: &BaselineScenario, seed: u64) -> BaselineReport {
        assert!(self.cell_size > 0.0 && self.round_secs > 0.0);
        let cell = self.cell_size;
        let cols = (scenario.field.width() / cell).ceil() as usize;
        let round = self.round_secs;
        let mut next_election = 0.0;
        run_stepped(scenario, seed, move |t, nodes, rng| {
            if t < next_election {
                for n in nodes.iter_mut() {
                    if !n.alive {
                        n.awake = false;
                    }
                }
                return;
            }
            next_election = t + round;
            // Leader per cell: the node with the most remaining energy,
            // with a random tiebreak supplied by iteration order shuffle.
            // Keyed by cell index in a DetMap: leadership depends only on
            // the (seeded) shuffle and the battery levels, never on a
            // hasher's process-random iteration order.
            let mut order: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].alive).collect();
            rng.shuffle(&mut order);
            let mut leader: DetMap<usize, usize> = DetMap::new();
            for &i in &order {
                let cx = (nodes[i].pos.x / cell) as usize;
                let cy = (nodes[i].pos.y / cell) as usize;
                let key = cy * cols + cx;
                let replace = match leader.get(&key) {
                    Some(&j) => nodes[i].battery_j > nodes[j].battery_j,
                    None => true,
                };
                if replace {
                    leader.insert(key, i);
                }
            }
            for n in nodes.iter_mut() {
                n.awake = false;
            }
            for &i in leader.values() {
                nodes[i].awake = true;
            }
        })
    }
}

/// AFECA-style independent duty cycling: each node sleeps for a period
/// proportional to its (one-time) neighbor count and stays awake for a
/// fixed interval, so that in expectation about one node per neighborhood
/// is awake at any instant. No elections, no per-round synchronization —
/// but also no replacement guarantee: coverage at any instant is
/// probabilistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AfecaLike {
    /// Awake interval per duty cycle, seconds.
    pub awake_secs: f64,
    /// Radio range used to count neighbors, meters.
    pub neighbor_range: f64,
}

impl AfecaLike {
    /// Parameters matching the paper's setting: 10 m radio range, 60 s
    /// awake intervals.
    pub fn paper() -> AfecaLike {
        AfecaLike {
            awake_secs: 60.0,
            neighbor_range: 10.0,
        }
    }
}

impl SleepScheduler for AfecaLike {
    fn name(&self) -> &'static str {
        "afeca-like"
    }

    fn run(&self, scenario: &BaselineScenario, seed: u64) -> BaselineReport {
        assert!(self.awake_secs > 0.0 && self.neighbor_range > 0.0);
        let awake = self.awake_secs;
        let range = self.neighbor_range;
        // Per-node schedule state: time the current phase ends, and
        // whether the node is in its awake phase. Neighbor counts are
        // computed on first use (deployment is static).
        let mut phase_end: Vec<f64> = Vec::new();
        let mut neighbor_count: Vec<usize> = Vec::new();
        run_stepped(scenario, seed, move |t, nodes, rng| {
            if neighbor_count.is_empty() {
                neighbor_count = nodes
                    .iter()
                    .map(|a| {
                        nodes
                            .iter()
                            .filter(|b| a.pos.within(b.pos, range))
                            .count()
                            .saturating_sub(1)
                            .max(1)
                    })
                    .collect();
                // Start everyone sleeping with a randomized first phase so
                // wakeups are spread out.
                phase_end = nodes
                    .iter()
                    .enumerate()
                    .map(|(i, _)| rng.range_f64(0.0, awake * neighbor_count[i] as f64))
                    .collect();
                for n in nodes.iter_mut() {
                    n.awake = false;
                }
            }
            for (i, n) in nodes.iter_mut().enumerate() {
                if !n.alive {
                    n.awake = false;
                    continue;
                }
                if t >= phase_end[i] {
                    if n.awake {
                        // Go to sleep for ~neighbor_count awake-intervals:
                        // in expectation one of the neighborhood is awake.
                        n.awake = false;
                        let sleep = rng.exp_secs(1.0 / (awake * neighbor_count[i] as f64));
                        phase_end[i] = t + sleep;
                    } else {
                        n.awake = true;
                        phase_end[i] = t + awake;
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scenario(n: usize) -> BaselineScenario {
        let mut s = BaselineScenario::paper(n);
        s.coverage_resolution = 2.0;
        s.step_secs = 25.0;
        s
    }

    #[test]
    fn gaf_leader_election_is_stable_per_seed() {
        // Fixed-seed regression for the DetMap leader election: the same
        // seed must elect the same leaders (same awake-count trajectory
        // and coverage samples) on every run, because leadership now
        // depends only on the seeded shuffle and battery levels — never on
        // a hash map's process-random iteration order.
        let run = |seed| GafGrid::paper().run(&quick_scenario(120), seed);
        let a = run(42);
        let b = run(42);
        assert_eq!(a.awake_counts, b.awake_counts, "leader churn across runs");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.energy_deaths, b.energy_deaths);
        // And the election must actually be doing its job: a different
        // seed shuffles a different tiebreak order.
        let c = run(43);
        assert_ne!(
            a.awake_counts, c.awake_counts,
            "seed must drive the election tiebreak"
        );
    }

    #[test]
    fn always_on_dies_at_battery_exhaustion_regardless_of_n() {
        let life = |n| {
            AlwaysOn
                .run(&quick_scenario(n), 1)
                .coverage_lifetime(1, 0.9)
        };
        let l160 = life(160);
        let l480 = life(480);
        // Both die when the 54–60 J batteries exhaust at 12 mW: 4500–5000 s.
        assert!((4000.0..5500.0).contains(&l160), "lifetime {l160}");
        assert!(
            (l480 - l160).abs() < 600.0,
            "always-on must not scale with n: {l160} vs {l480}"
        );
    }

    #[test]
    fn synchronized_rounds_extend_lifetime_with_population() {
        let life = |n| {
            SynchronizedRounds::paper()
                .run(&quick_scenario(n), 2)
                .coverage_lifetime(1, 0.9)
        };
        let l200 = life(200);
        let l600 = life(600);
        assert!(
            l600 > l200 * 1.8,
            "rounds should scale lifetime: {l200} vs {l600}"
        );
    }

    #[test]
    fn synchronized_rounds_sleep_most_nodes() {
        let report = SynchronizedRounds::paper().run(&quick_scenario(480), 3);
        // During the first round the elected set should be far below the
        // deployed count but dense enough to cover the field.
        let early: Vec<usize> = report
            .awake_counts
            .iter()
            .filter(|&&(t, _)| (100.0..1000.0).contains(&t))
            .map(|&(_, n)| n)
            .collect();
        let mean = early.iter().sum::<usize>() as f64 / early.len() as f64;
        assert!(
            (40.0..250.0).contains(&mean),
            "first-round awake set {mean} of 480 deployed"
        );
    }

    #[test]
    fn failures_hurt_synchronized_coverage_more_than_it_hurts_always_on_capacity() {
        // Qualitative Figure 4/5 effect at the network scale: with heavy
        // failures, synchronized coverage degrades between boundaries.
        let clean = SynchronizedRounds::paper().run(&quick_scenario(480), 4);
        let failing = SynchronizedRounds::paper().run(&quick_scenario(480).with_failures(100.0), 4);
        let c = clean.coverage_lifetime(1, 0.9);
        let f = failing.coverage_lifetime(1, 0.9);
        assert!(f < c, "failures must shorten lifetime: {c} vs {f}");
    }

    #[test]
    fn gaf_keeps_one_leader_per_occupied_cell() {
        let report = GafGrid::paper().run(&quick_scenario(480), 5);
        // 50/4.47 ≈ 12 cells per side ≈ up to ~144 occupied cells; during
        // the first round the leader set must be about one per cell.
        let early: Vec<usize> = report
            .awake_counts
            .iter()
            .filter(|&&(t, _)| (100.0..1000.0).contains(&t))
            .map(|&(_, n)| n)
            .collect();
        let mean = early.iter().sum::<usize>() as f64 / early.len() as f64;
        assert!(
            (80.0..150.0).contains(&mean),
            "GAF awake set should be about one per occupied cell: {mean}"
        );
    }

    #[test]
    fn gaf_extends_lifetime_with_population() {
        let life = |n| {
            GafGrid::paper()
                .run(&quick_scenario(n), 6)
                .coverage_lifetime(1, 0.9)
        };
        let l200 = life(200);
        let l600 = life(600);
        assert!(l600 > l200 * 1.5, "{l200} vs {l600}");
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(AlwaysOn.name(), "always-on");
        assert_eq!(SynchronizedRounds::paper().name(), "synchronized-rounds");
        assert_eq!(GafGrid::paper().name(), "gaf-grid");
        assert_eq!(AfecaLike::paper().name(), "afeca-like");
    }

    #[test]
    fn afeca_duty_cycles_a_fraction_of_the_population() {
        let report = AfecaLike::paper().run(&quick_scenario(480), 7);
        let early: Vec<usize> = report
            .awake_counts
            .iter()
            .filter(|&&(t, _)| (500.0..2000.0).contains(&t))
            .map(|&(_, n)| n)
            .collect();
        let mean = early.iter().sum::<usize>() as f64 / early.len() as f64;
        // ~1 awake node per 10 m neighborhood: far fewer than 480, far
        // more than zero.
        assert!((5.0..200.0).contains(&mean), "awake mean {mean}");
    }

    #[test]
    fn afeca_awake_count_is_density_independent() {
        // The sleep period scales with the neighbor count, so the *awake*
        // population tracks the field geometry (one per neighborhood), not
        // the deployment size — which is exactly what lets its lifetime
        // scale with the population.
        let mean_awake = |n| {
            let report = AfecaLike::paper().run(&quick_scenario(n), 8);
            let early: Vec<usize> = report
                .awake_counts
                .iter()
                .filter(|&&(t, _)| (500.0..3000.0).contains(&t))
                .map(|&(_, c)| c)
                .collect();
            early.iter().sum::<usize>() as f64 / early.len() as f64
        };
        let a200 = mean_awake(200);
        let a600 = mean_awake(600);
        assert!(
            a600 < 2.0 * a200,
            "awake population must not track deployment size: {a200} vs {a600}"
        );
    }
}
