//! One Criterion bench per paper artifact: each runs a scaled-down version
//! of the pipeline that regenerates the corresponding table or figure, so
//! `cargo bench` exercises every experiment end-to-end. Full paper-scale
//! numbers come from the `paper` binary (`paper all`), whose output is
//! recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use peas_analysis::{mean_gaps, GapModel};
use peas_bench::experiments;
use peas_bench::sweeps::{deployment_sweep, failure_sweep};
use peas_des::time::SimTime;
use peas_sim::{Runner, ScenarioConfig, World};

/// A miniature deployment point: enough to exercise the fig9/10/11/table1
/// extraction path in a bench-sized budget.
fn mini_deployment_sweep() -> Vec<peas_bench::sweeps::SweepPoint> {
    let mut points = deployment_sweep(&[], &[1]);
    debug_assert!(points.is_empty());
    for n in [80usize, 160] {
        let mut cfg = ScenarioConfig::paper(n);
        cfg.horizon = SimTime::from_secs(1_500);
        points.push(peas_bench::sweeps::SweepPoint {
            x: n as f64,
            reports: vec![Runner::new(cfg).run_single()],
        });
    }
    points
}

fn mini_failure_sweep() -> Vec<peas_bench::sweeps::SweepPoint> {
    let mut points = failure_sweep(160, &[], &[1]);
    debug_assert!(points.is_empty());
    for rate in [5.33f64, 48.0] {
        let mut cfg = ScenarioConfig::paper(160).with_failure_rate(rate);
        cfg.horizon = SimTime::from_secs(1_500);
        points.push(peas_bench::sweeps::SweepPoint {
            x: rate,
            reports: vec![Runner::new(cfg).run_single()],
        });
    }
    points
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_coverage_lifetime_sweep", |b| {
        b.iter(|| {
            let points = mini_deployment_sweep();
            black_box(experiments::fig9(&points))
        });
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig10_delivery_lifetime_sweep", |b| {
        b.iter(|| {
            let points = mini_deployment_sweep();
            black_box(experiments::fig10(&points))
        });
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11_wakeups_sweep", |b| {
        b.iter(|| {
            let points = mini_deployment_sweep();
            black_box(experiments::fig11(&points))
        });
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table1_energy_overhead", |b| {
        b.iter(|| {
            let points = mini_deployment_sweep();
            black_box(experiments::table1(&points))
        });
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig12_coverage_vs_failures", |b| {
        b.iter(|| {
            let points = mini_failure_sweep();
            black_box(experiments::fig12(&points))
        });
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig13_delivery_vs_failures", |b| {
        b.iter(|| {
            let points = mini_failure_sweep();
            black_box(experiments::fig13(&points))
        });
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig14_wakeups_vs_failures", |b| {
        b.iter(|| {
            let points = mini_failure_sweep();
            black_box(experiments::fig14(&points))
        });
    });
    g.finish();
}

fn bench_kaccuracy(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("sec221_estimator_accuracy", |b| {
        b.iter(|| black_box(peas_analysis::poisson::estimator_errors(32, 0.02, 5_000, 7)));
    });
    g.finish();
}

fn bench_gaps(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("fig4_5_gap_models", |b| {
        b.iter(|| black_box(mean_gaps(GapModel::paper(0.38), 20_000, 11)));
    });
    g.finish();
}

fn bench_connectivity_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("sec3_connectivity_validation", |b| {
        b.iter(|| {
            let mut config = ScenarioConfig::paper(160)
                .with_failure_rate(0.0)
                .with_seed(3);
            config.grab = None;
            config.horizon = SimTime::from_secs(800);
            let mut world = World::new(config.clone());
            world.run_until(SimTime::from_secs(600));
            let working = world.working_positions();
            black_box(peas_analysis::check_working_set(
                config.field,
                &working,
                3.0,
                3.0,
                &[10.0],
            ))
        });
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    use peas_baselines::{BaselineScenario, SleepScheduler, SynchronizedRounds};
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("baseline_synchronized_rounds", |b| {
        let mut scenario = BaselineScenario::paper(160).with_failures(10.66);
        scenario.coverage_resolution = 2.0;
        scenario.step_secs = 25.0;
        scenario.horizon_secs = 20_000.0;
        b.iter(|| black_box(SynchronizedRounds::paper().run(&scenario, 5)));
    });
    g.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    g.bench_function("paper_scenario_n160_to_1000s", |b| {
        b.iter(|| {
            let mut cfg = ScenarioConfig::paper(160).with_seed(1);
            cfg.horizon = SimTime::from_secs(1_000);
            black_box(Runner::new(cfg).run_single())
        });
    });
    g.finish();
}

fn bench_deployment_dist(c: &mut Criterion) {
    use peas_geom::Deployment;
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("sec4_deployment_distribution", |b| {
        b.iter(|| {
            let mut cfg = ScenarioConfig::paper(120).with_seed(2);
            cfg.grab = None;
            cfg.deployment = Deployment::Clustered {
                centers: 4,
                std_dev: 5.0,
            };
            cfg.horizon = SimTime::from_secs(1_000);
            black_box(Runner::new(cfg).run_single())
        });
    });
    g.finish();
}

fn bench_irregular(c: &mut Criterion) {
    use peas::PeasConfig;
    use peas_radio::PropagationSpec;
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("sec4_fixed_power_shadowed", |b| {
        b.iter(|| {
            let mut cfg = ScenarioConfig::paper(120)
                .with_seed(3)
                .with_failure_rate(0.0);
            cfg.grab = None;
            cfg.propagation = PropagationSpec::shadowed(5);
            cfg.peas = PeasConfig::builder().fixed_power(10.0).build();
            cfg.horizon = SimTime::from_secs(1_000);
            black_box(Runner::new(cfg).run_single())
        });
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_table1,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_kaccuracy,
    bench_gaps,
    bench_connectivity_check,
    bench_baselines,
    bench_deployment_dist,
    bench_irregular,
    bench_full_sim
);
criterion_main!(figures);
