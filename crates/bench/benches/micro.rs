//! Micro-benchmarks of the substrates: the event queue, RNG, spatial
//! queries, coverage rasterization, the radio medium and the protocol
//! state machines. These guard the constants behind the full-simulation
//! throughput (one paper-scale run fires tens of millions of events).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use peas::{Input, Message, PeasConfig, PeasNode};
use peas_des::prelude::*;
use peas_geom::{connectivity, CoverageGrid, Deployment, Field, SpatialGrid};
use peas_grab::{GrabConfig, GrabRelay, Report};
use peas_radio::{Disc, Medium, NodeId, PropagationSpec, RxInfo, TerrainSpec};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("des/schedule_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_nanos(rng.below(1_000_000_000)))
            .collect();
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(t, i as u32);
            }
            let mut count = 0u32;
            while let Some(f) = sim.next() {
                count = count.wrapping_add(f.payload);
            }
            black_box(count)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("des/exp_sampling_10k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exp_secs(0.02);
            }
            black_box(acc)
        });
    });
}

fn bench_spatial_grid(c: &mut Criterion) {
    let field = Field::paper();
    let mut rng = SimRng::new(3);
    let positions = Deployment::Uniform.generate(field, 800, &mut rng);
    let mut grid = SpatialGrid::new(field, 10.0);
    for (i, &p) in positions.iter().enumerate() {
        grid.insert(i, p);
    }
    c.bench_function("geom/grid_query_rp3_x1k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..1_000 {
                let center = positions[i % positions.len()];
                total += grid.count_within(center, 3.0);
            }
            black_box(total)
        });
    });
}

fn bench_coverage(c: &mut Criterion) {
    let field = Field::paper();
    let mut rng = SimRng::new(4);
    let working = Deployment::Uniform.generate(field, 200, &mut rng);
    let grid = CoverageGrid::new(field, 1.0);
    c.bench_function("geom/k_coverages_200workers", |b| {
        b.iter(|| black_box(grid.k_coverages(&working, 10.0, 5)));
    });
}

fn bench_connectivity(c: &mut Criterion) {
    let field = Field::paper();
    let mut rng = SimRng::new(5);
    let working = Deployment::Uniform.generate(field, 200, &mut rng);
    c.bench_function("geom/connectivity_200workers", |b| {
        b.iter(|| black_box(connectivity::analyze(field, &working, 10.0)));
    });
}

fn bench_medium(c: &mut Criterion) {
    let field = Field::paper();
    let mut rng = SimRng::new(6);
    let positions = Deployment::Uniform.generate(field, 480, &mut rng);
    c.bench_function("radio/broadcast_complete_x100", |b| {
        b.iter_batched(
            || Medium::new(field, &positions, Disc, 20_000, 0.0),
            |mut medium| {
                let mut rng = SimRng::new(7);
                let mut now = SimTime::ZERO;
                for i in 0..100u32 {
                    let tx = medium.start_broadcast(now, NodeId(i % 480), 10.0, 25, &mut rng);
                    now = tx.end;
                    black_box(medium.complete(tx.id));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_terrain_medium(c: &mut Criterion) {
    let field = Field::paper();
    let mut rng = SimRng::new(6);
    let positions = Deployment::Uniform.generate(field, 480, &mut rng);
    // Terrain pays its per-edge diffraction profile walk at build time;
    // this pins the cost of standing up a paper-scale medium on a raster.
    let spec = PropagationSpec::Terrain(TerrainSpec::generated(11, 11, 5.0, 9));
    c.bench_function("radio/terrain_medium_build_480", |b| {
        b.iter(|| black_box(Medium::new(field, &positions, spec.build(), 20_000, 0.0)));
    });
}

fn bench_peas_node(c: &mut Criterion) {
    c.bench_function("peas/probe_round", |b| {
        b.iter_batched(
            || {
                let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
                let mut rng = SimRng::new(8);
                node.start(&mut rng);
                (node, rng)
            },
            |(mut node, mut rng)| {
                let t0 = SimTime::from_secs(10);
                black_box(node.on_input(t0, Input::WakeUp, &mut rng));
                black_box(node.on_input(
                    t0 + SimDuration::from_millis(5),
                    Input::ProbeSendTimer,
                    &mut rng,
                ));
                black_box(node.on_input(
                    t0 + SimDuration::from_millis(150),
                    Input::ReplyWindowClosed,
                    &mut rng,
                ));
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("peas/working_node_probe_reply", |b| {
        let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
        let mut rng = SimRng::new(9);
        node.start(&mut rng);
        node.on_input(SimTime::from_secs(1), Input::WakeUp, &mut rng);
        node.on_input(
            SimTime::from_secs(1) + SimDuration::from_millis(150),
            Input::ReplyWindowClosed,
            &mut rng,
        );
        let info = RxInfo {
            distance: 2.0,
            effective_distance: 2.0,
        };
        let mut t = SimTime::from_secs(2);
        b.iter(|| {
            t += SimDuration::from_millis(200);
            black_box(node.on_input(
                t,
                Input::Frame {
                    from: NodeId(5),
                    msg: Message::Probe,
                    info,
                },
                &mut rng,
            ));
            black_box(node.on_input(
                t + SimDuration::from_millis(60),
                Input::ReplyBackoff,
                &mut rng,
            ));
        });
    });
}

fn bench_grab_relay(c: &mut Criterion) {
    c.bench_function("grab/forward_report", |b| {
        let mut rng = SimRng::new(10);
        let mut relay = GrabRelay::new(GrabConfig::paper());
        relay.on_adv(1, 3, &mut rng);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let report = Report {
                source: NodeId(99),
                seq,
                sender_cost: 6,
                hops: 2,
                budget: 20,
            };
            black_box(relay.on_report(report, &mut rng))
        });
    });
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_rng,
    bench_spatial_grid,
    bench_coverage,
    bench_connectivity,
    bench_medium,
    bench_terrain_medium,
    bench_peas_node,
    bench_grab_relay
);
criterion_main!(micro);
