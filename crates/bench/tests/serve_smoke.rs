//! Process-level conformance for `peas-bench serve`: drive the real
//! binary through the full job lifecycle — submit, serve, SIGKILL
//! mid-sweep, restart, resume — and byte-compare every response against
//! an in-process reference run. This is the library-free mirror of the
//! `serve-smoke` CI job.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use peas_scenario::{compile, load_str};
use peas_sim::job::decode_outcome;
use peas_sim::{encode_report, ResultCache, Runner};

/// The inline scenario every test job submits: a 2 x 2 sweep (two
/// densities x two seeds) over a tiny fast field, exactly 4 shards.
const INLINE: &str = "[scenario]\nhorizon = 300s\n\n[field]\nwidth = 25.0\nheight = 25.0\n\n\
                      [deployment]\ncount = 25\n\n[grab]\nenabled = false\n\n\
                      [failures]\nenabled = false\n\n[sweeps]\naxis = \"deployment.count\"\n\
                      values = [25, 30]\nseeds = [1, 2]\n";

fn job_json(name: &str) -> String {
    format!(
        "{{\"schema\":1,\"job\":\"{name}\",\"inline\":\"{}\"}}",
        INLINE
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    )
}

/// The reference bytes: compile the same inline source in-process and
/// run it uncached — what every served `reports.jsonl` must equal.
fn reference_bytes() -> String {
    let doc = load_str(INLINE).expect("inline source parses");
    let compiled = compile(&doc, "reference").expect("compiles");
    let configs: Vec<_> = compiled.runs().into_iter().map(|r| r.config).collect();
    let mut out = String::new();
    for report in Runner::configs(configs).run() {
        out.push_str(&encode_report(&report));
        out.push('\n');
    }
    out
}

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .output()
        .expect("spawn serve binary")
}

fn serve_ok(args: &[&str]) -> Output {
    let out = serve(args);
    assert!(
        out.status.success(),
        "serve {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

struct TestSpool {
    root: PathBuf,
}

impl TestSpool {
    fn new(tag: &str) -> TestSpool {
        let root = std::env::temp_dir().join(format!("peas-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("mkdir");
        TestSpool { root }
    }

    fn spool(&self) -> String {
        self.root.join("spool").to_string_lossy().into_owned()
    }

    fn cache(&self) -> String {
        self.root.join("cache").to_string_lossy().into_owned()
    }

    fn submit(&self, name: &str) {
        let file = self.root.join(format!("{name}.submission.json"));
        fs::write(&file, job_json(name)).expect("write job file");
        serve_ok(&[
            "submit",
            file.to_str().expect("utf8"),
            "--spool",
            &self.spool(),
        ]);
    }

    fn drain(&self, extra: &[&str]) -> Output {
        let spool = self.spool();
        let cache = self.cache();
        let mut args = vec![
            "run",
            "--spool",
            &spool,
            "--cache",
            &cache,
            "--drain",
            "--workers",
            "2",
        ];
        args.extend_from_slice(extra);
        serve(&args)
    }

    fn response(&self, name: &str) -> peas_sim::JobOutcome {
        let path = Path::new(&self.spool())
            .join("responses")
            .join(format!("{name}.response.json"));
        let src = fs::read_to_string(&path).expect("response file");
        decode_outcome(src.trim()).expect("response decodes")
    }

    fn reports(&self, name: &str) -> String {
        let path = Path::new(&self.spool())
            .join("responses")
            .join(format!("{name}.reports.jsonl"));
        fs::read_to_string(&path).expect("reports file")
    }
}

impl Drop for TestSpool {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// The headline end-to-end property: a job SIGKILLed mid-sweep resumes
/// after restart with the cache intact, the merged response is
/// byte-identical to an uninterrupted in-process run, and a duplicate
/// submission afterwards is served entirely from cache.
#[test]
fn killed_service_resumes_and_serves_byte_identical_responses() {
    let t = TestSpool::new("kill");
    t.submit("first");

    // Fault injection: the service SIGKILLs itself after one executed
    // shard, mid-job. The exit is abnormal by construction.
    let out = t.drain(&["--kill-after", "1", "--workers", "1"]);
    assert!(
        !out.status.success(),
        "--kill-after must die abnormally, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The interrupted job is still claimed in active/, and the cache
    // already holds the executed shard — intact, nothing quarantined.
    let spool = PathBuf::from(t.spool());
    assert!(
        spool.join("active").join("first.json").exists(),
        "killed job must stay in active/ for recovery"
    );
    let cache = ResultCache::open(t.cache()).expect("open cache");
    let scan = cache.scan().expect("scan survives the kill");
    assert_eq!(scan.len(), 1, "exactly the pre-kill shard is cached");
    assert_eq!(scan.quarantined, 0, "a clean kill corrupts nothing");

    // Restart: the service recovers the active job and finishes it from
    // where the cache left off.
    let out = t.drain(&[]);
    assert!(
        out.status.success(),
        "restarted serve failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let first = t.response("first");
    assert!(first.is_done(), "recovered job must complete: {first:?}");
    assert_eq!(first.total, 4);
    assert_eq!(first.cached, 1, "the pre-kill shard is served from cache");
    assert_eq!(first.executed, 3, "only the remaining shards re-run");
    assert_eq!(
        t.reports("first"),
        reference_bytes(),
        "resumed response must be byte-identical to an uninterrupted run"
    );

    // A duplicate submission under a new name runs zero shards and
    // serves the exact same bytes.
    t.submit("second");
    serve_ok(&["status", "--spool", &t.spool(), "--cache", &t.cache()]);
    let out = t.drain(&[]);
    assert!(out.status.success());
    let second = t.response("second");
    assert_eq!((second.total, second.cached, second.executed), (4, 4, 0));
    assert_eq!(second.result_fingerprint, first.result_fingerprint);
    assert_eq!(t.reports("second"), t.reports("first"));
}

/// Bad submissions are answered, not wedged: an unservable job lands in
/// failed/ with a diagnostic response, and the service keeps draining.
#[test]
fn unservable_jobs_fail_cleanly_and_do_not_wedge_the_spool() {
    let t = TestSpool::new("badjob");
    let file = PathBuf::from(t.spool())
        .join("incoming")
        .join("broken.json");
    fs::create_dir_all(file.parent().expect("parent")).expect("mkdir incoming");
    fs::write(
        &file,
        r#"{"schema":1,"job":"broken","scenario":"no-such-scenario"}"#,
    )
    .expect("write job");
    t.submit("good");

    let out = t.drain(&[]);
    assert!(out.status.success());
    let broken = t.response("broken");
    assert!(!broken.is_done());
    assert!(
        broken
            .error
            .as_deref()
            .unwrap_or("")
            .contains("no-such-scenario"),
        "diagnostic must name the missing scenario: {broken:?}"
    );
    assert!(
        PathBuf::from(t.spool())
            .join("failed")
            .join("broken.json")
            .exists(),
        "unservable job must be archived in failed/"
    );
    let good = t.response("good");
    assert!(good.is_done(), "later jobs still serve: {good:?}");
    assert_eq!(t.reports("good"), reference_bytes());
}
