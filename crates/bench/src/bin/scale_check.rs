fn main() {
    use peas_sim::*;
    for n in [160usize, 480, 800] {
        let t0 = std::time::Instant::now();
        let report = Runner::new(ScenarioConfig::paper(n).with_seed(1)).run_single();
        println!("N={n}: wall={:?} end={:.0}s wakeups={} cov3={:.0} cov4={:.0} cov5={:.0} deliv={:.0} ratio_final={:.3} overheadJ={:.2} ovr={:.3}% consumed={:.0}J failures={} edeaths={}",
            t0.elapsed(), report.end_secs, report.total_wakeups(),
            report.coverage_lifetime(3, 0.9), report.coverage_lifetime(4, 0.9), report.coverage_lifetime(5, 0.9),
            report.delivery_lifetime(0.9),
            report.final_delivery_ratio().unwrap_or(f64::NAN),
            report.overhead_j(), report.overhead_ratio()*100.0, report.consumed_j,
            report.failures_injected, report.energy_deaths);
    }
}
