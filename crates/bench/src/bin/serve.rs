//! The sweep service: a long-running `peas-bench serve` mode that turns
//! the content-addressed result cache (`peas_sim::cache`) into shared
//! infrastructure — N clients submit scenario sweeps into a spool
//! directory, the service dedupes every shard against the global cache,
//! executes only the novel ones on a worker pool, and streams progress
//! and merged results back as response files.
//!
//! ```text
//! Usage: serve <command> [arguments] [options]
//!
//! Commands:
//!   run       the service loop: watch the spool, schedule jobs
//!   submit    validate a job file and queue it in the spool atomically
//!   status    print cache statistics and per-job states
//!   drain     ask a running service to exit once the spool is empty
//!   shutdown  ask a running service to exit before starting another job
//!
//! Options (run):
//!   --spool DIR      spool directory (required)
//!   --cache DIR      result-cache directory (required)
//!   --scenarios DIR  corpus for job scenario stems (default: scenarios/)
//!   --workers N      worker threads (default: available cores)
//!   --poll-ms MS     idle poll interval (default 200)
//!   --drain          batch mode: exit once the spool is empty
//!   --kill-after K   fault injection: SIGKILL self after K executed shards
//!
//! Options (submit):  <job.json> --spool DIR
//! Options (status):  --spool DIR --cache DIR
//! Options (drain/shutdown): --spool DIR
//! ```
//!
//! ## Spool layout and job lifecycle
//!
//! ```text
//! spool/
//!   incoming/   submitted job files, picked up oldest-name-first
//!   active/     the job currently being served (crash-recovery point)
//!   done/       successfully served job files
//!   failed/     jobs that could not be parsed/compiled/served
//!   responses/  <job>.reports.jsonl + <job>.response.json per job
//!   progress/   <job>.progress.json while a job runs
//!   control/    `drain` / `shutdown` marker files
//! ```
//!
//! A job moves `incoming -> active -> done|failed`. The move into
//! `active/` happens *before* any work, so a service SIGKILLed mid-sweep
//! leaves the job there; the restarted service re-processes it, finds
//! the already-executed shards in the cache, runs only the remainder,
//! and produces response bytes identical to an uninterrupted run — the
//! same resume-by-content story as `peas-bench sweep`, now shared
//! between every client of the spool (pinned by
//! `crates/bench/tests/serve_smoke.rs` and the `serve-smoke` CI job).

use std::env;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::Duration;

use peas_scenario::compile_job;
use peas_sim::job::{
    decode_job, decode_outcome, decode_progress, encode_outcome, encode_progress, JobOutcome,
    JobProgress, JobSpec,
};
use peas_sim::{encode_report, fnv1a, ResultCache, Shard, SweepPlan};

/// Novel shards executed per scheduling chunk: small enough that
/// progress files update while a sweep runs, large enough that the
/// worker pool stays saturated between chunk boundaries.
const CHUNK_PER_WORKER: usize = 2;

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

const VALUE_FLAGS: &[&str] = &[
    "--spool",
    "--cache",
    "--scenarios",
    "--workers",
    "--poll-ms",
    "--kill-after",
];

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.iter();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                if VALUE_FLAGS.contains(&arg.as_str()) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--{flag} needs a value"))?;
                    flags.push((flag.to_string(), Some(value.clone())));
                } else {
                    flags.push((flag.to_string(), None));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == flag)
    }

    fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{flag}: cannot parse `{raw}`")),
        }
    }

    fn dir(&self, flag: &str) -> Result<PathBuf, String> {
        self.get(flag)
            .map(PathBuf::from)
            .ok_or_else(|| format!("--{flag} DIR is required"))
    }
}

/// The spool directory family. Every accessor creates on first use.
struct Spool {
    root: PathBuf,
}

impl Spool {
    fn open(root: PathBuf) -> Result<Spool, String> {
        let spool = Spool { root };
        for sub in [
            "incoming",
            "active",
            "done",
            "failed",
            "responses",
            "progress",
            "control",
        ] {
            fs::create_dir_all(spool.root.join(sub))
                .map_err(|e| format!("{}: cannot create {sub}/: {e}", spool.root.display()))?;
        }
        Ok(spool)
    }

    fn sub(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn reports_path(&self, job: &str) -> PathBuf {
        self.sub("responses").join(format!("{job}.reports.jsonl"))
    }

    fn response_path(&self, job: &str) -> PathBuf {
        self.sub("responses").join(format!("{job}.response.json"))
    }

    fn progress_path(&self, job: &str) -> PathBuf {
        self.sub("progress").join(format!("{job}.progress.json"))
    }

    fn control_path(&self, what: &str) -> PathBuf {
        self.sub("control").join(what)
    }

    /// Sorted `.json` files in a spool subdirectory.
    fn list(&self, sub: &str) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = fs::read_dir(self.sub(sub))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        Ok(files)
    }

    /// The next job to serve: a crash-recovered file from `active/` if
    /// any, else the oldest-named submission moved out of `incoming/`.
    fn claim_next(&self) -> Result<Option<PathBuf>, String> {
        let active = self.list("active").map_err(|e| e.to_string())?;
        if let Some(path) = active.into_iter().next() {
            return Ok(Some(path));
        }
        let incoming = self.list("incoming").map_err(|e| e.to_string())?;
        let Some(path) = incoming.into_iter().next() else {
            return Ok(None);
        };
        let claimed = self
            .sub("active")
            .join(path.file_name().unwrap_or_default());
        fs::rename(&path, &claimed).map_err(|e| format!("cannot claim {}: {e}", path.display()))?;
        Ok(Some(claimed))
    }
}

/// Writes `contents` to `path` atomically (same-directory tmp + rename),
/// so readers never observe a half-written response.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).map_err(|e| format!("{}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
}

/// SIGKILLs the current process — the `--kill-after` fault-injection
/// path, same machinery as `sweep --kill-worker`. Falls back to `abort`
/// if no `kill` binary exists.
fn sigkill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-KILL", &pid]).status();
    std::thread::sleep(Duration::from_secs(2));
    std::process::abort();
}

/// Default scenario corpus: the workspace `scenarios/` directory.
fn default_scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

// ---------------------------------------------------------------------------
// serve run
// ---------------------------------------------------------------------------

struct ServiceConfig {
    spool: Spool,
    cache: ResultCache,
    scenarios: PathBuf,
    workers: usize,
    poll: Duration,
    drain: bool,
    /// Remaining shard budget before the injected SIGKILL (`None`: no
    /// fault injection).
    kill_budget: Option<usize>,
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spool = Spool::open(args.dir("spool")?)?;
    let cache = ResultCache::open(args.dir("cache")?).map_err(|e| format!("--cache: {e}"))?;
    let scenarios = args
        .get("scenarios")
        .map_or_else(default_scenarios_dir, PathBuf::from);
    let default_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: usize = args.get_parsed("workers", default_workers)?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let poll_ms: u64 = args.get_parsed("poll-ms", 200)?;
    let kill_budget: Option<usize> = match args.get("kill-after") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--kill-after: cannot parse `{raw}`"))?,
        ),
        None => None,
    };
    let mut service = ServiceConfig {
        spool,
        cache,
        scenarios,
        workers,
        poll: Duration::from_millis(poll_ms),
        drain: args.has("drain"),
        kill_budget,
    };

    // A fresh service ignores control commands aimed at its predecessor.
    for control in ["drain", "shutdown"] {
        let _ = fs::remove_file(service.spool.control_path(control));
    }

    eprintln!(
        "[serve] watching {} against cache {} ({} worker(s){})",
        service.spool.root.display(),
        service.cache.dir().display(),
        service.workers,
        if service.drain { ", drain mode" } else { "" }
    );
    loop {
        if service.spool.control_path("shutdown").exists() {
            let _ = fs::remove_file(service.spool.control_path("shutdown"));
            eprintln!("[serve] shutdown requested; exiting");
            return Ok(());
        }
        match service.spool.claim_next()? {
            Some(job_path) => serve_job(&mut service, &job_path)?,
            None => {
                if service.drain {
                    eprintln!("[serve] spool drained; exiting");
                    return Ok(());
                }
                if service.spool.control_path("drain").exists() {
                    let _ = fs::remove_file(service.spool.control_path("drain"));
                    eprintln!("[serve] drain requested and spool empty; exiting");
                    return Ok(());
                }
                std::thread::sleep(service.poll);
            }
        }
    }
}

/// Serves one claimed job file end to end: compile, dedup, execute the
/// novel shards, respond, archive. Never returns an error for a *bad
/// job* (that becomes a `failed` response); only infrastructure failures
/// (spool/cache I/O) propagate.
fn serve_job(service: &mut ServiceConfig, job_path: &Path) -> Result<(), String> {
    let fallback_name = job_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "job".to_string());
    let spec = match fs::read_to_string(job_path)
        .map_err(|e| e.to_string())
        .and_then(|src| decode_job(&src))
    {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("[serve] job {fallback_name}: rejected ({e})");
            return finish_job(service, job_path, &fallback_name, failed(&fallback_name, e));
        }
    };
    let runs = match compile_job(&spec, &service.scenarios) {
        Ok(compiled) => compiled.runs(),
        Err(e) => {
            eprintln!("[serve] job {}: does not compile ({e})", spec.name);
            return finish_job(
                service,
                job_path,
                &spec.name,
                failed(&spec.name, e.to_string()),
            );
        }
    };
    let plan = SweepPlan::new(runs.into_iter().map(|r| (r.label, r.config)).collect());

    let scan = service
        .cache
        .scan()
        .map_err(|e| format!("cache scan: {e}"))?;
    let total = plan.len();
    let cached = plan.cached(&scan);
    let novel = plan.novel(&scan);
    eprintln!(
        "[serve] job {}: {total} shard(s), {cached} cached, {} novel",
        spec.name,
        novel.len()
    );

    // How many plan shards each novel key satisfies, so progress counts
    // advance by shard coverage as keys complete.
    let multiplicity = |shard: &Shard| plan.shards().iter().filter(|s| s.key == shard.key).count();
    let mut done = cached;
    write_progress(service, &spec.name, done, total)?;

    let chunk_size = (service.workers * CHUNK_PER_WORKER).max(1);
    let mut executed = 0usize;
    let mut offset = 0usize;
    while offset < novel.len() {
        if service.kill_budget == Some(0) {
            sigkill_self();
        }
        let take = chunk_size
            .min(novel.len() - offset)
            .min(service.kill_budget.unwrap_or(usize::MAX));
        let chunk = &novel[offset..offset + take];
        service
            .cache
            .execute(chunk, service.workers)
            .map_err(|e| format!("cache execute: {e}"))?;
        executed += chunk.len();
        done += chunk.iter().map(multiplicity).sum::<usize>();
        offset += take;
        write_progress(service, &spec.name, done, total)?;
        if let Some(budget) = &mut service.kill_budget {
            *budget -= take;
            if *budget == 0 {
                sigkill_self();
            }
        }
    }

    // Re-scan and merge; one retry covers a record quarantined between
    // the scheduling scan and this one (its shard simply re-runs).
    let mut scan = service
        .cache
        .scan()
        .map_err(|e| format!("cache rescan: {e}"))?;
    let retry = plan.novel(&scan);
    if !retry.is_empty() {
        eprintln!(
            "[serve] job {}: {} shard(s) lost to damaged records; re-running",
            spec.name,
            retry.len()
        );
        service
            .cache
            .execute(&retry, service.workers)
            .map_err(|e| format!("cache re-execute: {e}"))?;
        executed += retry.len();
        scan = service
            .cache
            .scan()
            .map_err(|e| format!("cache rescan: {e}"))?;
    }
    let outcome = match plan.merged(&scan) {
        Ok(reports) => {
            let mut body = String::new();
            for report in &reports {
                body.push_str(&encode_report(report));
                body.push('\n');
            }
            write_atomic(&service.spool.reports_path(&spec.name), &body)?;
            JobOutcome {
                name: spec.name.clone(),
                total,
                cached,
                executed,
                result_fingerprint: fnv1a(body.as_bytes()),
                error: None,
            }
        }
        Err(e) => failed(&spec.name, e.to_string()),
    };
    eprintln!(
        "[serve] job {}: {} (total={} cached={} executed={})",
        spec.name,
        if outcome.is_done() { "done" } else { "failed" },
        outcome.total,
        outcome.cached,
        outcome.executed
    );
    finish_job(service, job_path, &spec.name, outcome)
}

fn failed(name: &str, error: String) -> JobOutcome {
    JobOutcome {
        name: name.to_string(),
        total: 0,
        cached: 0,
        executed: 0,
        result_fingerprint: 0,
        error: Some(error),
    }
}

fn write_progress(
    service: &ServiceConfig,
    name: &str,
    done: usize,
    total: usize,
) -> Result<(), String> {
    let progress = JobProgress {
        name: name.to_string(),
        done,
        total,
    };
    write_atomic(
        &service.spool.progress_path(name),
        &format!("{}\n", encode_progress(&progress)),
    )
}

/// Writes the response, clears the progress file and archives the job
/// file into `done/` or `failed/`.
fn finish_job(
    service: &ServiceConfig,
    job_path: &Path,
    name: &str,
    outcome: JobOutcome,
) -> Result<(), String> {
    let archive = if outcome.is_done() { "done" } else { "failed" };
    write_atomic(
        &service.spool.response_path(name),
        &format!("{}\n", encode_outcome(&outcome)),
    )?;
    let _ = fs::remove_file(service.spool.progress_path(name));
    let dest = service
        .spool
        .sub(archive)
        .join(job_path.file_name().unwrap_or_default());
    fs::rename(job_path, &dest).map_err(|e| format!("cannot archive {}: {e}", job_path.display()))
}

// ---------------------------------------------------------------------------
// serve submit / status / drain / shutdown
// ---------------------------------------------------------------------------

fn cmd_submit(args: &Args) -> Result<(), String> {
    let [_, job_file] = &args.positional[..] else {
        return Err("usage: serve submit <job.json> --spool DIR".to_string());
    };
    let spool = Spool::open(args.dir("spool")?)?;
    let src = fs::read_to_string(job_file).map_err(|e| format!("{job_file}: {e}"))?;
    let spec: JobSpec = decode_job(&src).map_err(|e| format!("{job_file}: {e}"))?;
    for queue in ["incoming", "active"] {
        let queued = spool.sub(queue).join(format!("{}.json", spec.name));
        if queued.exists() {
            return Err(format!(
                "job `{}` is already {}; pick another job name",
                spec.name,
                if queue == "incoming" {
                    "queued"
                } else {
                    "being served"
                }
            ));
        }
    }
    write_atomic(
        &spool.sub("incoming").join(format!("{}.json", spec.name)),
        &src,
    )?;
    println!(
        "submitted job {} ({})",
        spec.name,
        match &spec.source {
            peas_sim::JobSource::Scenario(s) => format!("scenario {s}"),
            peas_sim::JobSource::Inline(_) => "inline scenario".to_string(),
        }
    );
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let spool = Spool::open(args.dir("spool")?)?;
    let cache = ResultCache::open(args.dir("cache")?).map_err(|e| format!("--cache: {e}"))?;
    let scan = cache.scan().map_err(|e| format!("cache scan: {e}"))?;
    println!(
        "cache: {} record(s), {} distinct key(s) in {} segment(s), {} quarantined, {} torn",
        scan.records,
        scan.len(),
        scan.segments,
        scan.quarantined,
        scan.torn
    );
    for queue in ["incoming", "active", "done", "failed"] {
        let files = spool.list(queue).map_err(|e| e.to_string())?;
        if !files.is_empty() {
            let names: Vec<String> = files
                .iter()
                .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .collect();
            println!("{queue}: {} ({})", files.len(), names.join(", "));
        }
    }
    // Live progress first, then finished outcomes, each name-sorted.
    let mut progress_files = spool.list("progress").map_err(|e| e.to_string())?;
    progress_files.sort();
    for path in progress_files {
        if let Ok(p) = fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|src| decode_progress(src.trim()))
        {
            println!("job {}: running {}/{}", p.name, p.done, p.total);
        }
    }
    let mut responses = spool.list("responses").map_err(|e| e.to_string())?;
    responses.retain(|p| p.to_string_lossy().ends_with(".response.json"));
    responses.sort();
    for path in responses {
        let Ok(outcome) = fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|src| decode_outcome(src.trim()))
        else {
            continue;
        };
        match &outcome.error {
            None => println!(
                "job {}: done total={} cached={} executed={} result={:#018X}",
                outcome.name,
                outcome.total,
                outcome.cached,
                outcome.executed,
                outcome.result_fingerprint
            ),
            Some(error) => println!("job {}: failed ({error})", outcome.name),
        }
    }
    Ok(())
}

fn cmd_control(args: &Args, what: &str) -> Result<(), String> {
    let spool = Spool::open(args.dir("spool")?)?;
    fs::write(spool.control_path(what), "")
        .map_err(|e| format!("cannot write control file: {e}"))?;
    println!("{what} requested");
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(command) = args.positional.first() else {
        eprintln!(
            "usage: serve <run|submit|status|drain|shutdown> [arguments] --spool DIR [options]\n\
             (e.g. `serve run --spool target/spool --cache target/cache --drain`; \
             see the module docs in crates/bench/src/bin/serve.rs)"
        );
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args),
        "submit" => cmd_submit(&args),
        "status" => cmd_status(&args),
        "drain" => cmd_control(&args, "drain"),
        "shutdown" => cmd_control(&args, "shutdown"),
        other => Err(format!(
            "unknown command `{other}`; expected run, submit, status, drain or shutdown"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
