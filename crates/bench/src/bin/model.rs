//! The model-checker driver: exhaustively explores `.peas` scenarios
//! with a `[model]` section and replays `[trace]` counterexamples.
//!
//! ```text
//! Usage: model <command> [args]
//!
//! Commands:
//!   explore <name|all> [--expect-violation <rule>]
//!       Run the breadth-first explorer over each selected model
//!       scenario and print its statistics. Exits non-zero if a
//!       violation is found (or, with --expect-violation, if the named
//!       rule is NOT found). When a violation is found, the shrunk
//!       counterexample is written to target/model/<name>-ce.peas.
//!   replay <name|all>
//!       Replay each selected scenario's [trace] section and compare
//!       the outcome against its expect_violation.
//!   replay --file <path.peas>
//!       Replay a standalone counterexample file (as emitted by
//!       `explore`), honouring its expect_violation.
//! ```
//!
//! Scenario names are file stems under `scenarios/`; only scenarios
//! with a `[model]` section are eligible (`all` selects exactly those).

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use peas_bench::model_gate::{expected_rule, model_cfg, parse_trace, rule_of};
use peas_model::{emit_peas, explore, replay, shrink_nodes, shrink_trace, FoundViolation};
use peas_scenario::{load_compiled, CompiledScenario};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Where shrunk counterexamples are written.
fn emit_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/model")
}

/// Loads every scenario that has a `[model]` section, sorted by name.
fn load_model_corpus(dir: &Path) -> Result<Vec<(String, CompiledScenario)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "peas"))
        .collect();
    paths.sort();
    let mut corpus = Vec::new();
    for path in paths {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let compiled = load_compiled(&path).map_err(|e| e.to_string())?;
        if compiled.model.is_some() {
            corpus.push((stem, compiled));
        }
    }
    Ok(corpus)
}

fn select(
    corpus: Vec<(String, CompiledScenario)>,
    names: &[String],
) -> Result<Vec<(String, CompiledScenario)>, String> {
    if names.is_empty() || names.iter().any(|n| n == "all") {
        return Ok(corpus);
    }
    let mut selected = Vec::new();
    for name in names {
        match corpus.iter().find(|(stem, _)| stem == name) {
            Some(found) => selected.push(found.clone()),
            None => {
                let known: Vec<&str> = corpus.iter().map(|(s, _)| s.as_str()).collect();
                return Err(format!(
                    "unknown model scenario `{name}` (known: {})",
                    known.join(", ")
                ));
            }
        }
    }
    Ok(selected)
}

/// Shrinks a found violation and writes the replayable counterexample.
fn emit_counterexample(
    name: &str,
    cfg: &peas_model::ModelCfg,
    found: &FoundViolation,
) -> Result<PathBuf, String> {
    let rule = found.violation.rule();
    let trace = shrink_trace(cfg, &found.trace, rule);
    let (small_cfg, small_trace) = shrink_nodes(cfg, &trace, rule);
    let text = emit_peas(&format!("{name}-ce"), &small_cfg, &small_trace, rule);
    let dir = emit_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}-ce.peas"));
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

fn cmd_explore(selected: &[(String, CompiledScenario)], expect: Option<&str>) -> bool {
    let mut ok = true;
    for (stem, scenario) in selected {
        let spec = scenario.model.as_ref().expect("model corpus");
        let cfg = model_cfg(spec, scenario);
        let outcome = explore(&cfg);
        println!(
            "{stem}: {} states, {} transitions, fixpoint {}, depth {}, \
             {} duplicate-working, {} coverage-hole, canon {:#018X}",
            outcome.states,
            outcome.transitions,
            outcome.fixpoint,
            outcome.max_depth,
            outcome.duplicate_working_states,
            outcome.coverage_hole_states,
            outcome.canon_hash,
        );
        let found_rule = outcome
            .violation
            .as_ref()
            .map(|f| f.violation.rule().to_string());
        if let Some(found) = &outcome.violation {
            println!("{stem}: VIOLATION {}", found.violation);
            match emit_counterexample(stem, &cfg, found) {
                Ok(path) => println!(
                    "{stem}: shrunk counterexample ({} events) -> {}",
                    shrink_trace(&cfg, &found.trace, found.violation.rule()).len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("{stem}: cannot emit counterexample: {e}");
                    ok = false;
                }
            }
        }
        match expect {
            None => {
                if found_rule.is_some() {
                    ok = false;
                }
            }
            Some(rule) => {
                if found_rule.as_deref() == Some(rule) {
                    println!("{stem}: expected violation `{rule}` found, as required");
                } else {
                    eprintln!(
                        "{stem}: expected violation `{rule}`, found {}",
                        found_rule.as_deref().unwrap_or("none")
                    );
                    ok = false;
                }
            }
        }
    }
    ok
}

fn replay_one(name: &str, scenario: &CompiledScenario) -> bool {
    let Some(spec) = scenario.model.as_ref() else {
        eprintln!("{name}: no [model] section");
        return false;
    };
    let Some(trace_spec) = scenario.trace.as_ref() else {
        eprintln!("{name}: no [trace] section to replay");
        return false;
    };
    let cfg = model_cfg(spec, scenario);
    let trace = match parse_trace(trace_spec) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("{name}: {e}");
            return false;
        }
    };
    let outcome = replay(&cfg, &trace);
    let got = rule_of(outcome.violation.as_ref());
    let want = expected_rule(scenario);
    println!(
        "{name}: applied {}/{} events, violation {got}, final state {:#018X}",
        outcome.applied,
        trace.len(),
        outcome.final_state_hash
    );
    if let Some(stuck) = outcome.stuck_at {
        eprintln!(
            "{name}: trace got STUCK at event {stuck} (`{}`): not enabled",
            trace[stuck]
        );
        return false;
    }
    if got != want {
        eprintln!("{name}: expected violation `{want}`, got `{got}`");
        return false;
    }
    true
}

fn cmd_replay_file(path: &str) -> bool {
    match load_compiled(Path::new(path)) {
        Ok(scenario) => replay_one(path, &scenario),
        Err(e) => {
            eprintln!("{path}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("usage: model <explore|replay> [name ...|all] [--expect-violation <rule>] [--file <path>]");
        return ExitCode::FAILURE;
    };

    let mut names: Vec<String> = Vec::new();
    let mut expect: Option<String> = None;
    let mut file: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--expect-violation" => match rest.next() {
                Some(rule) => expect = Some(rule.clone()),
                None => {
                    eprintln!("--expect-violation needs a rule name");
                    return ExitCode::FAILURE;
                }
            },
            "--file" => match rest.next() {
                Some(path) => file = Some(path.clone()),
                None => {
                    eprintln!("--file needs a path");
                    return ExitCode::FAILURE;
                }
            },
            _ => names.push(arg.clone()),
        }
    }

    let t0 = std::time::Instant::now();
    let ok = match (command, file) {
        ("replay", Some(path)) => cmd_replay_file(&path),
        (command, None) => {
            let corpus = match load_model_corpus(&corpus_dir()) {
                Ok(corpus) => corpus,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let selected = match select(corpus, &names) {
                Ok(selected) => selected,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match command {
                "explore" => cmd_explore(&selected, expect.as_deref()),
                "replay" => {
                    // `all` means "everything replayable"; naming a
                    // trace-less scenario explicitly is still an error.
                    let explicit = !names.is_empty() && !names.iter().any(|n| n == "all");
                    let replayable: Vec<_> = selected
                        .iter()
                        .filter(|(_, sc)| explicit || sc.trace.is_some())
                        .collect();
                    if replayable.is_empty() {
                        eprintln!("no scenarios with a [trace] section selected");
                        false
                    } else {
                        replayable.iter().all(|(stem, sc)| replay_one(stem, sc))
                    }
                }
                other => {
                    eprintln!("unknown command `{other}`; expected explore or replay");
                    false
                }
            }
        }
        (other, Some(_)) => {
            eprintln!("--file only applies to `replay`, not `{other}`");
            false
        }
    };
    eprintln!("[{:.2?}]", t0.elapsed());
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
