//! Event-queue micro-benchmark: ladder queue vs the binary-heap
//! reference, isolated from the rest of the simulator.
//!
//! Usage:
//!   queue [--sizes 1000,10000,100000,1000000] [--hold-ops N]
//!         [--out PATH]
//!
//! For each pending-set size the bench times four phases per backend:
//!
//! * **enqueue** — cold fill to the target size with exponentially
//!   spaced timestamps (the PEAS wakeup-timer distribution);
//! * **hold** — the classic hold model: pop the earliest event and
//!   immediately reschedule it a random exponential delay ahead, keeping
//!   the pending count constant. This is the simulator's steady state
//!   and the number the `BENCH_scale.json` tiers move with;
//! * **cancel** — cancel a third of the live handles (O(1) bitvector
//!   clears), then pop through the tombstones;
//! * **drain** — pop everything remaining, in order.
//!
//! All timestamps come from `SimRng` streams, so every run performs the
//! identical operation sequence on both backends and across machines —
//! only the wall-clock numbers differ. The JSON lands in
//! `BENCH_queue.json` with a ladder-vs-heap hold-phase speedup per size.

use std::time::Instant;

use peas_des::event::{EventQueue, QueueCore};
use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};

struct Args {
    sizes: Vec<usize>,
    hold_ops: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            sizes: vec![1_000, 10_000, 100_000, 1_000_000],
            hold_ops: 2_000_000,
            out: "BENCH_queue.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--sizes" => {
                    args.sizes = value("--sizes")
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad --sizes"))
                        .collect()
                }
                "--hold-ops" => {
                    args.hold_ops = value("--hold-ops").parse().expect("bad --hold-ops")
                }
                "--out" => args.out = value("--out"),
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(!args.sizes.is_empty(), "need at least one size");
        args
    }
}

struct PhaseTimes {
    enqueue_ns_per_op: f64,
    hold_ns_per_op: f64,
    cancel_ns_per_op: f64,
    drain_ns_per_op: f64,
    memory_bytes: usize,
    /// Checksum over every popped `(time, seq)`; identical across
    /// backends by the determinism contract, so a mismatch here means a
    /// broken queue, not a slow one.
    checksum: u64,
}

/// Runs the four phases against one backend. The op sequence is a pure
/// function of `size` and `hold_ops`, never of elapsed time or backend.
fn bench_core<C: QueueCore<u64> + Default>(size: usize, hold_ops: usize) -> PhaseTimes {
    // Mean wakeup spacing ~10 s over `size` nodes: event density scales
    // with the pending count, as in the real worlds.
    let mean = SimDuration::from_secs(10);
    let mut rng = SimRng::stream(0xBEE5, size as u64);
    let mut q: EventQueue<u64, C> = EventQueue::new();
    let mut checksum = 0u64;

    let t0 = Instant::now();
    for i in 0..size {
        let at = SimTime::ZERO + rng.range_duration(SimDuration::ZERO, mean * 2);
        q.schedule(at, i as u64);
    }
    let enqueue = t0.elapsed();

    let t0 = Instant::now();
    for i in 0..hold_ops {
        let f = q.pop().expect("hold model never empties the queue");
        checksum = checksum
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(f.time.as_nanos());
        let ahead = SimDuration::from_nanos(1 + rng.below(2 * mean.as_nanos()));
        q.schedule(f.time + ahead, i as u64);
    }
    let hold = t0.elapsed();
    let memory_bytes = q.memory_bytes();

    // Re-collect the live handles by scheduling a fresh, known batch on
    // top, then cancel a third of everything we just scheduled.
    let mut handles = Vec::with_capacity(size / 3);
    let base = q.peek_time().unwrap_or(SimTime::ZERO);
    for i in 0..size / 3 {
        let at = base + rng.range_duration(SimDuration::ZERO, mean * 2);
        handles.push(q.schedule(at, i as u64));
    }
    let t0 = Instant::now();
    for id in &handles {
        assert!(q.cancel(*id), "freshly scheduled handle must be live");
    }
    let cancel = t0.elapsed();
    let cancel_count = handles.len();

    let t0 = Instant::now();
    let mut drained = 0u64;
    while let Some(f) = q.pop() {
        checksum = checksum
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(f.time.as_nanos());
        drained += 1;
    }
    let drain = t0.elapsed();
    assert_eq!(drained as usize, size, "live count must survive the churn");

    let per = |d: std::time::Duration, n: usize| d.as_nanos() as f64 / n.max(1) as f64;
    PhaseTimes {
        enqueue_ns_per_op: per(enqueue, size),
        hold_ns_per_op: per(hold, hold_ops),
        cancel_ns_per_op: per(cancel, cancel_count),
        drain_ns_per_op: per(drain, size),
        memory_bytes,
        checksum,
    }
}

fn main() {
    let args = Args::parse();
    let mut json = String::new();
    json.push_str("{\n  \"hold_ops\": ");
    json.push_str(&args.hold_ops.to_string());
    json.push_str(",\n  \"sizes\": [\n");

    for (i, &size) in args.sizes.iter().enumerate() {
        eprintln!("size {size}: heap reference...");
        let heap = bench_core::<peas_des::heap_ref::HeapCore<u64>>(size, args.hold_ops);
        eprintln!("size {size}: ladder...");
        let ladder = bench_core::<peas_des::ladder::LadderCore<u64>>(size, args.hold_ops);
        assert_eq!(
            heap.checksum, ladder.checksum,
            "backends diverged at size {size} — determinism contract broken"
        );
        let speedup = heap.hold_ns_per_op / ladder.hold_ns_per_op;
        eprintln!(
            "size {size}: hold {:.0} ns/op (heap) vs {:.0} ns/op (ladder) = {speedup:.2}x",
            heap.hold_ns_per_op, ladder.hold_ns_per_op
        );

        let emit = |j: &mut String, name: &str, p: &PhaseTimes, trailing: bool| {
            j.push_str(&format!("      \"{name}\": {{\n"));
            j.push_str(&format!(
                "        \"enqueue_ns_per_op\": {:.1},\n",
                p.enqueue_ns_per_op
            ));
            j.push_str(&format!(
                "        \"hold_ns_per_op\": {:.1},\n",
                p.hold_ns_per_op
            ));
            j.push_str(&format!(
                "        \"cancel_ns_per_op\": {:.1},\n",
                p.cancel_ns_per_op
            ));
            j.push_str(&format!(
                "        \"drain_ns_per_op\": {:.1},\n",
                p.drain_ns_per_op
            ));
            j.push_str(&format!("        \"memory_bytes\": {}\n", p.memory_bytes));
            j.push_str(if trailing { "      },\n" } else { "      }\n" });
        };
        json.push_str("    {\n");
        json.push_str(&format!("      \"pending\": {size},\n"));
        json.push_str(&format!("      \"hold_speedup\": {speedup:.2},\n"));
        emit(&mut json, "heap", &heap, true);
        emit(&mut json, "ladder", &ladder, false);
        json.push_str(if i + 1 == args.sizes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {}", args.out);
}
