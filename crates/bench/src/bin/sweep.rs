//! The sharded sweep driver: runs a `.peas` sweep across N worker
//! processes with per-shard checkpointing, worker supervision and a
//! `--resume` path (see `peas_sim::SweepSession` for the journal format).
//!
//! ```text
//! Usage: sweep <command> <scenario> --journal DIR [options]
//!
//! Commands:
//!   run      execute the sweep across worker processes, then merge
//!   status   print journal progress (completed/total, missing shards)
//!   verify   compare two journals' merged reports byte for byte
//!   worker   internal: run one worker slot in-process
//!
//! Options (run):
//!   --journal DIR        checkpoint directory (required)
//!   --workers N          worker processes (default: available cores)
//!   --retries K          respawns per worker after a death (default 2)
//!   --timeout-secs S     kill a worker with no journal progress for S
//!                        seconds (default 600, 0 disables)
//!   --resume             continue an existing journal instead of
//!                        refusing to touch it
//!   --kill-worker W:K    fault injection: worker W's first attempt is
//!                        SIGKILLed after journaling K shards
//!
//! Options (verify):
//!   --against DIR        the reference journal to compare with
//!
//! Options (worker):
//!   --shard I/N          this worker's slot (self-schedules over the
//!                        journal: runs pending shards with index%N==I)
//!   --die-after K        fault injection: SIGKILL self after K shards
//! ```
//!
//! `<scenario>` is a corpus stem (e.g. `sweep-smoke`, resolving to
//! `scenarios/sweep-smoke.peas`) or a path to any `.peas` file. A sweep
//! interrupted at any point — worker SIGKILL, machine crash, ^C — resumes
//! with `--resume` and produces a merged report byte-identical to an
//! uninterrupted run (pinned by `tests/sweep_resume.rs` and the
//! `sweep-resume` CI job).

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode};
use std::time::{Duration, Instant};

use peas_scenario::{load_compiled, sample_fingerprint, CompiledScenario};
use peas_sim::{encode_report, RunReport, SweepSession};

/// FNV-1a over the per-run fingerprint renderings: one number that pins
/// the whole merged sweep.
fn sweep_fingerprint(reports: &[RunReport]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for report in reports {
        for byte in format!("{:#018X}", sample_fingerprint(report)).as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Resolves `<scenario>` to a `.peas` path: a path is used as-is, a bare
/// stem resolves into the workspace `scenarios/` corpus.
fn scenario_path(arg: &str) -> PathBuf {
    let direct = Path::new(arg);
    if direct.extension().is_some_and(|ext| ext == "peas") {
        return direct.to_path_buf();
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../scenarios/{arg}.peas"))
}

fn load_scenario(arg: &str) -> Result<CompiledScenario, String> {
    let path = scenario_path(arg);
    load_compiled(&path).map_err(|e| format!("{}: {e}", path.display()))
}

fn open_session(scenario: &CompiledScenario, journal: &Path) -> Result<SweepSession, String> {
    let runs = scenario
        .runs()
        .into_iter()
        .map(|run| (run.label, run.config))
        .collect();
    SweepSession::create(journal, runs).map_err(|e| format!("{}: {e}", journal.display()))
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

const VALUE_FLAGS: &[&str] = &[
    "--journal",
    "--workers",
    "--retries",
    "--timeout-secs",
    "--kill-worker",
    "--against",
    "--shard",
    "--die-after",
];

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.iter();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                if VALUE_FLAGS.contains(&arg.as_str()) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--{flag} needs a value"))?;
                    flags.push((flag.to_string(), Some(value.clone())));
                } else {
                    flags.push((flag.to_string(), None));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == flag)
    }

    fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{flag}: cannot parse `{raw}`")),
        }
    }

    fn journal(&self) -> Result<&Path, String> {
        self.get("journal")
            .map(Path::new)
            .ok_or_else(|| "--journal DIR is required".to_string())
    }
}

/// Parses `I/N` (shard slot) or `W:K` (kill injection) pairs.
fn parse_pair(raw: &str, sep: char, what: &str) -> Result<(usize, usize), String> {
    let parts: Vec<&str> = raw.splitn(2, sep).collect();
    if let [a, b] = parts[..] {
        if let (Ok(a), Ok(b)) = (a.parse(), b.parse()) {
            return Ok((a, b));
        }
    }
    Err(format!("{what}: expected `A{sep}B`, got `{raw}`"))
}

/// SIGKILLs the current process (the fault-injection path of
/// `--die-after`); falls back to `abort` if no `kill` binary exists.
fn sigkill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-KILL", &pid]).status();
    // Give the signal a moment to land, then hard-stop regardless.
    std::thread::sleep(Duration::from_secs(2));
    std::process::abort();
}

fn cmd_worker(scenario_arg: &str, args: &Args) -> Result<(), String> {
    let (worker, workers) = parse_pair(
        args.get("shard").ok_or("--shard I/N is required")?,
        '/',
        "--shard",
    )?;
    if workers == 0 || worker >= workers {
        return Err(format!("--shard: slot {worker}/{workers} out of range"));
    }
    let die_after: usize = args.get_parsed("die-after", usize::MAX)?;
    let scenario = load_scenario(scenario_arg)?;
    let session = open_session(&scenario, args.journal()?)?;
    if die_after != usize::MAX {
        let ran = session
            .run_worker(worker, workers, Some(die_after))
            .map_err(|e| e.to_string())?;
        if ran >= die_after {
            sigkill_self();
        }
        return Ok(());
    }
    let ran = session
        .run_worker(worker, workers, None)
        .map_err(|e| e.to_string())?;
    eprintln!("[worker {worker}/{workers}] ran {ran} shard(s)");
    Ok(())
}

/// One supervised worker process.
struct Slot {
    worker: usize,
    child: Option<Child>,
    attempts: usize,
    /// Journal bytes in this worker's segment when progress last advanced.
    last_len: u64,
    last_advance: Instant,
    failed: bool,
}

fn spawn_worker(
    scenario_arg: &str,
    journal: &Path,
    worker: usize,
    workers: usize,
    die_after: Option<usize>,
) -> Result<Child, String> {
    let exe = env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg(scenario_arg)
        .arg("--journal")
        .arg(journal)
        .arg("--shard")
        .arg(format!("{worker}/{workers}"));
    if let Some(k) = die_after {
        cmd.arg("--die-after").arg(k.to_string());
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn worker {worker}: {e}"))
}

fn segment_len(session: &SweepSession, worker: usize) -> u64 {
    std::fs::metadata(session.segment_path(worker)).map_or(0, |m| m.len())
}

fn print_merge(scenario_name: &str, session: &SweepSession) -> Result<(), String> {
    let reports = session.merged().map_err(|e| e.to_string())?;
    for (shard, report) in session.shards().iter().zip(&reports) {
        println!("  {:<44} {:#018X}", shard.label, sample_fingerprint(report));
    }
    println!(
        "{scenario_name}: {} run(s) merged, sweep_fingerprint = {:#018X}",
        reports.len(),
        sweep_fingerprint(&reports)
    );
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn cmd_run(scenario_arg: &str, args: &Args) -> Result<(), String> {
    let scenario = load_scenario(scenario_arg)?;
    let journal = args.journal()?;
    let session = open_session(&scenario, journal)?;
    let total = session.shards().len();

    let (done_before, _) = session.progress().map_err(|e| e.to_string())?;
    if done_before > 0 && !args.has("resume") {
        return Err(format!(
            "journal {} already holds {done_before} completed shard(s); \
             pass --resume to continue it or point --journal at a fresh directory",
            journal.display()
        ));
    }
    if done_before == total {
        println!("nothing to do: all {total} shard(s) already journaled");
        return print_merge(&scenario.name, &session);
    }

    let default_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: usize = args.get_parsed("workers", default_workers.min(total))?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let retries: usize = args.get_parsed("retries", 2)?;
    let timeout_secs: u64 = args.get_parsed("timeout-secs", 600)?;
    let kill = match args.get("kill-worker") {
        Some(raw) => Some(parse_pair(raw, ':', "--kill-worker")?),
        None => None,
    };

    println!(
        "{}: {total} shard(s) over {workers} worker(s){}",
        scenario.name,
        if done_before > 0 {
            format!(" (resuming, {done_before} already journaled)")
        } else {
            String::new()
        }
    );

    let mut slots = Vec::with_capacity(workers);
    for worker in 0..workers {
        let die_after = kill.and_then(|(w, k)| (w == worker).then_some(k));
        let child = spawn_worker(scenario_arg, journal, worker, workers, die_after)?;
        slots.push(Slot {
            worker,
            child: Some(child),
            attempts: 1,
            last_len: segment_len(&session, worker),
            last_advance: Instant::now(),
            failed: false,
        });
    }

    let mut deaths = 0usize;
    let mut last_reported = done_before;
    loop {
        let mut alive = false;
        for slot in &mut slots {
            let Some(child) = &mut slot.child else {
                continue;
            };
            // Progress watchdog: a worker whose segment hasn't grown for
            // the whole timeout is stuck inside one shard — kill it and
            // let the retry path re-run that shard.
            let len = segment_len(&session, slot.worker);
            if len > slot.last_len {
                slot.last_len = len;
                slot.last_advance = Instant::now();
            } else if timeout_secs > 0 && slot.last_advance.elapsed().as_secs() > timeout_secs {
                eprintln!(
                    "[sweep] worker {} made no progress for {timeout_secs}s; killing",
                    slot.worker
                );
                let _ = child.kill();
            }
            match child.try_wait().map_err(|e| e.to_string())? {
                None => alive = true,
                Some(status) if status.success() => slot.child = None,
                Some(status) => {
                    deaths += 1;
                    slot.child = None;
                    if slot.attempts <= retries {
                        eprintln!(
                            "[sweep] worker {} died ({status}); respawning (attempt {}/{})",
                            slot.worker,
                            slot.attempts + 1,
                            retries + 1
                        );
                        // Retries never re-inject the death fault: the
                        // injection models a one-off crash.
                        let child =
                            spawn_worker(scenario_arg, journal, slot.worker, workers, None)?;
                        slot.child = Some(child);
                        slot.attempts += 1;
                        slot.last_advance = Instant::now();
                        alive = true;
                    } else {
                        eprintln!(
                            "[sweep] worker {} died ({status}); retries exhausted",
                            slot.worker
                        );
                        slot.failed = true;
                    }
                }
            }
        }
        let (done, _) = session.progress().map_err(|e| e.to_string())?;
        if done != last_reported {
            println!("[sweep] {done}/{total} shard(s) journaled");
            last_reported = done;
        }
        if !alive {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    if deaths > 0 {
        eprintln!("[sweep] {deaths} worker death(s) during the run");
    }
    match session.merged() {
        Ok(_) => print_merge(&scenario.name, &session),
        Err(e) => Err(format!(
            "{e}; resume with: sweep run {scenario_arg} --journal {} --resume",
            journal.display()
        )),
    }
}

fn cmd_status(scenario_arg: &str, args: &Args) -> Result<(), String> {
    let scenario = load_scenario(scenario_arg)?;
    let session = open_session(&scenario, args.journal()?)?;
    let (done, total) = session.progress().map_err(|e| e.to_string())?;
    println!("{}: {done}/{total} shard(s) journaled", scenario.name);
    let pending = session.pending().map_err(|e| e.to_string())?;
    for index in &pending {
        println!("  pending #{index}: {}", session.shards()[*index].label);
    }
    if pending.is_empty() {
        print_merge(&scenario.name, &session)?;
    }
    Ok(())
}

fn cmd_verify(scenario_arg: &str, args: &Args) -> Result<(), String> {
    let scenario = load_scenario(scenario_arg)?;
    let against = args
        .get("against")
        .ok_or("--against DIR is required for verify")?;
    let session = open_session(&scenario, args.journal()?)?;
    let reference = open_session(&scenario, Path::new(against))?;
    let a = session.merged().map_err(|e| format!("--journal: {e}"))?;
    let b = reference.merged().map_err(|e| format!("--against: {e}"))?;
    for (shard, (ra, rb)) in session.shards().iter().zip(a.iter().zip(&b)) {
        let (ea, eb) = (encode_report(ra), encode_report(rb));
        if ea != eb {
            return Err(format!(
                "shard #{} ({}) differs between the journals \
                 (fingerprints {:#018X} vs {:#018X})",
                shard.index,
                shard.label,
                sample_fingerprint(ra),
                sample_fingerprint(rb)
            ));
        }
    }
    println!(
        "verify ok: {} run(s) byte-identical, sweep_fingerprint = {:#018X}",
        a.len(),
        sweep_fingerprint(&a)
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let [command, scenario_arg] = &args.positional[..] else {
        eprintln!(
            "usage: sweep <run|status|verify|worker> <scenario> --journal DIR [options]\n\
             (e.g. `sweep run sweep-smoke --journal target/sweep --workers 2`; \
             see the module docs in crates/bench/src/bin/sweep.rs)"
        );
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(scenario_arg, &args),
        "status" => cmd_status(scenario_arg, &args),
        "verify" => cmd_verify(scenario_arg, &args),
        "worker" => cmd_worker(scenario_arg, &args),
        other => Err(format!(
            "unknown command `{other}`; expected run, status, verify or worker"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
