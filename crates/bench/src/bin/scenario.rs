//! The scenario driver: runs `.peas` scenario files and maintains their
//! golden conformance snapshots.
//!
//! ```text
//! Usage: scenario <command> [name ...]
//!
//! Commands:
//!   list                 list the corpus with run counts
//!   run <name|all>       expand and run a scenario's full sweep, print a summary
//!                        (`--json`: emit one schema-1 report line per run,
//!                        the same serialized form the sweep journal uses)
//!   fingerprint <name|all>  run the golden config, print its snapshot
//!   check [name|all]     compare fresh snapshots against scenarios/golden/ (exit 1 on drift)
//!   bless [name|all]     rewrite scenarios/golden/ snapshots from fresh runs
//! ```
//!
//! Names are file stems of files under `scenarios/` (e.g. `fig9`); `all`
//! (the default for `check` and `bless`) covers the whole corpus.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use peas_bench::model_gate::model_snapshot;
use peas_scenario::{first_divergence, load_compiled, CompiledScenario, Snapshot};
use peas_sim::{encode_report, Runner};

/// The scenario corpus directory, anchored at the workspace root so the
/// binary works from any working directory.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Where a scenario's golden snapshot lives.
fn golden_path(dir: &Path, name: &str) -> PathBuf {
    dir.join("golden").join(format!("{name}.golden"))
}

/// Loads the whole corpus (sorted by file name for deterministic order).
fn load_corpus(dir: &Path) -> Result<Vec<(String, CompiledScenario)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "peas"))
        .collect();
    paths.sort();
    let mut corpus = Vec::with_capacity(paths.len());
    for path in paths {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let compiled = load_compiled(&path).map_err(|e| e.to_string())?;
        corpus.push((stem, compiled));
    }
    Ok(corpus)
}

/// Resolves the requested names (or the whole corpus for `all`/empty).
fn select(
    corpus: Vec<(String, CompiledScenario)>,
    names: &[String],
) -> Result<Vec<(String, CompiledScenario)>, String> {
    if names.is_empty() || names.iter().any(|n| n == "all") {
        return Ok(corpus);
    }
    let mut selected = Vec::new();
    for name in names {
        match corpus.iter().find(|(stem, _)| stem == name) {
            Some(found) => selected.push(found.clone()),
            None => {
                let known: Vec<&str> = corpus.iter().map(|(s, _)| s.as_str()).collect();
                return Err(format!(
                    "unknown scenario `{name}` (known: {})",
                    known.join(", ")
                ));
            }
        }
    }
    Ok(selected)
}

/// The canonical snapshot of a scenario: a model-checker outcome for
/// `[model]` scenarios, a golden-config simulation otherwise.
fn snapshot_of(scenario: &CompiledScenario) -> Result<Snapshot, String> {
    if scenario.model.is_some() {
        return model_snapshot(scenario);
    }
    Ok(Snapshot::of_report(
        &Runner::new(scenario.golden_config()).run_single(),
    ))
}

fn cmd_list(corpus: &[(String, CompiledScenario)]) {
    for (stem, scenario) in corpus {
        if let Some(spec) = &scenario.model {
            let kind = if scenario.trace.is_some() {
                "trace replay"
            } else {
                "exhaustive exploration"
            };
            println!("{stem:<12} {:>4} nodes  model world ({kind})", spec.nodes);
            continue;
        }
        let runs = scenario.runs();
        let sweep = match &scenario.sweep {
            Some(sw) => format!(
                "sweep {}.{} ({} values x {} seeds)",
                sw.section,
                sw.key,
                sw.values.len(),
                sw.seeds.len()
            ),
            None => "single run".to_string(),
        };
        println!(
            "{stem:<12} {:>4} nodes  {:>3} runs  {sweep}",
            scenario.base.node_count,
            runs.len()
        );
    }
}

fn cmd_run(selected: &[(String, CompiledScenario)], json: bool) -> bool {
    let mut ok = true;
    for (stem, scenario) in selected {
        if scenario.model.is_some() {
            // Model scenarios have no simulation runs; their "run" is
            // the exploration/replay snapshot itself.
            match model_snapshot(scenario) {
                Ok(snapshot) => print!("{}", snapshot.render(stem)),
                Err(e) => {
                    eprintln!("{stem}: {e}");
                    ok = false;
                }
            }
            continue;
        }
        let runs = scenario.runs();
        if !json {
            println!("{stem}: {} runs", runs.len());
        }
        let labels: Vec<String> = runs.iter().map(|r| r.label.clone()).collect();
        let configs = runs.into_iter().map(|r| r.config).collect();
        let reports = Runner::configs(configs).run();
        for (label, report) in labels.iter().zip(&reports) {
            if json {
                println!("{}", encode_report(report));
            } else {
                println!(
                    "  {label:<40} cov1-life {:>9.1} s  wakeups {:>6}  consumed {:>8.2} J",
                    report.coverage_lifetime(1, 0.9),
                    report.total_wakeups(),
                    report.consumed_j,
                );
            }
        }
    }
    ok
}

fn cmd_fingerprint(selected: &[(String, CompiledScenario)]) -> bool {
    let mut ok = true;
    for (stem, scenario) in selected {
        match snapshot_of(scenario) {
            Ok(snapshot) => print!("{}", snapshot.render(stem)),
            Err(e) => {
                eprintln!("{stem}: {e}");
                ok = false;
            }
        }
    }
    ok
}

fn cmd_check(dir: &Path, selected: &[(String, CompiledScenario)]) -> bool {
    let mut clean = true;
    for (stem, scenario) in selected {
        let path = golden_path(dir, stem);
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "{stem}: missing golden snapshot {} ({e}); run `bless`",
                    path.display()
                );
                clean = false;
                continue;
            }
        };
        let expected = match Snapshot::parse(&committed) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("{stem}: malformed golden snapshot: {e}");
                clean = false;
                continue;
            }
        };
        let actual = match snapshot_of(scenario) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("{stem}: {e}");
                clean = false;
                continue;
            }
        };
        match first_divergence(&expected, &actual) {
            None => println!("{stem}: ok"),
            Some(divergence) => {
                eprintln!("{stem}: DRIFT at {divergence} (golden: {})", path.display());
                clean = false;
            }
        }
    }
    clean
}

fn cmd_bless(dir: &Path, selected: &[(String, CompiledScenario)]) -> Result<(), String> {
    let golden_dir = dir.join("golden");
    std::fs::create_dir_all(&golden_dir)
        .map_err(|e| format!("cannot create {}: {e}", golden_dir.display()))?;
    for (stem, scenario) in selected {
        let snapshot = snapshot_of(scenario)?;
        let path = golden_path(dir, stem);
        std::fs::write(&path, snapshot.render(stem))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let headline = snapshot
            .get("fingerprint")
            .or_else(|| snapshot.get("canon_hash"))
            .or_else(|| snapshot.get("final_state_hash"))
            .unwrap_or("?");
        println!("{stem}: blessed {} ({headline})", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("usage: scenario <list|run|fingerprint|check|bless> [name ...|all] [--json]");
        return ExitCode::FAILURE;
    };
    let json = args.iter().any(|a| a == "--json");
    let names: Vec<String> = args[1..]
        .iter()
        .filter(|a| a.as_str() != "--json")
        .cloned()
        .collect();
    let dir = corpus_dir();

    let corpus = match load_corpus(&dir) {
        Ok(corpus) => corpus,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let selected = match select(corpus, &names) {
        Ok(selected) => selected,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let t0 = std::time::Instant::now();
    let ok = match command {
        "list" => {
            cmd_list(&selected);
            true
        }
        "run" => cmd_run(&selected, json),
        "fingerprint" => cmd_fingerprint(&selected),
        "check" => cmd_check(&dir, &selected),
        "bless" => match cmd_bless(&dir, &selected) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("error: {e}");
                false
            }
        },
        other => {
            eprintln!("unknown command `{other}`; expected list, run, fingerprint, check or bless");
            false
        }
    };
    eprintln!("[{:.2?}]", t0.elapsed());
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
