//! Regenerates the tables and figures of the PEAS paper (ICDCS 2003).
//!
//! ```text
//! Usage: paper <command> [--quick] [--seeds a,b,c]
//!
//! Commands:
//!   fig9 fig10 fig11 table1    deployment-number sweep artifacts
//!   fig12 fig13 fig14          failure-rate sweep artifacts
//!   sweep-n                    fig9 + fig10 + fig11 + table1 from one sweep
//!   sweep-f                    fig12 + fig13 + fig14 from one sweep
//!   kaccuracy adaptive gaps connectivity loss turnoff deployment irregular events baselines
//!   all                        everything above
//!   smoke [n] [seed]           one summarized run
//! ```
//!
//! `--quick` shrinks the sweeps (3 deployment points, 3 failure rates,
//! 2 seeds) for CI-speed runs; without it, the paper-scale sweeps
//! (5 × 5 and 9 × 5 runs) take some minutes.

use std::env;
use std::process::ExitCode;

use peas_bench::experiments::{self, ExperimentOpts};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: paper <command> [--quick] [--seeds a,b,c]; see --help");
        return ExitCode::FAILURE;
    }
    if args[0] == "--help" || args[0] == "-h" {
        println!(
            "commands: fig9 fig10 fig11 table1 fig12 fig13 fig14 sweep-n sweep-f \
             kaccuracy adaptive gaps connectivity loss turnoff deployment irregular events rp lambdad baselines all smoke"
        );
        return ExitCode::SUCCESS;
    }

    let command = args[0].as_str();
    let quick = args.iter().any(|a| a == "--quick");
    let mut opts = if quick {
        ExperimentOpts::quick()
    } else {
        ExperimentOpts::full()
    };
    if let Some(pos) = args.iter().position(|a| a == "--seeds") {
        let Some(list) = args.get(pos + 1) else {
            eprintln!("--seeds requires a comma-separated list");
            return ExitCode::FAILURE;
        };
        match list
            .split(',')
            .map(str::parse)
            .collect::<Result<Vec<u64>, _>>()
        {
            Ok(seeds) if !seeds.is_empty() => opts.seeds = seeds,
            _ => {
                eprintln!("--seeds requires a comma-separated list of integers");
                return ExitCode::FAILURE;
            }
        }
    }

    let t0 = std::time::Instant::now();
    match command {
        "fig9" => print!("{}", experiments::fig9(&opts.run_deployment_sweep())),
        "fig10" => print!("{}", experiments::fig10(&opts.run_deployment_sweep())),
        "fig11" => print!("{}", experiments::fig11(&opts.run_deployment_sweep())),
        "table1" => print!("{}", experiments::table1(&opts.run_deployment_sweep())),
        "fig12" => print!("{}", experiments::fig12(&opts.run_failure_sweep())),
        "fig13" => print!("{}", experiments::fig13(&opts.run_failure_sweep())),
        "fig14" => print!("{}", experiments::fig14(&opts.run_failure_sweep())),
        "sweep-n" => {
            let points = opts.run_deployment_sweep();
            print!(
                "{}\n{}\n{}\n{}",
                experiments::fig9(&points),
                experiments::fig10(&points),
                experiments::fig11(&points),
                experiments::table1(&points)
            );
        }
        "sweep-f" => {
            let points = opts.run_failure_sweep();
            print!(
                "{}\n{}\n{}",
                experiments::fig12(&points),
                experiments::fig13(&points),
                experiments::fig14(&points)
            );
        }
        "kaccuracy" => print!("{}", experiments::kaccuracy()),
        "adaptive" => print!("{}", experiments::adaptive(&opts)),
        "gaps" => print!("{}", experiments::gaps()),
        "connectivity" => print!("{}", experiments::connectivity(&opts)),
        "loss" => print!("{}", experiments::loss(&opts)),
        "deployment" => print!("{}", experiments::deployment_dist(&opts)),
        "irregular" => print!("{}", experiments::irregular(&opts)),
        "events" => print!("{}", experiments::events(&opts)),
        "rp" => print!("{}", experiments::rp_sweep(&opts)),
        "lambdad" => print!("{}", experiments::lambdad_sweep(&opts)),
        "turnoff" => print!("{}", experiments::turnoff(&opts)),
        "baselines" => print!("{}", experiments::baselines(&opts)),
        "smoke" => {
            let n = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(160usize);
            let seed = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1u64);
            print!("{}", experiments::smoke(n, seed));
        }
        "all" => {
            let points_n = opts.run_deployment_sweep();
            print!(
                "{}\n{}\n{}\n{}\n",
                experiments::fig9(&points_n),
                experiments::fig10(&points_n),
                experiments::fig11(&points_n),
                experiments::table1(&points_n)
            );
            let points_f = opts.run_failure_sweep();
            print!(
                "{}\n{}\n{}\n",
                experiments::fig12(&points_f),
                experiments::fig13(&points_f),
                experiments::fig14(&points_f)
            );
            print!(
                "{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n",
                experiments::kaccuracy(),
                experiments::adaptive(&opts),
                experiments::gaps(),
                experiments::connectivity(&opts),
                experiments::loss(&opts),
                experiments::turnoff(&opts),
                experiments::deployment_dist(&opts),
                experiments::irregular(&opts),
                experiments::baselines(&opts)
            );
            println!("{}", experiments::events(&opts));
            println!("{}", experiments::rp_sweep(&opts));
            println!("{}", experiments::lambdad_sweep(&opts));
        }
        other => {
            eprintln!("unknown command {other:?}; see --help");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("[paper] {command} finished in {:.1?}", t0.elapsed());
    ExitCode::SUCCESS
}
