//! Hot-path throughput benchmark: runs the paper-scale scenario and reports
//! simulator events per wall-clock second plus peak RSS, writing the result
//! to `BENCH_hotpath.json`.
//!
//! Usage:
//!   hotpath [--nodes N] [--horizon-secs S] [--seeds a,b,c]
//!           [--reps N] [--out PATH] [--baseline PATH] [--label TEXT]
//!
//! `--baseline` points at a previous run's JSON; the new file then records
//! the speedup against it, so before/after comparisons use the same binary
//! and scenario. The reported wall time is the best of `--reps`
//! repetitions of the whole seed set, which screens out scheduler noise on
//! busy machines.

use std::time::Instant;

use peas_des::time::SimTime;
use peas_sim::{Runner, ScenarioConfig};

struct Args {
    nodes: usize,
    horizon_secs: u64,
    seeds: Vec<u64>,
    reps: u32,
    out: String,
    baseline: Option<String>,
    label: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            nodes: 320,
            horizon_secs: 2_000,
            seeds: vec![1, 2, 3],
            reps: 3,
            out: "BENCH_hotpath.json".to_string(),
            baseline: None,
            label: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--nodes" => args.nodes = value("--nodes").parse().expect("bad --nodes"),
                "--horizon-secs" => {
                    args.horizon_secs = value("--horizon-secs").parse().expect("bad --horizon-secs")
                }
                "--seeds" => {
                    args.seeds = value("--seeds")
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad --seeds"))
                        .collect()
                }
                "--reps" => args.reps = value("--reps").parse().expect("bad --reps"),
                "--out" => args.out = value("--out"),
                "--baseline" => args.baseline = Some(value("--baseline")),
                "--label" => args.label = Some(value("--label")),
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(!args.seeds.is_empty(), "need at least one seed");
        assert!(args.reps > 0, "need at least one repetition");
        args
    }
}

/// Peak resident set size in bytes from `/proc/self/status` (`VmHWM`),
/// or `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Pulls `"events_per_sec": <float>` out of a previous run's JSON without a
/// JSON dependency.
fn baseline_events_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"events_per_sec\":";
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args = Args::parse();
    let config = |seed: u64| {
        let mut c = ScenarioConfig::paper(args.nodes).with_seed(seed);
        c.horizon = SimTime::from_secs(args.horizon_secs);
        c
    };

    // Warm-up run (untimed): page in code, size allocator pools.
    let _ = Runner::new(config(args.seeds[0])).run_single();

    let mut total_events: u64 = 0;
    let mut total_wakeups: u64 = 0;
    let mut total_frames: u64 = 0;
    let mut wall = f64::INFINITY;
    for rep in 0..args.reps {
        let mut rep_events: u64 = 0;
        let mut rep_wakeups: u64 = 0;
        let mut rep_frames: u64 = 0;
        let start = Instant::now();
        for &seed in &args.seeds {
            let report = Runner::new(config(seed)).run_single();
            rep_events += report.events_processed;
            rep_wakeups += report.total_wakeups();
            rep_frames += report.medium.frames_sent;
        }
        wall = wall.min(start.elapsed().as_secs_f64());
        if rep == 0 {
            (total_events, total_wakeups, total_frames) = (rep_events, rep_wakeups, rep_frames);
        } else {
            // Determinism check for free: every repetition replays the
            // identical event stream.
            assert_eq!(
                (rep_events, rep_wakeups, rep_frames),
                (total_events, total_wakeups, total_frames)
            );
        }
    }
    let events_per_sec = total_events as f64 / wall;
    let rss = peak_rss_bytes();

    let mut json = String::new();
    json.push_str("{\n");
    if let Some(label) = &args.label {
        assert!(
            !label.contains(['"', '\\']),
            "label must not contain quotes or backslashes"
        );
        json.push_str(&format!("  \"label\": \"{label}\",\n"));
    }
    json.push_str(&format!("  \"nodes\": {},\n", args.nodes));
    json.push_str(&format!("  \"horizon_secs\": {},\n", args.horizon_secs));
    json.push_str(&format!(
        "  \"seeds\": [{}],\n",
        args.seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"wall_secs\": {wall:.3},\n"));
    json.push_str(&format!("  \"events_processed\": {total_events},\n"));
    json.push_str(&format!("  \"total_wakeups\": {total_wakeups},\n"));
    json.push_str(&format!("  \"frames_sent\": {total_frames},\n"));
    match rss {
        Some(bytes) => json.push_str(&format!("  \"peak_rss_bytes\": {bytes},\n")),
        None => json.push_str("  \"peak_rss_bytes\": null,\n"),
    }
    if let Some(base) = args.baseline.as_deref().and_then(baseline_events_per_sec) {
        json.push_str(&format!("  \"baseline_events_per_sec\": {base:.1},\n"));
        json.push_str(&format!("  \"speedup\": {:.3},\n", events_per_sec / base));
    }
    json.push_str(&format!("  \"events_per_sec\": {events_per_sec:.1}\n"));
    json.push_str("}\n");

    std::fs::write(&args.out, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {}", args.out);
}
