//! Scale-ladder benchmark: runs the `scenarios/scale-1m.peas` tiers
//! (10k / 100k / 1M nodes) in ascending order and writes per-tier
//! events/sec, peak RSS and precomputed-table bytes to `BENCH_scale.json`.
//!
//! Usage:
//!   scale [--tiers 10000,100000,1000000] [--horizons 400,100,30]
//!         [--out PATH] [--min-events-per-sec F] [--max-rss-mb M]
//!
//! `--tiers` selects a subset of the scenario's sweep values (the CI
//! scale-smoke job runs `--tiers 10000` only); `--horizons` overrides the
//! simulated horizon per selected tier, positionally. The assertion flags
//! turn the bench into a regression gate: after all tiers ran, exit
//! non-zero if any tier fell below the events/sec floor or the process
//! peak RSS exceeded the ceiling.
//!
//! Peak RSS is read from `/proc/self/status` (`VmHWM`) and is a process
//! high-water mark: tiers run smallest-first, so each tier's reading is
//! the peak over itself and every smaller tier before it.

use std::path::Path;
use std::time::Instant;

use peas_des::time::SimTime;
use peas_scenario::load_compiled;
use peas_sim::World;

struct Args {
    tiers: Vec<usize>,
    horizons: Vec<u64>,
    out: String,
    min_events_per_sec: Option<f64>,
    max_rss_mb: Option<u64>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            tiers: vec![10_000, 100_000, 1_000_000],
            horizons: vec![400, 100, 30],
            out: "BENCH_scale.json".to_string(),
            min_events_per_sec: None,
            max_rss_mb: None,
        };
        let mut horizons_given = false;
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--tiers" => {
                    args.tiers = value("--tiers")
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad --tiers"))
                        .collect()
                }
                "--horizons" => {
                    horizons_given = true;
                    args.horizons = value("--horizons")
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad --horizons"))
                        .collect()
                }
                "--out" => args.out = value("--out"),
                "--min-events-per-sec" => {
                    args.min_events_per_sec =
                        Some(value("--min-events-per-sec").parse().expect("bad floor"))
                }
                "--max-rss-mb" => {
                    args.max_rss_mb = Some(value("--max-rss-mb").parse().expect("bad ceiling"))
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(!args.tiers.is_empty(), "need at least one tier");
        if !horizons_given {
            // Default horizons are positional over the full ladder; when a
            // subset of tiers is selected, keep each tier's own default.
            let defaults = [(10_000, 400), (100_000, 100), (1_000_000, 30)];
            args.horizons = args
                .tiers
                .iter()
                .map(|&t| {
                    defaults
                        .iter()
                        .find(|&&(n, _)| n == t)
                        .map_or(60, |&(_, h)| h)
                })
                .collect();
        }
        assert_eq!(
            args.tiers.len(),
            args.horizons.len(),
            "--horizons must list one value per selected tier"
        );
        args
    }
}

/// Peak resident set size in bytes from `/proc/self/status` (`VmHWM`),
/// or `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

struct TierResult {
    nodes: usize,
    horizon_secs: u64,
    build_secs: f64,
    run_secs: f64,
    events_processed: u64,
    total_wakeups: u64,
    /// Whole-tier rate: events over build + run wall time. Useful for
    /// end-to-end budgeting, but it punishes tiers with short horizons
    /// (the 1M tier spends seconds building tables it then uses for a
    /// 30 s simulated horizon).
    events_per_sec: f64,
    /// Pure event-loop rate: events over run wall time only. This is the
    /// number tier-over-tier comparisons and the CI floors gate on —
    /// table-build cost scales differently from per-event cost and must
    /// not pollute it.
    run_events_per_sec: f64,
    /// Peak simultaneously pending events (queue-depth high-water mark).
    queue_high_water: usize,
    /// Event-queue heap bytes at end of run (rungs + bitvector).
    queue_bytes: usize,
    table_bytes: usize,
    peak_rss_bytes: Option<u64>,
}

fn main() {
    let args = Args::parse();
    let scenario_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/scale-1m.peas");
    let scenario = load_compiled(&scenario_path).expect("scale-1m.peas must compile");
    let runs = scenario.runs();

    let mut tiers: Vec<(usize, u64)> = args
        .tiers
        .iter()
        .zip(&args.horizons)
        .map(|(&t, &h)| (t, h))
        .collect();
    // Ascending order keeps the VmHWM high-water mark meaningful per tier.
    tiers.sort_unstable();

    let mut results = Vec::new();
    for (nodes, horizon_secs) in tiers {
        let run = runs
            .iter()
            .find(|r| r.config.node_count == nodes)
            .unwrap_or_else(|| panic!("tier {nodes} is not a scale-1m.peas sweep value"));
        let mut config = run.config.clone();
        config.horizon = SimTime::from_secs(horizon_secs);

        eprintln!("tier {nodes}: building world...");
        let build_start = Instant::now();
        let mut world = World::new(config);
        let build_secs = build_start.elapsed().as_secs_f64();
        let table_bytes = world.topology_memory_bytes();

        eprintln!(
            "tier {nodes}: built in {build_secs:.2}s ({:.1} MiB of tables); \
             running {horizon_secs}s horizon...",
            table_bytes as f64 / (1024.0 * 1024.0)
        );
        let run_start = Instant::now();
        world.run_until(SimTime::from_secs(horizon_secs));
        let run_secs = run_start.elapsed().as_secs_f64();
        let queue_high_water = world.queue_high_water();
        let queue_bytes = world.queue_memory_bytes();
        let report = world.into_report();

        let run_events_per_sec = report.events_processed as f64 / run_secs;
        let events_per_sec = report.events_processed as f64 / (build_secs + run_secs);
        eprintln!(
            "tier {nodes}: {} events in {run_secs:.2}s = {run_events_per_sec:.0} events/sec \
             (queue high-water {queue_high_water})",
            report.events_processed
        );
        results.push(TierResult {
            nodes,
            horizon_secs,
            build_secs,
            run_secs,
            events_processed: report.events_processed,
            total_wakeups: report.total_wakeups(),
            events_per_sec,
            run_events_per_sec,
            queue_high_water,
            queue_bytes,
            table_bytes,
            peak_rss_bytes: peak_rss_bytes(),
        });
    }

    let mut json = String::new();
    json.push_str("{\n  \"scenario\": \"scenarios/scale-1m.peas\",\n  \"tiers\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"nodes\": {},\n", r.nodes));
        json.push_str(&format!("      \"horizon_secs\": {},\n", r.horizon_secs));
        json.push_str(&format!("      \"build_secs\": {:.3},\n", r.build_secs));
        json.push_str(&format!("      \"run_secs\": {:.3},\n", r.run_secs));
        json.push_str(&format!(
            "      \"events_processed\": {},\n",
            r.events_processed
        ));
        json.push_str(&format!("      \"total_wakeups\": {},\n", r.total_wakeups));
        json.push_str(&format!(
            "      \"queue_high_water\": {},\n",
            r.queue_high_water
        ));
        json.push_str(&format!("      \"queue_bytes\": {},\n", r.queue_bytes));
        json.push_str(&format!("      \"table_bytes\": {},\n", r.table_bytes));
        match r.peak_rss_bytes {
            Some(b) => json.push_str(&format!("      \"peak_rss_bytes\": {b},\n")),
            None => json.push_str("      \"peak_rss_bytes\": null,\n"),
        }
        json.push_str(&format!(
            "      \"events_per_sec\": {:.1},\n",
            r.events_per_sec
        ));
        json.push_str(&format!(
            "      \"run_events_per_sec\": {:.1}\n",
            r.run_events_per_sec
        ));
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {}", args.out);

    let mut failed = false;
    if let Some(floor) = args.min_events_per_sec {
        // The floor gates the pure run rate: build time scales with
        // node count, not event count, and would otherwise mask (or
        // fake) an event-loop regression.
        for r in &results {
            if r.run_events_per_sec < floor {
                eprintln!(
                    "FAIL: tier {} ran at {:.0} events/sec, below the {floor:.0} floor",
                    r.nodes, r.run_events_per_sec
                );
                failed = true;
            }
        }
    }
    if let Some(ceiling_mb) = args.max_rss_mb {
        let peak = results.iter().filter_map(|r| r.peak_rss_bytes).max();
        if let Some(peak) = peak {
            if peak > ceiling_mb * 1024 * 1024 {
                eprintln!(
                    "FAIL: peak RSS {} MiB exceeds the {ceiling_mb} MiB ceiling",
                    peak / (1024 * 1024)
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
