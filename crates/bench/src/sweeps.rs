//! Parameter sweeps shared by the figure experiments.
//!
//! Figures 9–11 and Table 1 all read off the same deployment-number sweep,
//! and Figures 12–14 off the same failure-rate sweep; running the sweep
//! once and formatting four artifacts from it mirrors how the paper's own
//! numbers were produced (Section 5.2: "Given each node population, the
//! results are averaged over 5 simulation runs").

use peas_sim::{RunReport, Runner, ScenarioConfig};

/// One sweep point: the x-value and the per-seed reports.
#[derive(Debug)]
pub struct SweepPoint {
    /// Deployment number or failure rate, depending on the sweep.
    pub x: f64,
    /// One report per seed.
    pub reports: Vec<RunReport>,
}

impl SweepPoint {
    /// Mean of a metric over the seeds.
    pub fn mean<F: Fn(&RunReport) -> f64>(&self, metric: F) -> f64 {
        self.reports.iter().map(&metric).sum::<f64>() / self.reports.len() as f64
    }
}

/// The deployment-number sweep behind Figures 9–11 and Table 1.
///
/// The paper sweeps N ∈ {160, 320, 480, 640, 800} with a failure rate of
/// 10.66 per 5000 s, five seeds per point.
pub fn deployment_sweep(node_counts: &[usize], seeds: &[u64]) -> Vec<SweepPoint> {
    sweep(
        node_counts
            .iter()
            .map(|&n| (n as f64, ScenarioConfig::paper(n)))
            .collect(),
        seeds,
    )
}

/// The failure-rate sweep behind Figures 12–14: N = 480, rates from 5.33
/// to 48 per 5000 s in steps of 5.33.
pub fn failure_sweep(node_count: usize, rates: &[f64], seeds: &[u64]) -> Vec<SweepPoint> {
    sweep(
        rates
            .iter()
            .map(|&rate| {
                (
                    rate,
                    ScenarioConfig::paper(node_count).with_failure_rate(rate),
                )
            })
            .collect(),
        seeds,
    )
}

/// Flattens every (point, seed) run into one job list for the bounded
/// worker pool, so the whole sweep keeps all cores busy instead of
/// synchronizing after each sweep point, then reassembles the reports into
/// per-point groups in input order.
fn sweep(points: Vec<(f64, ScenarioConfig)>, seeds: &[u64]) -> Vec<SweepPoint> {
    assert!(
        points.is_empty() || !seeds.is_empty(),
        "need at least one seed"
    );
    let configs = points
        .iter()
        .flat_map(|(_, config)| seeds.iter().map(|&seed| config.clone().with_seed(seed)))
        .collect();
    let mut reports = Runner::configs(configs).run().into_iter();
    points
        .into_iter()
        .map(|(x, _)| SweepPoint {
            x,
            reports: reports.by_ref().take(seeds.len()).collect(),
        })
        .collect()
}

/// The paper's deployment numbers.
pub const PAPER_NODE_COUNTS: [usize; 5] = [160, 320, 480, 640, 800];

/// The paper's failure rates (per 5000 s): 5.33 × {1..9}.
pub const PAPER_FAILURE_RATES: [f64; 9] =
    [5.33, 10.66, 16.0, 21.33, 26.66, 32.0, 37.33, 42.66, 48.0];

/// The paper's seed count per point.
pub const PAPER_SEEDS: [u64; 5] = [101, 102, 103, 104, 105];

/// A reduced sweep for `--quick` runs and Criterion benches.
pub const QUICK_NODE_COUNTS: [usize; 3] = [160, 320, 480];
/// Reduced failure rates for `--quick`.
pub const QUICK_FAILURE_RATES: [f64; 3] = [5.33, 26.66, 48.0];
/// Reduced seeds for `--quick`.
pub const QUICK_SEEDS: [u64; 2] = [101, 102];

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::time::SimTime;

    #[test]
    fn sweep_points_carry_reports_per_seed() {
        // Miniature sweep: small populations, short horizon.
        let mut cfg = ScenarioConfig::paper(40);
        cfg.horizon = SimTime::from_secs(300);
        let points: Vec<SweepPoint> = [30usize, 40]
            .iter()
            .map(|&n| {
                let mut c = cfg.clone();
                c.node_count = n;
                SweepPoint {
                    x: n as f64,
                    reports: Runner::new(c).seeds(&[1, 2]).run(),
                }
            })
            .collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].reports.len(), 2);
        let mean = points[1].mean(|r| r.total_wakeups() as f64);
        assert!(mean > 0.0);
    }

    #[test]
    fn paper_constants_match_section_5() {
        assert_eq!(PAPER_NODE_COUNTS, [160, 320, 480, 640, 800]);
        assert_eq!(PAPER_FAILURE_RATES.len(), 9);
        assert!((PAPER_FAILURE_RATES[8] - 48.0).abs() < 1e-12);
        assert!((PAPER_FAILURE_RATES[1] - 10.66).abs() < 1e-12);
        assert_eq!(PAPER_SEEDS.len(), 5);
    }
}
