//! # peas-bench — the paper-experiment harness
//!
//! Regenerates every table and figure of the PEAS (ICDCS 2003) evaluation,
//! plus the analytical results and the ablations DESIGN.md calls out. Each
//! experiment in [`experiments`] returns a formatted, paper-style text
//! block; the `paper` binary prints them, and the Criterion benches run
//! scaled-down versions so `cargo bench` exercises every figure.
//!
//! | Experiment | Paper artifact |
//! |------------|----------------|
//! | [`experiments::fig9`]  | Fig 9 — coverage lifetime vs deployment number |
//! | [`experiments::fig10`] | Fig 10 — data delivery lifetime vs deployment number |
//! | [`experiments::fig11`] | Fig 11 — total wakeups vs deployment number |
//! | [`experiments::table1`]| Table 1 — energy overhead per deployment number |
//! | [`experiments::fig12`] | Fig 12 — coverage lifetime vs failure rate |
//! | [`experiments::fig13`] | Fig 13 — delivery lifetime vs failure rate |
//! | [`experiments::fig14`] | Fig 14 — wakeups vs failure rate |
//! | [`experiments::kaccuracy`] | §2.2.1 — estimator accuracy vs k |
//! | [`experiments::adaptive`]  | §2.2 — aggregate probing rate vs λd |
//! | [`experiments::gaps`]      | Figs 3–5 — randomized vs synchronized gaps |
//! | [`experiments::connectivity`] | §3 — (1+√5)Rp connectivity validation |
//! | [`experiments::loss`]      | §4 — multi-PROBE loss compensation |
//! | [`experiments::turnoff`]   | §4 — working-node turn-off ablation |
//! | [`experiments::baselines`] | §§1/6 — PEAS vs always-on / synchronized / GAF |

pub mod experiments;
pub mod model_gate;
pub mod sweeps;

pub use experiments::ExperimentOpts;
