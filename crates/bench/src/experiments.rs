//! The figure/table formatters: each returns a paper-style text block.

use std::fmt::Write as _;

use peas::PeasConfig;
use peas_analysis::{linear_fit, mean_gaps, GapModel, Summary};
use peas_des::time::SimTime;
use peas_geom::CONNECTIVITY_FACTOR;
use peas_sim::{Runner, ScenarioConfig, World};

use crate::sweeps::{
    deployment_sweep, failure_sweep, SweepPoint, PAPER_FAILURE_RATES, PAPER_NODE_COUNTS,
    PAPER_SEEDS, QUICK_FAILURE_RATES, QUICK_NODE_COUNTS, QUICK_SEEDS,
};

/// The paper's lifetime threshold (Section 5.2).
pub const LIFETIME_THRESHOLD: f64 = 0.9;

/// Scale and seed options for the experiments.
#[derive(Clone, Debug)]
pub struct ExperimentOpts {
    /// Reduced sweeps for fast runs (benches, CI).
    pub quick: bool,
    /// Seeds per sweep point.
    pub seeds: Vec<u64>,
}

impl ExperimentOpts {
    /// The paper-scale configuration: full sweeps, 5 seeds per point.
    pub fn full() -> ExperimentOpts {
        ExperimentOpts {
            quick: false,
            seeds: PAPER_SEEDS.to_vec(),
        }
    }

    /// Reduced sweeps with 2 seeds per point.
    pub fn quick() -> ExperimentOpts {
        ExperimentOpts {
            quick: true,
            seeds: QUICK_SEEDS.to_vec(),
        }
    }

    /// The deployment numbers this configuration sweeps.
    pub fn node_counts(&self) -> Vec<usize> {
        if self.quick {
            QUICK_NODE_COUNTS.to_vec()
        } else {
            PAPER_NODE_COUNTS.to_vec()
        }
    }

    /// The failure rates this configuration sweeps.
    pub fn failure_rates(&self) -> Vec<f64> {
        if self.quick {
            QUICK_FAILURE_RATES.to_vec()
        } else {
            PAPER_FAILURE_RATES.to_vec()
        }
    }

    /// Runs (or reuses) the deployment sweep.
    pub fn run_deployment_sweep(&self) -> Vec<SweepPoint> {
        deployment_sweep(&self.node_counts(), &self.seeds)
    }

    /// Runs (or reuses) the failure sweep.
    pub fn run_failure_sweep(&self) -> Vec<SweepPoint> {
        failure_sweep(480, &self.failure_rates(), &self.seeds)
    }
}

fn fit_note(points: &[(f64, f64)]) -> String {
    if points.len() < 2 {
        return String::new();
    }
    let fit = linear_fit(points);
    format!(
        "linear fit: slope {:.2} per node, R^2 = {:.3}",
        fit.slope, fit.r_squared
    )
}

/// Figure 9: 3-, 4- and 5-coverage lifetime vs deployment number.
pub fn fig9(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Figure 9 — coverage lifetime vs deployment number (seconds, 90% threshold)\n\
         nodes   3-coverage   4-coverage   5-coverage\n",
    );
    let mut cov4_points = Vec::new();
    for p in points {
        let c3 = p.mean(|r| r.coverage_lifetime(3, LIFETIME_THRESHOLD));
        let c4 = p.mean(|r| r.coverage_lifetime(4, LIFETIME_THRESHOLD));
        let c5 = p.mean(|r| r.coverage_lifetime(5, LIFETIME_THRESHOLD));
        cov4_points.push((p.x, c4));
        let _ = writeln!(
            out,
            "{:>5}   {:>10.0}   {:>10.0}   {:>10.0}",
            p.x, c3, c4, c5
        );
    }
    let _ = writeln!(out, "{}", fit_note(&cov4_points));
    out
}

/// Figure 10: data delivery lifetime vs deployment number.
pub fn fig10(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Figure 10 — data delivery lifetime vs deployment number (seconds, 90% threshold)\n\
         nodes   delivery lifetime\n",
    );
    let mut xy = Vec::new();
    for p in points {
        let life = p.mean(|r| r.delivery_lifetime(LIFETIME_THRESHOLD));
        xy.push((p.x, life));
        let _ = writeln!(out, "{:>5}   {:>17.0}", p.x, life);
    }
    let _ = writeln!(out, "{}", fit_note(&xy));
    out
}

/// Figure 11: average total wakeup count vs deployment number.
pub fn fig11(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Figure 11 — average total wakeups vs deployment number\n\
         nodes   total wakeups\n",
    );
    let mut xy = Vec::new();
    for p in points {
        let wakeups = p.mean(|r| r.total_wakeups() as f64);
        xy.push((p.x, wakeups));
        let _ = writeln!(out, "{:>5}   {:>13.0}", p.x, wakeups);
    }
    let _ = writeln!(out, "{}", fit_note(&xy));
    out
}

/// Table 1: PEAS energy overhead per deployment number.
pub fn table1(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Table 1 — energy overhead per deployment number\n\
         nodes   overhead (J)   overhead ratio\n",
    );
    for p in points {
        let j = p.mean(|r| r.overhead_j());
        let ratio = p.mean(|r| r.overhead_ratio());
        let _ = writeln!(out, "{:>5}   {:>12.2}   {:>13.3}%", p.x, j, ratio * 100.0);
    }
    out
}

/// Figure 12: coverage lifetime vs failure rate (N = 480).
pub fn fig12(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Figure 12 — coverage lifetime vs failure rate (N = 480, seconds)\n\
         rate/5000s   3-coverage   4-coverage   5-coverage   failed%\n",
    );
    for p in points {
        let c3 = p.mean(|r| r.coverage_lifetime(3, LIFETIME_THRESHOLD));
        let c4 = p.mean(|r| r.coverage_lifetime(4, LIFETIME_THRESHOLD));
        let c5 = p.mean(|r| r.coverage_lifetime(5, LIFETIME_THRESHOLD));
        let failed = p.mean(|r| r.failures_injected as f64 / r.node_count as f64);
        let _ = writeln!(
            out,
            "{:>10.2}   {:>10.0}   {:>10.0}   {:>10.0}   {:>6.1}%",
            p.x,
            c3,
            c4,
            c5,
            failed * 100.0
        );
    }
    if points.len() >= 2 {
        let first = points[0].mean(|r| r.coverage_lifetime(4, LIFETIME_THRESHOLD));
        let last = points[points.len() - 1].mean(|r| r.coverage_lifetime(4, LIFETIME_THRESHOLD));
        let _ = writeln!(
            out,
            "4-coverage drop from lowest to highest failure rate: {:.1}%",
            (1.0 - last / first) * 100.0
        );
    }
    out
}

/// Figure 13: data delivery lifetime vs failure rate (N = 480).
pub fn fig13(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Figure 13 — data delivery lifetime vs failure rate (N = 480, seconds)\n\
         rate/5000s   delivery lifetime\n",
    );
    for p in points {
        let life = p.mean(|r| r.delivery_lifetime(LIFETIME_THRESHOLD));
        let _ = writeln!(out, "{:>10.2}   {:>17.0}", p.x, life);
    }
    if points.len() >= 2 {
        let first = points[0].mean(|r| r.delivery_lifetime(LIFETIME_THRESHOLD));
        let last = points[points.len() - 1].mean(|r| r.delivery_lifetime(LIFETIME_THRESHOLD));
        let _ = writeln!(
            out,
            "delivery drop from lowest to highest failure rate: {:.1}%",
            (1.0 - last / first) * 100.0
        );
    }
    out
}

/// Figure 14: total wakeups vs failure rate, plus the constant-overhead
/// observation.
pub fn fig14(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Figure 14 — average total wakeups vs failure rate (N = 480)\n\
         rate/5000s   total wakeups   overhead ratio\n",
    );
    for p in points {
        let wakeups = p.mean(|r| r.total_wakeups() as f64);
        let ratio = p.mean(|r| r.overhead_ratio());
        let _ = writeln!(
            out,
            "{:>10.2}   {:>13.0}   {:>13.3}%",
            p.x,
            wakeups,
            ratio * 100.0
        );
    }
    out
}

/// Section 2.2.1: accuracy of the k-PROBE estimator, empirical vs CLT.
pub fn kaccuracy() -> String {
    let mut out = String::from(
        "Section 2.2.1 — k-PROBE estimator accuracy (rate 0.02/s, 20000 trials)\n\
         k     mean |rel err|   P(err<=10%) emp   P(err<=10%) CLT\n",
    );
    for k in [4u32, 8, 16, 32, 64, 128] {
        let errs = peas_analysis::poisson::estimator_errors(k, 0.02, 20_000, 7);
        let mean_err = Summary::from_slice(&errs).mean;
        let emp = peas_analysis::poisson::interval_confidence(k, 0.02, 0.1, 20_000, 7);
        let clt = peas_analysis::poisson::clt_confidence(k, 0.1);
        let _ = writeln!(
            out,
            "{:>3}   {:>14.3}   {:>15.3}   {:>15.3}",
            k, mean_err, emp, clt
        );
    }
    out.push_str(
        "note: at 1% tolerance the CLT needs k ~ 66000 for 99% confidence; the paper's\n\
         k = 32 delivers ~18% typical relative error — ample for Equation 2's feedback loop.\n",
    );
    out
}

/// Section 2.2: does Adaptive Sleeping hold the perceived aggregate rate
/// near λd?
pub fn adaptive(opts: &ExperimentOpts) -> String {
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Section 2.2 — Adaptive Sleeping: perceived aggregate probing rate (N = {n}, λd = 0.02/s)\n\
         window (s)        fixed-λ rate    adaptive rate\n",
    );
    let mut adaptive_cfg = ScenarioConfig::paper(n).with_failure_rate(0.0);
    adaptive_cfg.horizon = SimTime::from_secs(4_000);
    // The fixed-λ ablation: disable adjustment by pinning the bounds and
    // cap so λ cannot move from λ0 = λd-equivalent per-node value.
    let mut fixed_cfg = adaptive_cfg.clone();
    fixed_cfg.peas = PeasConfig::builder()
        .initial_rate(0.02)
        .rate_bounds(0.02 - 1e-9, 0.02 + 1e-9)
        .build();

    let adaptive_reports = Runner::new(adaptive_cfg.clone()).seeds(&opts.seeds).run();
    let fixed_reports = Runner::new(fixed_cfg.clone()).seeds(&opts.seeds).run();
    for (t0, t1) in [(500.0, 1500.0), (1500.0, 2500.0), (2500.0, 3500.0)] {
        let mean_rate = |reports: &[peas_sim::RunReport]| {
            let vals: Vec<f64> = reports
                .iter()
                .filter_map(|r| r.perceived_aggregate_rate(t0, t1))
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let _ = writeln!(
            out,
            "{:>6.0}-{:<6.0}   {:>12.4}   {:>12.4}",
            t0,
            t1,
            mean_rate(&fixed_reports),
            mean_rate(&adaptive_reports)
        );
    }
    out.push_str("target: adaptive rate within a small factor of λd = 0.0200\n");
    out
}

/// Figures 3–5: vacancy gaps, randomized vs synchronized wakeups.
pub fn gaps() -> String {
    let mut out = String::from(
        "Figures 3-5 — mean vacancy gap after a working node dies (seconds)\n\
         failure prob   randomized (PEAS)   synchronized\n",
    );
    for p in [0.0, 0.1, 0.2, 0.38] {
        let (rand, sync) = mean_gaps(GapModel::paper(p), 50_000, 11);
        let _ = writeln!(out, "{:>12.2}   {:>17.1}   {:>12.1}", p, rand, sync);
    }
    out.push_str(
        "randomized gaps are 1/λd regardless of failures; synchronized gaps grow as p·T/2.\n",
    );
    out
}

/// Section 3: empirical connectivity validation on PEAS working sets.
pub fn connectivity(opts: &ExperimentOpts) -> String {
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Section 3 — connectivity of PEAS working sets (N = {n}, Rp = 3 m)\n\
         seed   workers   max-NN (m)   bound (m)   lemma   conn@(1+sqrt5)Rp   conn@10m\n",
    );
    for &seed in &opts.seeds {
        let mut config = ScenarioConfig::paper(n)
            .with_failure_rate(0.0)
            .with_seed(seed);
        config.grab = None;
        config.horizon = SimTime::from_secs(2_000);
        let mut world = World::new(config.clone());
        world.run_until(SimTime::from_secs(1_500));
        let working = world.working_positions();
        let check = peas_analysis::check_working_set(
            config.field,
            &working,
            config.peas.probing_range,
            config.peas.probing_range,
            &[10.0],
        );
        let _ = writeln!(
            out,
            "{:>4}   {:>7}   {:>10.2}   {:>9.2}   {:>5}   {:>16}   {:>8}",
            seed,
            check.node_count,
            check.max_nearest_neighbor.unwrap_or(f64::NAN),
            check.lemma_bound,
            check.lemma_holds,
            check.connected_at_theorem_range,
            check.connected_at.first().map(|&(_, c)| c).unwrap_or(false)
        );
    }
    let _ = writeln!(
        out,
        "bound = (1+sqrt(5))*Rp = {:.2} m; Rt = 10 m exceeds it, so Theorem 3.1 applies.",
        CONNECTIVITY_FACTOR * 3.0
    );
    out
}

/// Section 4: PROBE retransmissions vs uniform loss — why three PROBEs.
pub fn loss(opts: &ExperimentOpts) -> String {
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Section 4 — multi-PROBE loss compensation (N = {n}, no failures)\n\
         loss   probes   mean working   spurious windows   overhead ratio\n",
    );
    for loss_rate in [0.0, 0.1, 0.2] {
        for probe_count in [1u32, 3] {
            let mut config = ScenarioConfig::paper(n).with_failure_rate(0.0);
            config.loss_rate = loss_rate;
            config.peas = PeasConfig::builder().probe_count(probe_count).build();
            config.horizon = SimTime::from_secs(3_000);
            let reports = Runner::new(config.clone()).seeds(&opts.seeds).run();
            let mean_working = reports
                .iter()
                .map(|r| r.working_series().value_at(2_500.0))
                .sum::<f64>()
                / reports.len() as f64;
            let spurious = reports
                .iter()
                .map(|r| {
                    r.node_stats.window_silent as f64
                        / (r.node_stats.window_silent + r.node_stats.window_with_reply).max(1)
                            as f64
                })
                .sum::<f64>()
                / reports.len() as f64;
            let overhead =
                reports.iter().map(|r| r.overhead_ratio()).sum::<f64>() / reports.len() as f64;
            let _ = writeln!(
                out,
                "{:>4.2}   {:>6}   {:>12.1}   {:>16.3}   {:>13.3}%",
                loss_rate,
                probe_count,
                mean_working,
                spurious,
                overhead * 100.0
            );
        }
    }
    out.push_str(
        "three PROBEs keep the silent-window fraction (unnecessary workers) low at 10-20% loss,\n\
         at an energy overhead still below 1% (the paper's Section 4 claim).\n",
    );
    out
}

/// Section 4 ablation: the working-node turn-off rule.
pub fn turnoff(opts: &ExperimentOpts) -> String {
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Section 4 — turn-off rule ablation (N = {n}, 10% loss, no failures)\n\
         turn-off   mean working   redundant pairs   turnoffs\n",
    );
    for enabled in [false, true] {
        let mut config = ScenarioConfig::paper(n).with_failure_rate(0.0);
        config.loss_rate = 0.1;
        config.grab = None;
        config.peas = PeasConfig::builder().turnoff(enabled).build();
        config.horizon = SimTime::from_secs(3_000);
        let mut working_sum = 0.0;
        let mut pair_sum = 0.0;
        let mut turnoffs = 0u64;
        for &seed in &opts.seeds {
            let mut world = World::new(config.clone().with_seed(seed));
            world.run_until(SimTime::from_secs(2_500));
            let working = world.working_positions();
            let mut pairs = 0usize;
            for i in 0..working.len() {
                for j in (i + 1)..working.len() {
                    if working[i].distance(working[j]) < config.peas.probing_range {
                        pairs += 1;
                    }
                }
            }
            working_sum += working.len() as f64;
            pair_sum += pairs as f64;
            turnoffs += world.into_report().node_stats.turnoffs;
        }
        let k = opts.seeds.len() as f64;
        let _ = writeln!(
            out,
            "{:>8}   {:>12.1}   {:>15.1}   {:>8}",
            enabled,
            working_sum / k,
            pair_sum / k,
            turnoffs / opts.seeds.len() as u64
        );
    }
    out.push_str("the rule removes redundant (within-Rp) working pairs created by losses.\n");
    out
}

/// Sections 1/6: PEAS vs the baseline schedulers on coverage lifetime.
pub fn baselines(opts: &ExperimentOpts) -> String {
    use peas_baselines::{
        AfecaLike, AlwaysOn, BaselineScenario, GafGrid, SleepScheduler, SynchronizedRounds,
    };
    let ns: Vec<usize> = if opts.quick {
        vec![160, 480]
    } else {
        vec![160, 480, 800]
    };
    let mut out = String::from(
        "Sections 1/6 — 1-coverage lifetime (s): PEAS vs baselines (failure rate 10.66/5000 s)\n\
         nodes   always-on   sync-rounds   gaf-grid   afeca-like   PEAS\n",
    );
    for &n in &ns {
        let scenario = BaselineScenario::paper(n).with_failures(10.66);
        let mean_life = |s: &dyn SleepScheduler| {
            opts.seeds
                .iter()
                .map(|&seed| {
                    s.run(&scenario, seed)
                        .coverage_lifetime(1, LIFETIME_THRESHOLD)
                })
                .sum::<f64>()
                / opts.seeds.len() as f64
        };
        let peas_life = {
            let mut config = ScenarioConfig::paper(n);
            config.grab = None;
            Runner::new(config.clone())
                .seeds(&opts.seeds)
                .run()
                .iter()
                .map(|r| r.coverage_lifetime(1, LIFETIME_THRESHOLD))
                .sum::<f64>()
                / opts.seeds.len() as f64
        };
        let _ = writeln!(
            out,
            "{:>5}   {:>9.0}   {:>11.0}   {:>8.0}   {:>10.0}   {:>6.0}",
            n,
            mean_life(&AlwaysOn),
            mean_life(&SynchronizedRounds::paper()),
            mean_life(&GafGrid::paper()),
            mean_life(&AfecaLike::paper()),
            peas_life
        );
    }
    out.push_str("always-on is flat at one battery (~4500-5000 s); the schedulers scale with N.\n");
    out
}

/// Section 4, "Distribution of deployed nodes": even deployments work
/// longer than irregular ones.
pub fn deployment_dist(opts: &ExperimentOpts) -> String {
    use peas_geom::Deployment;
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Section 4 — deployment distribution (N = {n}, failure rate 10.66/5000 s)\n\
         deployment       4-cov lifetime (s)   1-cov lifetime (s)\n",
    );
    let cases: [(&str, Deployment); 3] = [
        ("uniform", Deployment::Uniform),
        ("jittered-grid", Deployment::JitteredGrid),
        (
            "clustered",
            Deployment::Clustered {
                centers: 6,
                std_dev: 5.0,
            },
        ),
    ];
    for (name, deployment) in cases {
        let mut config = ScenarioConfig::paper(n);
        config.grab = None;
        config.deployment = deployment;
        let reports = Runner::new(config.clone()).seeds(&opts.seeds).run();
        let c4 = reports
            .iter()
            .map(|r| r.coverage_lifetime(4, LIFETIME_THRESHOLD))
            .sum::<f64>()
            / reports.len() as f64;
        let c1 = reports
            .iter()
            .map(|r| r.coverage_lifetime(1, LIFETIME_THRESHOLD))
            .sum::<f64>()
            / reports.len() as f64;
        let _ = writeln!(out, "{name:<15}   {c4:>18.0}   {c1:>18.0}");
    }
    out.push_str(
        "\"an uneven distribution may cause the system to function for less time because\n\
         regions with fewer nodes will die out much earlier\" — Section 4.\n",
    );
    out
}

/// Section 4, "Nodes with fixed transmission power": threshold filtering
/// under signal irregularity keeps the network functioning, with denser
/// working sets where reception is poorer.
pub fn irregular(opts: &ExperimentOpts) -> String {
    use peas_radio::PropagationSpec;
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Section 4 — fixed transmission power and signal irregularity (N = {n}, no failures)\n\
         configuration              mean working   1-coverage @2500 s\n",
    );
    let cases: [(&str, bool, PropagationSpec); 3] = [
        ("variable power, disc", false, PropagationSpec::Disc),
        ("fixed power, disc", true, PropagationSpec::Disc),
        ("fixed power, shadowed", true, PropagationSpec::shadowed(5)),
    ];
    for (name, fixed, propagation) in cases {
        let mut config = ScenarioConfig::paper(n).with_failure_rate(0.0);
        config.grab = None;
        config.propagation = propagation;
        if fixed {
            config.peas = PeasConfig::builder().fixed_power(10.0).build();
        }
        config.horizon = SimTime::from_secs(3_000);
        let reports = Runner::new(config.clone()).seeds(&opts.seeds).run();
        let working = reports
            .iter()
            .map(|r| r.working_series().value_at(2_500.0))
            .sum::<f64>()
            / reports.len() as f64;
        let cov = reports
            .iter()
            .map(|r| r.coverage_series(1).value_at(2_500.0))
            .sum::<f64>()
            / reports.len() as f64;
        let _ = writeln!(out, "{name:<25}   {working:>12.1}   {:>17.3}", cov);
    }
    out.push_str(
        "the received-signal-strength threshold rule keeps the working density and the\n\
         coverage intact under irregular attenuation: links that fade look longer than Rp\n\
         and are filtered, while strong links admit slightly farther workers (Section 4).\n",
    );
    out
}

/// Extension: event detection and reporting end to end — the motivating
/// application ("interested events are monitored and reported properly",
/// Section 5.2) with reports originating anywhere in the field.
pub fn events(opts: &ExperimentOpts) -> String {
    use peas_sim::EventWorkload;
    let ns: Vec<usize> = if opts.quick {
        vec![160, 320]
    } else {
        vec![160, 320, 480, 640]
    };
    let mut out = String::from(
        "Extension — event detection and delivery (events ~ Poisson 20/100 s, to t = 4000 s)\n\
         nodes   events   detected   delivered to sink\n",
    );
    for &n in &ns {
        let mut config = ScenarioConfig::paper(n).with_failure_rate(10.66);
        config.events = Some(EventWorkload {
            rate_per_100s: 20.0,
        });
        config.horizon = SimTime::from_secs(4_000);
        let reports = Runner::new(config.clone()).seeds(&opts.seeds).run();
        let total =
            reports.iter().map(|r| r.events_total).sum::<u64>() as f64 / reports.len() as f64;
        let detected = reports
            .iter()
            .filter_map(|r| r.event_detection_ratio())
            .sum::<f64>()
            / reports.len() as f64;
        let delivered = reports
            .iter()
            .filter_map(|r| r.event_delivery_ratio())
            .sum::<f64>()
            / reports.len() as f64;
        let _ = writeln!(
            out,
            "{n:>5}   {total:>6.0}   {:>7.1}%   {:>16.1}%",
            detected * 100.0,
            delivered * 100.0
        );
    }
    out.push_str(
        "the PEAS working set both sees the events (K-coverage in action) and routes\n\
         their reports to the sink over the GRAB cost field.\n",
    );
    out
}

/// Sensitivity: the probing range `Rp` (Section 2.1 — "The probing range
/// determines the redundancy of working nodes").
pub fn rp_sweep(opts: &ExperimentOpts) -> String {
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Sensitivity — probing range Rp (N = {n}, no failures, t = 2500 s)\n\
         Rp (m)   mean working   1-coverage   4-coverage   connected@10m\n",
    );
    for rp in [2.0, 3.0, 4.0, 5.0, 6.0] {
        let mut config = ScenarioConfig::paper(n).with_failure_rate(0.0);
        config.grab = None;
        config.peas = PeasConfig::builder().probing_range(rp).build();
        config.horizon = SimTime::from_secs(3_000);
        let mut working_sum = 0.0;
        let mut cov1 = 0.0;
        let mut cov4 = 0.0;
        let mut connected = 0usize;
        for &seed in &opts.seeds {
            let mut world = World::new(config.clone().with_seed(seed));
            world.run_until(SimTime::from_secs(2_500));
            let positions = world.working_positions();
            working_sum += positions.len() as f64;
            if peas_geom::connectivity::analyze(config.field, &positions, 10.0).is_connected() {
                connected += 1;
            }
            let report = world.into_report();
            cov1 += report.coverage_series(1).value_at(2_500.0);
            cov4 += report.coverage_series(4).value_at(2_500.0);
        }
        let k = opts.seeds.len() as f64;
        let _ = writeln!(
            out,
            "{rp:>6.1}   {:>12.1}   {:>10.3}   {:>10.3}   {connected:>7}/{}",
            working_sum / k,
            cov1 / k,
            cov4 / k,
            opts.seeds.len()
        );
    }
    out.push_str(
        "larger Rp -> sparser working sets: cheaper but less redundant; beyond\n\
         Rt/(1+sqrt5) = 3.09 m the Section 3 connectivity guarantee no longer applies.\n",
    );
    out
}

/// Sensitivity: the desired aggregate probing rate λd (Section 2.2 — set
/// from the application's tolerance of sensing interruptions). Trades
/// energy overhead against failure-replacement latency.
pub fn lambdad_sweep(opts: &ExperimentOpts) -> String {
    let n = if opts.quick { 240 } else { 480 };
    let mut out = format!(
        "Sensitivity — desired aggregate rate lambda_d (N = {n}, failures 26.66/5000 s)\n\
         lambda_d   wakeups/1000 s   overhead ratio   4-cov @3500 s\n",
    );
    for lambdad in [0.005, 0.02, 0.08] {
        let mut config = ScenarioConfig::paper(n).with_failure_rate(26.66);
        config.grab = None;
        config.peas = PeasConfig::builder().desired_rate(lambdad).build();
        config.horizon = SimTime::from_secs(4_000);
        let reports = Runner::new(config.clone()).seeds(&opts.seeds).run();
        let wakeups = reports
            .iter()
            .map(|r| r.wakeup_series().value_at(4_000.0) - r.wakeup_series().value_at(3_000.0))
            .sum::<f64>()
            / reports.len() as f64;
        let overhead =
            reports.iter().map(|r| r.overhead_ratio()).sum::<f64>() / reports.len() as f64;
        let cov4 = reports
            .iter()
            .map(|r| r.coverage_series(4).value_at(3_500.0))
            .sum::<f64>()
            / reports.len() as f64;
        let _ = writeln!(
            out,
            "{lambdad:>8.3}   {wakeups:>14.0}   {:>13.3}%   {cov4:>12.3}",
            overhead * 100.0
        );
    }
    out.push_str(
        "higher lambda_d replaces failed workers faster (1/lambda_d mean gap, Figs 3-5)\n\
         at proportionally higher probing overhead — the Section 2.2 dial.\n",
    );
    out
}

/// Convenience: run one paper-scale scenario and summarize it (used by the
/// quickstart-style smoke command).
pub fn smoke(n: usize, seed: u64) -> String {
    let report = Runner::new(ScenarioConfig::paper(n).with_seed(seed)).run_single();
    format!(
        "N={n} seed={seed}: end={:.0}s wakeups={} cov4-lifetime={:.0}s delivery-lifetime={:.0}s \
         overhead={:.2}J ({:.3}%) failures={} energy-deaths={}\n",
        report.end_secs,
        report.total_wakeups(),
        report.coverage_lifetime(4, LIFETIME_THRESHOLD),
        report.delivery_lifetime(LIFETIME_THRESHOLD),
        report.overhead_j(),
        report.overhead_ratio() * 100.0,
        report.failures_injected,
        report.energy_deaths
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_sweep_sizes() {
        assert_eq!(ExperimentOpts::full().node_counts().len(), 5);
        assert_eq!(ExperimentOpts::quick().node_counts().len(), 3);
        assert_eq!(ExperimentOpts::full().failure_rates().len(), 9);
        assert_eq!(ExperimentOpts::quick().seeds.len(), 2);
    }

    #[test]
    fn kaccuracy_block_is_well_formed() {
        let block = kaccuracy();
        assert!(block.contains("k = 32"));
        assert!(block.lines().count() >= 8);
    }

    #[test]
    fn gaps_block_shows_the_contrast() {
        let block = gaps();
        assert!(block.contains("randomized"));
        // The 0.38 row must show synchronized gaps far above 50 s.
        let last_row = block
            .lines()
            .find(|l| l.trim_start().starts_with("0.38"))
            .expect("0.38 row");
        let cols: Vec<f64> = last_row
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        assert_eq!(cols.len(), 3);
        assert!(cols[2] > cols[1] * 5.0, "{last_row}");
    }

    #[test]
    fn figure_formatters_render_tables() {
        // Tiny synthetic sweep to exercise the formatting paths.
        let mut cfg = ScenarioConfig::paper(40);
        cfg.horizon = SimTime::from_secs(200);
        let points = vec![SweepPoint {
            x: 40.0,
            reports: Runner::new(cfg.clone()).seeds(&[1]).run(),
        }];
        for block in [
            fig9(&points),
            fig10(&points),
            fig11(&points),
            table1(&points),
            fig12(&points),
            fig13(&points),
            fig14(&points),
        ] {
            assert!(block.lines().count() >= 3, "short block: {block}");
        }
    }

    #[test]
    fn smoke_summarizes_a_run() {
        // Use a small n so the test stays fast.
        let line = smoke(60, 3);
        assert!(line.contains("N=60"));
        assert!(line.contains("wakeups="));
    }
}
