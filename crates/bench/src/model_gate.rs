//! Bridges `.peas` scenarios with a `[model]` section to the
//! `peas-model` explorer: spec → config conversion and golden-style
//! snapshots of exploration and trace-replay outcomes, so the scenario
//! driver's `fingerprint`/`check`/`bless` pipeline covers model runs
//! with the same machinery it uses for simulations.
//!
//! Living here (not in `peas-model`) keeps the model crate free of the
//! scenario-language dependency — it stays a pure library over
//! `PeasNode`.

use peas_model::{explore, replay, ModelCfg, ModelEvent, Topology, Violation};
use peas_scenario::{CompiledScenario, ModelSpec, ModelTopology, Snapshot, TraceSpec};

/// Converts a compiled `[model]` section plus the scenario's `[peas]`
/// settings into an explorable configuration.
pub fn model_cfg(spec: &ModelSpec, scenario: &CompiledScenario) -> ModelCfg {
    ModelCfg {
        nodes: spec.nodes,
        topology: match spec.topology {
            ModelTopology::Clique => Topology::Clique,
            ModelTopology::Chain => Topology::Chain,
        },
        loss: spec.loss,
        deaths: spec.deaths,
        peas: scenario.base.peas.clone(),
        max_states: spec.max_states,
        strict_duplicate_working: false,
    }
}

/// Parses a `[trace]` section's event lines.
///
/// # Errors
///
/// Returns the first malformed event line.
pub fn parse_trace(spec: &TraceSpec) -> Result<Vec<ModelEvent>, String> {
    spec.events.iter().map(|s| ModelEvent::parse(s)).collect()
}

/// The golden snapshot of a model scenario: a trace replay when the
/// scenario has a `[trace]` section, otherwise a full exploration.
///
/// # Errors
///
/// Returns a description of a malformed `[trace]` event line.
pub fn model_snapshot(scenario: &CompiledScenario) -> Result<Snapshot, String> {
    let spec = scenario
        .model
        .as_ref()
        .ok_or_else(|| "scenario has no [model] section".to_string())?;
    let cfg = model_cfg(spec, scenario);
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut push = |key: &str, value: String| fields.push((key.to_string(), value));

    if let Some(trace_spec) = &scenario.trace {
        let trace = parse_trace(trace_spec)?;
        let outcome = replay(&cfg, &trace);
        push("mode", "replay".to_string());
        push("events", trace.len().to_string());
        push("applied", outcome.applied.to_string());
        push(
            "stuck_at",
            outcome
                .stuck_at
                .map_or_else(|| "none".to_string(), |i| i.to_string()),
        );
        push("violation", rule_of(outcome.violation.as_ref()));
        push(
            "final_state_hash",
            format!("{:#018X}", outcome.final_state_hash),
        );
    } else {
        let outcome = explore(&cfg);
        push("mode", "explore".to_string());
        push("states", outcome.states.to_string());
        push("transitions", outcome.transitions.to_string());
        push("fixpoint", outcome.fixpoint.to_string());
        push("max_depth", outcome.max_depth.to_string());
        push(
            "duplicate_working_states",
            outcome.duplicate_working_states.to_string(),
        );
        push(
            "coverage_hole_states",
            outcome.coverage_hole_states.to_string(),
        );
        push("canon_hash", format!("{:#018X}", outcome.canon_hash));
        push(
            "violation",
            rule_of(outcome.violation.as_ref().map(|f| &f.violation)),
        );
    }
    Ok(Snapshot { fields })
}

/// The expected-violation rule of a scenario (`"none"` when the
/// scenario expects a clean result).
pub fn expected_rule(scenario: &CompiledScenario) -> String {
    scenario
        .trace
        .as_ref()
        .and_then(|t| t.expect_violation.clone())
        .unwrap_or_else(|| "none".to_string())
}

/// Renders a violation as its stable rule name, `"none"` when absent.
pub fn rule_of(violation: Option<&Violation>) -> String {
    violation.map_or_else(|| "none".to_string(), |v| v.rule().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> CompiledScenario {
        let doc = peas_scenario::load_str(src).expect("parses");
        peas_scenario::compile(&doc, "test").expect("compiles")
    }

    const MICRO_PEAS: &str = "\n[peas]\nprobe_count = 1\nmeasure_threshold = 2\nturnoff_tie_epsilon = 3s\nrate_lo = 0.02\nrate_hi = 0.4\n";

    #[test]
    fn explore_snapshot_has_the_stable_field_set() {
        let scenario = compiled(&format!(
            "[deployment]\ncount = 2\n{MICRO_PEAS}\n[model]\nnodes = 2\n"
        ));
        let snap = model_snapshot(&scenario).expect("snapshot");
        assert_eq!(snap.get("mode"), Some("explore"));
        assert_eq!(snap.get("violation"), Some("none"));
        assert_eq!(snap.get("fixpoint"), Some("true"));
        assert!(snap.get("canon_hash").is_some());
    }

    #[test]
    fn replay_snapshot_reports_the_trace_outcome() {
        let scenario = compiled(&format!(
            "[deployment]\ncount = 2\n{MICRO_PEAS}\n[model]\nnodes = 2\n\n\
             [trace]\nexpect_violation = \"none\"\nevents = [\"fire 0 wake\", \"fire 0 probe-send\"]\n"
        ));
        let snap = model_snapshot(&scenario).expect("snapshot");
        assert_eq!(snap.get("mode"), Some("replay"));
        assert_eq!(snap.get("applied"), Some("2"));
        assert_eq!(snap.get("stuck_at"), Some("none"));
        assert_eq!(expected_rule(&scenario), "none");
    }

    #[test]
    fn malformed_trace_events_are_reported() {
        let scenario = compiled(&format!(
            "[deployment]\ncount = 2\n{MICRO_PEAS}\n[model]\nnodes = 2\n\n\
             [trace]\nevents = [\"teleport 0 1\"]\n"
        ));
        let err = model_snapshot(&scenario).expect_err("malformed event");
        assert!(err.contains("teleport"), "{err}");
    }
}
