//! Descriptive statistics for experiment reporting.

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use peas_analysis::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 6.0]);
/// assert_eq!(s.mean, 4.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 6.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite numbers.
    pub fn from_slice(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the ~95% confidence interval for the mean
    /// (normal approximation, 1.96·σ/√n).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Ordinary least-squares line fit, for checking the paper's "grows almost
/// linearly" claims (Figures 9–11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]`.
    pub r_squared: f64,
}

/// Fits `y = slope·x + intercept` by least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given or all `x` are identical.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points for a line");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    assert!(sxx > 0.0, "all x values identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_slice(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        // Sample variance = (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn perfect_line_fits_exactly() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 4.0), (4.0, 3.0)];
        let fit = linear_fit(&pts);
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.5);
        assert!(fit.slope > 0.0);
    }

    #[test]
    fn flat_data_r2_is_one() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let fit = linear_fit(&pts);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_rejects_single_point() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }
}
