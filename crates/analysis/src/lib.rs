//! # peas-analysis — statistics and analytical reproductions
//!
//! The measurement toolkit for the PEAS (ICDCS 2003) reproduction:
//!
//! * [`stats`] — sample summaries, 95% confidence intervals and linear fits
//!   (for the "grows almost linearly" claims of Figures 9–11);
//! * [`series`] — [`TimeSeries`] with the paper's Section 5.2 lifetime
//!   extraction rule (first sustained drop below the 90% threshold);
//! * [`poisson`] — the Section 2.2.1 estimator-accuracy study: how the
//!   `k`-PROBE rate estimate tightens with `k`, empirically and by CLT;
//! * [`gaps`] — the Figures 3–5 vacancy analysis: randomized vs
//!   synchronized wakeups under unexpected failures;
//! * [`connectivity`] — empirical validation of the Section 3 theory
//!   (`Rt ≥ (1 + √5)·Rp` ⇒ connected working set).
//!
//! # Example
//!
//! ```
//! use peas_analysis::TimeSeries;
//!
//! // A 4-coverage trace: boots up, holds, then dies.
//! let cov: TimeSeries = [(0.0, 0.1), (50.0, 0.99), (5000.0, 0.97), (5050.0, 0.4)]
//!     .into_iter()
//!     .collect();
//! assert_eq!(cov.lifetime_above(0.9), Some(5050.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod gaps;
pub mod poisson;
pub mod series;
pub mod stats;

pub use connectivity::{check_working_set, ConnectivityCheck};
pub use gaps::{mean_gaps, randomized_gaps, synchronized_gaps, GapModel};
pub use series::TimeSeries;
pub use stats::{linear_fit, LinearFit, Summary};
