//! Time series and lifetime extraction.
//!
//! Section 5.2 defines the lifetimes this module computes:
//! * "The lifetime of K-coverage is the time duration from the beginning
//!   until K-coverage drops below a threshold value" (90%);
//! * "Data delivery lifetime is defined as the time when the data success
//!   ratio drops below a threshold" (90%).
//!
//! Both metrics start below the threshold (no node works at t = 0; the
//! first reports can be lost during boot), so the crossing that *ends* the
//! lifetime is the first sustained drop **after** the metric first reached
//! the threshold.

/// A sampled scalar over simulated time (seconds).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Builds a series from `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not strictly increasing or values are not
    /// finite.
    pub fn from_points(points: Vec<(f64, f64)>) -> TimeSeries {
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "timestamps must be strictly increasing");
        }
        assert!(
            points.iter().all(|p| p.0.is_finite() && p.1.is_finite()),
            "series contains non-finite entries"
        );
        TimeSeries { points }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not advance or inputs are non-finite.
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(t.is_finite() && value.is_finite(), "non-finite sample");
        if let Some(&(last, _)) = self.points.last() {
            assert!(t > last, "timestamps must be strictly increasing");
        }
        self.points.push((t, value));
    }

    /// The raw samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// The largest value observed.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The paper's lifetime rule: the time of the first *sustained* drop
    /// below `threshold` after the series first reached `threshold`.
    ///
    /// "Sustained" means the value never climbs back to the threshold in
    /// any later sample — transient dips from random factors (the paper's
    /// "few abnormal points") do not end a lifetime. Returns:
    ///
    /// * `None` if the series never reaches `threshold` (the system never
    ///   functioned);
    /// * the time of the ending sample otherwise; if the value is still at
    ///   or above threshold at the last sample, the last sample's time (the
    ///   system outlived the observation window).
    pub fn lifetime_above(&self, threshold: f64) -> Option<f64> {
        let first_reach = self.points.iter().position(|&(_, v)| v >= threshold)?;
        // Last index at or above the threshold.
        let last_ok = self
            .points
            .iter()
            .rposition(|&(_, v)| v >= threshold)
            .expect("first_reach exists");
        debug_assert!(last_ok >= first_reach);
        if last_ok == self.points.len() - 1 {
            // Still above at the end of observation.
            Some(self.points[last_ok].0)
        } else {
            // The sample after last_ok is the sustained drop.
            Some(self.points[last_ok + 1].0)
        }
    }

    /// Linearly interpolated value at `t` (clamped to the observed range).
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn value_at(&self, t: f64) -> f64 {
        assert!(!self.points.is_empty(), "empty series");
        if t <= self.points[0].0 {
            return self.points[0].1;
        }
        if t >= self.points[self.points.len() - 1].0 {
            return self.points[self.points.len() - 1].1;
        }
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = self.points[idx - 1];
        let (t1, v1) = self.points[idx];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> TimeSeries {
        TimeSeries::from_points(iter.into_iter().collect())
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(f64, f64)]) -> TimeSeries {
        TimeSeries::from_points(vals.to_vec())
    }

    #[test]
    fn lifetime_simple_drop() {
        let s = series(&[
            (0.0, 0.2),
            (10.0, 0.95),
            (20.0, 0.97),
            (30.0, 0.85),
            (40.0, 0.5),
        ]);
        assert_eq!(s.lifetime_above(0.9), Some(30.0));
    }

    #[test]
    fn lifetime_ignores_boot_phase() {
        // Starts below threshold (boot), reaches it, then drops.
        let s = series(&[(0.0, 0.0), (10.0, 0.5), (20.0, 0.95), (30.0, 0.3)]);
        assert_eq!(s.lifetime_above(0.9), Some(30.0));
    }

    #[test]
    fn lifetime_none_if_never_reached() {
        let s = series(&[(0.0, 0.1), (10.0, 0.5), (20.0, 0.85)]);
        assert_eq!(s.lifetime_above(0.9), None);
    }

    #[test]
    fn lifetime_survives_transient_dips() {
        // Dip at t=20 recovers at t=30: the sustained drop is at t=50.
        let s = series(&[
            (0.0, 0.95),
            (10.0, 0.96),
            (20.0, 0.7),
            (30.0, 0.93),
            (40.0, 0.91),
            (50.0, 0.4),
            (60.0, 0.2),
        ]);
        assert_eq!(s.lifetime_above(0.9), Some(50.0));
    }

    #[test]
    fn lifetime_open_ended_at_observation_end() {
        let s = series(&[(0.0, 0.95), (10.0, 0.96), (20.0, 0.92)]);
        assert_eq!(s.lifetime_above(0.9), Some(20.0));
    }

    #[test]
    fn lifetime_threshold_is_inclusive() {
        let s = series(&[(0.0, 0.9), (10.0, 0.8999)]);
        assert_eq!(s.lifetime_above(0.9), Some(10.0));
    }

    #[test]
    fn value_at_interpolates() {
        let s = series(&[(0.0, 0.0), (10.0, 1.0)]);
        assert_eq!(s.value_at(5.0), 0.5);
        assert_eq!(s.value_at(-1.0), 0.0);
        assert_eq!(s.value_at(11.0), 1.0);
        assert_eq!(s.value_at(10.0), 1.0);
    }

    #[test]
    fn push_enforces_monotone_time() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.5);
        s.push(2.0, 0.6);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((2.0, 0.6)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(2.0, 0.5);
        s.push(1.0, 0.6);
    }

    #[test]
    fn max_value_and_emptiness() {
        assert_eq!(TimeSeries::new().max_value(), None);
        assert!(TimeSeries::new().is_empty());
        let s = series(&[(0.0, 0.3), (1.0, 0.9), (2.0, 0.7)]);
        assert_eq!(s.max_value(), Some(0.9));
    }

    #[test]
    fn collects_from_iterator() {
        let s: TimeSeries = (0..5).map(|i| (i as f64, i as f64 * 2.0)).collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.value_at(2.0), 4.0);
    }
}
