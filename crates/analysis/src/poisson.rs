//! The Section 2.2.1 estimator-accuracy study.
//!
//! The paper argues via the central limit theorem that measuring the
//! aggregate probing rate over `k ≥ 16` PROBE inter-arrivals yields an
//! average interval within 1% of the truth with over 99% confidence, and
//! selects `k = 32` for margin. These helpers regenerate that analysis
//! empirically: they synthesize Poisson probe streams and report how the
//! `k/T` estimator's error distribution tightens with `k`.

use peas_des::rng::SimRng;

/// Relative errors `|λ̂ − λ| / λ` of `trials` independent `k`-probe
/// estimates over a Poisson process with the given `rate`.
///
/// # Panics
///
/// Panics if `k == 0`, `rate <= 0`, or `trials == 0`.
pub fn estimator_errors(k: u32, rate: f64, trials: usize, seed: u64) -> Vec<f64> {
    assert!(k > 0, "k must be positive");
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    assert!(trials > 0, "need at least one trial");
    let mut rng = SimRng::stream(seed, 0x9A15);
    (0..trials)
        .map(|_| {
            // Sum of k exponential inter-arrivals = the window duration T;
            // the estimator is λ̂ = k / T.
            let t: f64 = (0..k).map(|_| rng.exp_secs(rate)).sum();
            let estimate = k as f64 / t;
            (estimate - rate).abs() / rate
        })
        .collect()
}

/// Fraction of `k`-probe estimates whose *average interval* falls within
/// `tolerance` (relative) of the true mean interval — the quantity the
/// paper's CLT argument bounds.
///
/// Note the distinction: the paper reasons about the measured average
/// interval `T/k` (which is unbiased), not the rate `k/T`.
pub fn interval_confidence(k: u32, rate: f64, tolerance: f64, trials: usize, seed: u64) -> f64 {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut rng = SimRng::stream(seed, 0x1A7E);
    let true_interval = 1.0 / rate;
    let within = (0..trials)
        .filter(|_| {
            let t: f64 = (0..k).map(|_| rng.exp_secs(rate)).sum();
            let avg_interval = t / k as f64;
            (avg_interval - true_interval).abs() / true_interval <= tolerance
        })
        .count();
    within as f64 / trials as f64
}

/// The CLT prediction for [`interval_confidence`]: for exponential
/// inter-arrivals the average of `k` has relative standard deviation
/// `1/√k`, so `P(|error| ≤ tol) ≈ erf(tol·√k/√2)`.
pub fn clt_confidence(k: u32, tolerance: f64) -> f64 {
    erf(tolerance * (k as f64).sqrt() / std::f64::consts::SQRT_2)
}

/// Abramowitz–Stegun 7.1.26 rational approximation of the error function
/// (|error| < 1.5e-7), sufficient for the confidence comparisons here.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_shrink_with_k() {
        let mean_err = |k| {
            let errs = estimator_errors(k, 0.02, 4000, 7);
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let e4 = mean_err(4);
        let e16 = mean_err(16);
        let e64 = mean_err(64);
        assert!(e4 > e16 && e16 > e64, "errors {e4} {e16} {e64}");
        // Roughly 1/sqrt(k) scaling: quadrupling k should halve the error.
        assert!((e16 / e64 - 2.0).abs() < 0.5);
    }

    #[test]
    fn k32_estimates_are_tight() {
        let errs = estimator_errors(32, 0.02, 4000, 11);
        // Relative std at k = 32 is ~1/sqrt(32) ≈ 18%; errors above 50%
        // (nearly 3 sigma) should be rare.
        let within_half = errs.iter().filter(|&&e| e < 0.5).count() as f64 / errs.len() as f64;
        assert!(
            within_half > 0.95,
            "k=32 errors exceed 50% too often: {within_half}"
        );
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0) - 0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-6);
    }

    #[test]
    fn empirical_confidence_matches_clt() {
        // 10% tolerance at k = 32: CLT predicts erf(0.1*sqrt(32)/sqrt(2)).
        let empirical = interval_confidence(32, 0.02, 0.1, 20_000, 3);
        let predicted = clt_confidence(32, 0.1);
        assert!(
            (empirical - predicted).abs() < 0.02,
            "empirical {empirical} vs CLT {predicted}"
        );
    }

    #[test]
    fn confidence_increases_with_k() {
        let c8 = interval_confidence(8, 0.02, 0.1, 10_000, 5);
        let c32 = interval_confidence(32, 0.02, 0.1, 10_000, 5);
        let c128 = interval_confidence(128, 0.02, 0.1, 10_000, 5);
        assert!(c8 < c32 && c32 < c128, "{c8} {c32} {c128}");
    }

    #[test]
    fn paper_claim_requires_large_k_for_1_percent() {
        // The paper's "k >= 16 gives 1% error with 99% confidence" reads as
        // an application of the CLT; at 1% tolerance the CLT actually needs
        // k ~ 66000 (erf(0.01*sqrt(k)/sqrt(2)) = 0.99 => sqrt(k) ~ 258).
        // Document the discrepancy: at k = 16, 1%-confidence is only ~3%.
        let c = clt_confidence(16, 0.01);
        assert!(c < 0.05, "k=16 at 1% tolerance is far below 99%: {c}");
        // What k = 32 *does* deliver: ~1% relative error as the typical
        // (standard) deviation, i.e. 1/sqrt(k) scale accuracy at ~18%.
        let typical = 1.0 / 32.0f64.sqrt();
        assert!((0.1..0.25).contains(&typical));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = estimator_errors(0, 1.0, 10, 1);
    }
}
