//! Empirical validation of the Section 3 connectivity theory.
//!
//! Theorem 3.1: if every cell of an `Rp`-sized grid holds a node and the
//! transmission range satisfies `Rt ≥ (1 + √5)·Rp`, the PEAS working set is
//! asymptotically connected. Lemma 3.2 bounds each working node's distance
//! to its nearest working neighbor by `(1 + √5)·Rp`.
//!
//! These helpers check both claims against concrete working sets produced
//! by simulation (the `paper connectivity` experiment).

use peas_geom::{connectivity, Field, Point, CONNECTIVITY_FACTOR};

/// The verdict for one working set.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnectivityCheck {
    /// Number of working nodes examined.
    pub node_count: usize,
    /// Largest nearest-working-neighbor distance observed (None if < 2
    /// nodes).
    pub max_nearest_neighbor: Option<f64>,
    /// The Lemma 3.2 bound `(1 + √5)·Rp`.
    pub lemma_bound: f64,
    /// Whether every node has a working neighbor within the bound.
    pub lemma_holds: bool,
    /// Whether the working graph is connected at `Rt = (1 + √5)·Rp`.
    pub connected_at_theorem_range: bool,
    /// Whether the working graph is connected at the paper's actual radio
    /// range (10 m).
    pub connected_at: Vec<(f64, bool)>,
}

/// Runs the Section 3 checks on one working set.
///
/// `interior_margin` excludes nodes within that many meters of the field
/// boundary from the Lemma 3.2 bound check — the lemma's geometric argument
/// is explicitly an interior/asymptotic one ("the number of nodes in
/// boundary cells is O(l)").
///
/// # Panics
///
/// Panics if `rp` is not positive.
pub fn check_working_set(
    field: Field,
    working: &[Point],
    rp: f64,
    interior_margin: f64,
    extra_ranges: &[f64],
) -> ConnectivityCheck {
    assert!(rp > 0.0, "probing range must be positive");
    let bound = CONNECTIVITY_FACTOR * rp;
    let theorem_range = bound;

    // Lemma 3.2: nearest *working* neighbor of each interior node.
    let mut lemma_holds = true;
    let mut max_nn: Option<f64> = None;
    if working.len() >= 2 {
        for (i, &p) in working.iter().enumerate() {
            let interior = p.x >= interior_margin
                && p.y >= interior_margin
                && p.x <= field.width() - interior_margin
                && p.y <= field.height() - interior_margin;
            if !interior {
                continue;
            }
            let nn = working
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &q)| p.distance(q))
                .fold(f64::INFINITY, f64::min);
            if nn.is_finite() {
                max_nn = Some(max_nn.map_or(nn, |m| m.max(nn)));
                if nn > bound + 1e-9 {
                    lemma_holds = false;
                }
            }
        }
    }

    let report = connectivity::analyze(field, working, theorem_range);
    let connected_at = extra_ranges
        .iter()
        .map(|&r| (r, connectivity::analyze(field, working, r).is_connected()))
        .collect();

    ConnectivityCheck {
        node_count: working.len(),
        max_nearest_neighbor: max_nn,
        lemma_bound: bound,
        lemma_holds,
        connected_at_theorem_range: report.is_connected(),
        connected_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field {
        Field::new(50.0, 50.0)
    }

    /// A PEAS-like working set: greedy packing where every point of the
    /// field has a worker within Rp (simulating the probing rule's outcome).
    fn peas_like_working_set(rp: f64) -> Vec<Point> {
        let mut working: Vec<Point> = Vec::new();
        // Scan candidate positions finely; activate any candidate with no
        // worker within rp — mirrors "wake up, probe, hear nothing, work".
        let step = 0.5;
        let mut y = 0.25;
        while y < 50.0 {
            let mut x = 0.25;
            while x < 50.0 {
                let p = Point::new(x, y);
                if !working.iter().any(|w| w.within(p, rp)) {
                    working.push(p);
                }
                x += step;
            }
            y += step;
        }
        working
    }

    #[test]
    fn peas_like_set_satisfies_lemma_bound() {
        let rp = 3.0;
        let working = peas_like_working_set(rp);
        let check = check_working_set(field(), &working, rp, rp, &[10.0]);
        assert!(check.node_count > 50);
        assert!(check.lemma_holds, "max nn {:?}", check.max_nearest_neighbor);
        assert!(check.max_nearest_neighbor.unwrap() <= check.lemma_bound);
    }

    #[test]
    fn peas_like_set_is_connected_at_theorem_range() {
        let rp = 3.0;
        let working = peas_like_working_set(rp);
        let check = check_working_set(field(), &working, rp, 0.0, &[10.0]);
        assert!(check.connected_at_theorem_range);
        // And at the paper's 10 m radio range (10 > (1+sqrt5)*3 = 9.7).
        assert_eq!(check.connected_at, vec![(10.0, true)]);
    }

    #[test]
    fn sparse_set_violates_lemma() {
        // Two lonely nodes 30 m apart: bound is 9.7 m.
        let working = vec![Point::new(10.0, 25.0), Point::new(40.0, 25.0)];
        let check = check_working_set(field(), &working, 3.0, 0.0, &[]);
        assert!(!check.lemma_holds);
        assert!(!check.connected_at_theorem_range);
    }

    #[test]
    fn degenerate_sets_are_vacuously_fine() {
        let check = check_working_set(field(), &[], 3.0, 0.0, &[10.0]);
        assert!(check.lemma_holds);
        assert!(check.connected_at_theorem_range);
        let one = check_working_set(field(), &[Point::new(1.0, 1.0)], 3.0, 0.0, &[]);
        assert!(one.lemma_holds);
        assert_eq!(one.max_nearest_neighbor, None);
    }

    #[test]
    fn theorem_bound_value() {
        let check = check_working_set(field(), &[], 3.0, 0.0, &[]);
        assert!((check.lemma_bound - 9.708).abs() < 0.01);
    }
}
