//! Vacancy-gap analysis: randomized vs synchronized wakeups (Figures 3–5).
//!
//! Section 2.1.1 argues that deterministic, synchronized sleeping (as in
//! GAF/SPAN-style schemes) leaves large coverage "gaps" when a working node
//! fails *before* its predicted lifetime: nobody wakes until the scheduled
//! re-election. PEAS's randomized wakeups are memoryless — after any death
//! the next prober arrives in `Exp(Λ)` regardless of when the death
//! happened.
//!
//! This module models one sensing spot through repeated work/replace
//! cycles and measures the vacancy gap per cycle under both policies.

use peas_des::rng::SimRng;

/// Parameters of the single-spot replacement model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GapModel {
    /// A working node's energy-limited lifetime (the *predictable* part),
    /// seconds — ~5000 s with the paper's batteries.
    pub expected_lifetime: f64,
    /// Probability that the node instead fails unexpectedly, uniformly
    /// within its lifetime.
    pub failure_prob: f64,
    /// Aggregate probing rate Λ of the sleeping pool (λd = 0.02/s in the
    /// paper).
    pub aggregate_rate: f64,
}

impl GapModel {
    /// The paper-flavoured default: 5000 s lifetime, Λ = λd = 0.02/s.
    pub fn paper(failure_prob: f64) -> GapModel {
        GapModel {
            expected_lifetime: 5000.0,
            failure_prob,
            aggregate_rate: 0.02,
        }
    }

    fn validate(&self) {
        assert!(
            self.expected_lifetime > 0.0,
            "expected_lifetime must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.failure_prob),
            "failure_prob must be a probability"
        );
        assert!(self.aggregate_rate > 0.0, "aggregate_rate must be positive");
    }

    /// Draws the instant (within one cycle) at which the working node dies.
    fn death_time(&self, rng: &mut SimRng) -> f64 {
        if rng.bernoulli(self.failure_prob) {
            rng.range_f64(0.0, self.expected_lifetime)
        } else {
            self.expected_lifetime
        }
    }
}

/// Per-cycle vacancy gaps under PEAS-style randomized wakeups: memoryless,
/// so every gap is `Exp(Λ)` (Figure 5).
pub fn randomized_gaps(model: GapModel, cycles: usize, seed: u64) -> Vec<f64> {
    model.validate();
    assert!(cycles > 0, "need at least one cycle");
    let mut rng = SimRng::stream(seed, 0x6A50);
    (0..cycles)
        .map(|_| {
            let _death = model.death_time(&mut rng); // timing is irrelevant
            rng.exp_secs(model.aggregate_rate)
        })
        .collect()
}

/// Per-cycle vacancy gaps under synchronized sleeping: sleepers wake at the
/// predicted expiry, so an early failure at time `f` leaves a gap of
/// `T − f` (Figure 4); an on-schedule death leaves none.
pub fn synchronized_gaps(model: GapModel, cycles: usize, seed: u64) -> Vec<f64> {
    model.validate();
    assert!(cycles > 0, "need at least one cycle");
    let mut rng = SimRng::stream(seed, 0x5CED);
    (0..cycles)
        .map(|_| model.expected_lifetime - model.death_time(&mut rng))
        .collect()
}

/// Convenience: mean gap under both policies, `(randomized, synchronized)`.
pub fn mean_gaps(model: GapModel, cycles: usize, seed: u64) -> (f64, f64) {
    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    (
        mean(randomized_gaps(model, cycles, seed)),
        mean(synchronized_gaps(model, cycles, seed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_gap_mean_is_one_over_rate() {
        let model = GapModel::paper(0.5);
        let gaps = randomized_gaps(model, 50_000, 1);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean {mean}, expected 1/Λ = 50");
    }

    #[test]
    fn synchronized_gap_grows_with_failure_probability() {
        // E[gap] = p * T/2.
        for p in [0.1, 0.38] {
            let model = GapModel::paper(p);
            let gaps = synchronized_gaps(model, 50_000, 2);
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let expected = p * 2500.0;
            assert!(
                (mean - expected).abs() / expected < 0.05,
                "p={p}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn randomized_beats_synchronized_under_failures() {
        // At the paper's maximum failure severity (38% of nodes fail),
        // synchronized gaps dwarf randomized ones.
        let model = GapModel::paper(0.38);
        let (rand_mean, sync_mean) = mean_gaps(model, 20_000, 3);
        assert!(
            sync_mean > 10.0 * rand_mean,
            "randomized {rand_mean} vs synchronized {sync_mean}"
        );
    }

    #[test]
    fn synchronized_wins_without_failures() {
        // With perfectly predictable lifetimes the deterministic schedule
        // leaves no gap at all; randomized still pays 1/Λ. This is exactly
        // why the schemes PEAS compares against chose synchronization — it
        // is only under unpredictable failures that it breaks down.
        let model = GapModel::paper(0.0);
        let (rand_mean, sync_mean) = mean_gaps(model, 10_000, 4);
        assert_eq!(sync_mean, 0.0);
        assert!(rand_mean > 0.0);
    }

    #[test]
    fn randomized_gap_is_failure_time_independent() {
        // The mean randomized gap must not depend on failure probability.
        let g0 = randomized_gaps(GapModel::paper(0.0), 30_000, 5);
        let g9 = randomized_gaps(GapModel::paper(0.9), 30_000, 5);
        let m0 = g0.iter().sum::<f64>() / g0.len() as f64;
        let m9 = g9.iter().sum::<f64>() / g9.len() as f64;
        assert!((m0 - m9).abs() < 2.0, "{m0} vs {m9}");
    }

    #[test]
    #[should_panic(expected = "failure_prob must be a probability")]
    fn invalid_probability_rejected() {
        let mut m = GapModel::paper(0.5);
        m.failure_prob = 1.5;
        let _ = randomized_gaps(m, 10, 1);
    }
}
