//! Property-based tests for the analysis toolkit.

use proptest::prelude::*;

use peas_analysis::{linear_fit, Summary, TimeSeries};

fn arb_series() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(0.0f64..1.0, 1..60).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * 10.0, v))
            .collect()
    })
}

proptest! {
    /// Summary invariants: min <= mean <= max, std_dev >= 0, CI shrinks
    /// with larger n for the same distribution parameters.
    #[test]
    fn summary_invariants(values in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let s = Summary::from_slice(&values);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.ci95_half_width() >= 0.0);
    }

    /// Shifting a sample shifts the mean and leaves the deviation alone.
    #[test]
    fn summary_shift_equivariance(
        values in prop::collection::vec(-10.0f64..10.0, 2..100),
        shift in -50.0f64..50.0,
    ) {
        let a = Summary::from_slice(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let b = Summary::from_slice(&shifted);
        prop_assert!((b.mean - (a.mean + shift)).abs() < 1e-9);
        prop_assert!((b.std_dev - a.std_dev).abs() < 1e-9);
    }

    /// A linear fit of exactly linear data recovers slope and intercept.
    #[test]
    fn fit_recovers_lines(slope in -10.0f64..10.0, intercept in -10.0f64..10.0, n in 2usize..50) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let fit = linear_fit(&pts);
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    /// R² stays in [0, 1] for arbitrary data.
    #[test]
    fn r_squared_is_bounded(pts in prop::collection::vec((0.0f64..100.0, -50.0f64..50.0), 2..80)) {
        // Need at least two distinct x values.
        let mut pts = pts;
        pts[0].0 = 0.0;
        let last = pts.len() - 1;
        pts[last].0 = 1000.0;
        let fit = linear_fit(&pts);
        prop_assert!((0.0..=1.0).contains(&fit.r_squared));
    }

    /// Lifetime extraction: the result is always one of the sample times,
    /// never before the first time the threshold was reached, and the
    /// value at every earlier above-threshold sample really was above.
    #[test]
    fn lifetime_is_a_sample_time(points in arb_series(), threshold in 0.1f64..0.9) {
        let series = TimeSeries::from_points(points.clone());
        match series.lifetime_above(threshold) {
            None => {
                prop_assert!(points.iter().all(|&(_, v)| v < threshold));
            }
            Some(t) => {
                prop_assert!(points.iter().any(|&(pt, _)| (pt - t).abs() < 1e-9));
                let first_reach = points
                    .iter()
                    .find(|&&(_, v)| v >= threshold)
                    .map(|&(pt, _)| pt)
                    .expect("some point reached the threshold");
                prop_assert!(t >= first_reach);
                // Everything after t is strictly below the threshold (the
                // drop is sustained), unless t is the final sample.
                if (t - points.last().unwrap().0).abs() > 1e-9 {
                    for &(pt, v) in &points {
                        if pt >= t {
                            prop_assert!(v < threshold);
                        }
                    }
                }
            }
        }
    }

    /// Interpolation stays within the hull of neighboring values.
    #[test]
    fn interpolation_is_bounded(points in arb_series(), t in -10.0f64..700.0) {
        let series = TimeSeries::from_points(points.clone());
        let v = series.value_at(t);
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// Raising the threshold never lengthens a lifetime.
    #[test]
    fn lifetime_monotone_in_threshold(points in arb_series(), t1 in 0.1f64..0.5, dt in 0.0f64..0.4) {
        let series = TimeSeries::from_points(points);
        let low = series.lifetime_above(t1);
        let high = series.lifetime_above(t1 + dt);
        match (low, high) {
            (None, Some(_)) => prop_assert!(false, "higher threshold reached but lower not"),
            (Some(l), Some(h)) => prop_assert!(h <= l + 1e-9),
            _ => {}
        }
    }
}
