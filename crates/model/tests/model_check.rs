//! End-to-end model-checking runs: the exhaustive micro-world
//! explorations CI gates on, and the full counterexample pipeline
//! (find → shrink → emit → parse → replay).

use peas_model::{
    canon_key, emit_peas, explore, replay, shrink_nodes, shrink_trace, ModelCfg, ModelEvent,
    ModelWorld, Topology, Violation,
};

/// The clean-exploration tests assert "no violation", which the
/// deliberate-bug feature exists to break; they stand down when it is
/// compiled in.
#[cfg_attr(
    feature = "model-bug-inverted-tiebreak",
    ignore = "the deliberate bug makes clean exploration impossible"
)]
#[test]
fn three_node_clique_is_exhaustively_clean() {
    let outcome = explore(&ModelCfg::micro(3));
    assert!(
        outcome.fixpoint,
        "3-node exploration must drain its frontier (saw {} states)",
        outcome.states
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(
        outcome.states >= 10_000,
        "expected >= 10^4 canonical states, got {}",
        outcome.states
    );
    assert!(
        outcome.duplicate_working_states > 0,
        "the probe race must remain reachable in the quotient"
    );
    assert!(outcome.coverage_hole_states > 0);
}

#[cfg_attr(
    feature = "model-bug-inverted-tiebreak",
    ignore = "the deliberate bug makes clean exploration impossible"
)]
#[test]
fn three_node_chain_with_loss_stays_clean() {
    let mut cfg = ModelCfg::micro(3);
    cfg.topology = Topology::Chain;
    cfg.loss = true;
    let outcome = explore(&cfg);
    assert!(outcome.fixpoint);
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

#[cfg_attr(
    feature = "model-bug-inverted-tiebreak",
    ignore = "the deliberate bug makes clean exploration impossible"
)]
#[test]
fn a_death_never_strands_the_network_uncovered() {
    let mut cfg = ModelCfg::micro(3);
    cfg.deaths = 1;
    let outcome = explore(&cfg);
    assert!(outcome.fixpoint);
    // In particular: no liveness-coverage cycle after the kill — some
    // sleeper's wake path always restores a Working node.
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

#[test]
fn counterexample_pipeline_round_trips_through_peas_text() {
    let mut cfg = ModelCfg::micro(3);
    cfg.strict_duplicate_working = true;
    let found = explore(&cfg).violation.expect("probe race is reachable");
    let rule = found.violation.rule();

    let trace = shrink_trace(&cfg, &found.trace, rule);
    let (cfg, trace) = shrink_nodes(&cfg, &trace, rule);
    let text = emit_peas("model-ce-roundtrip", &cfg, &trace, rule);

    // Re-parse the events line exactly as the scenario replayer will.
    let events_line = text
        .lines()
        .find_map(|l| {
            l.strip_prefix("events = [")
                .and_then(|l| l.strip_suffix(']'))
        })
        .expect("emitted scenario has an events list");
    let parsed: Vec<ModelEvent> = events_line
        .split("\", \"")
        .map(|part| {
            let part = part.trim_start_matches('"').trim_end_matches('"');
            ModelEvent::parse(part).expect("emitted events parse")
        })
        .collect();
    assert_eq!(parsed, trace, "emission must preserve the trace");

    let outcome = replay(&cfg, &parsed);
    assert_eq!(outcome.stuck_at, None);
    assert_eq!(
        outcome.violation.as_ref().map(Violation::rule),
        Some(rule),
        "the emitted counterexample must reproduce on replay"
    );
}

#[test]
fn exploration_fingerprint_is_reproducible() {
    let a = explore(&ModelCfg::micro(3));
    let b = explore(&ModelCfg::micro(3));
    assert_eq!(a.canon_hash, b.canon_hash);
    assert_eq!(a.states, b.states);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.max_depth, b.max_depth);
}

#[test]
fn canonical_keys_are_stable_across_worlds() {
    let cfg = ModelCfg::micro(4);
    let a = ModelWorld::new(cfg.clone());
    let b = ModelWorld::new(cfg);
    assert_eq!(canon_key(&a), canon_key(&b));
}

/// The deliberate-bug gate: under the `model-bug-inverted-tiebreak`
/// feature the checker must find a `turnoff-spec` violation; without it
/// this test instead pins that the rule stays quiet.
#[test]
fn inverted_tiebreak_is_caught_iff_the_bug_is_compiled_in() {
    let cfg = ModelCfg::micro(3);
    let outcome = explore(&cfg);
    #[cfg(feature = "model-bug-inverted-tiebreak")]
    {
        let found = outcome
            .violation
            .expect("the inverted tie-break must be caught");
        assert_eq!(found.violation.rule(), "turnoff-spec");
        let shrunk = shrink_trace(&cfg, &found.trace, "turnoff-spec");
        let replayed = replay(&cfg, &shrunk);
        assert_eq!(
            replayed.violation.as_ref().map(Violation::rule),
            Some("turnoff-spec")
        );
    }
    #[cfg(not(feature = "model-bug-inverted-tiebreak"))]
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}
