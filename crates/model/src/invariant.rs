//! The invariant catalog: everything the explorer checks on every
//! reached state (or transition), with stable rule names for CI gating
//! and counterexample files.
//!
//! The turn-off property deserves a note. The paper's Section 4 rule
//! does **not** guarantee "never two Working nodes within Rp": two
//! simultaneous probers never hear each other (probing nodes ignore
//! PROBEs), both windows close silent, and both start working — the
//! probe race is intrinsic, and under message delay the two sides of a
//! pair can even legitimately evaluate the rule with different stale
//! `Tw` values. What *is* checkable is that every evaluation of the
//! rule, whenever it fires, decides the side the spec says it should —
//! the [`Violation::TurnoffSpec`] transition invariant. That is the
//! invariant the deliberate-bug harness trips.

use std::fmt;

/// A violated invariant, carrying enough context to be actionable.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// λ left `(0, ∞)` or the configured `rate_bounds`.
    RateBounds {
        /// The offending node.
        node: u32,
        /// Its probing rate at the time of the check.
        rate: f64,
    },
    /// A node is `Probing` with no armed `ReplyWindow` timer: nothing
    /// can ever close its window.
    StuckProbing {
        /// The offending node.
        node: u32,
    },
    /// `reply_pending` and the armed `ReplyBackoff` timer disagree, or
    /// a REPLY is pending outside `Working`.
    BackoffConsistency {
        /// The offending node.
        node: u32,
    },
    /// A dead node still owns armed timers or a pending REPLY.
    DeadNodeActive {
        /// The offending node.
        node: u32,
    },
    /// A sleeping node has no armed wake timer: it sleeps forever.
    SleeperWithoutAlarm {
        /// The offending node.
        node: u32,
    },
    /// A Working node that overheard a REPLY decided the wrong side of
    /// the Section 4 turn-off rule (transition invariant).
    TurnoffSpec {
        /// The evaluating (receiving) node.
        node: u32,
        /// The REPLY's sender.
        from: u32,
        /// What the spec says the receiver should have done.
        expected_yield: bool,
    },
    /// Two alive Working nodes within Rp. Deliberately stronger than
    /// what PEAS promises (see module docs); only checked when
    /// [`crate::ModelCfg::strict_duplicate_working`] is set.
    DuplicateWorking {
        /// Lower-numbered node of the pair.
        a: u32,
        /// Higher-numbered node of the pair.
        b: u32,
    },
    /// A reachable cycle of states in which some node is alive but no
    /// node is Working: coverage may never be restored.
    LivenessCycle {
        /// Number of states in the offending strongly connected
        /// component.
        states: usize,
    },
}

impl Violation {
    /// Stable machine-readable rule name (used in `[trace]`
    /// `expect_violation` and CI assertions).
    pub fn rule(&self) -> &'static str {
        match self {
            Violation::RateBounds { .. } => "rate-bounds",
            Violation::StuckProbing { .. } => "stuck-probing",
            Violation::BackoffConsistency { .. } => "backoff-consistency",
            Violation::DeadNodeActive { .. } => "dead-node-active",
            Violation::SleeperWithoutAlarm { .. } => "sleeper-without-alarm",
            Violation::TurnoffSpec { .. } => "turnoff-spec",
            Violation::DuplicateWorking { .. } => "duplicate-working",
            Violation::LivenessCycle { .. } => "liveness-coverage",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RateBounds { node, rate } => {
                write!(f, "rate-bounds: node {node} has λ = {rate}")
            }
            Violation::StuckProbing { node } => write!(
                f,
                "stuck-probing: node {node} is Probing with no reply-window timer"
            ),
            Violation::BackoffConsistency { node } => write!(
                f,
                "backoff-consistency: node {node} reply_pending/backoff-timer mismatch"
            ),
            Violation::DeadNodeActive { node } => {
                write!(f, "dead-node-active: node {node} is dead but still armed")
            }
            Violation::SleeperWithoutAlarm { node } => write!(
                f,
                "sleeper-without-alarm: node {node} sleeps with no wake timer"
            ),
            Violation::TurnoffSpec {
                node,
                from,
                expected_yield,
            } => write!(
                f,
                "turnoff-spec: node {node} heard node {from}'s REPLY and {} (spec says {})",
                if *expected_yield { "stayed" } else { "yielded" },
                if *expected_yield { "yield" } else { "stay" },
            ),
            Violation::DuplicateWorking { a, b } => {
                write!(f, "duplicate-working: nodes {a} and {b} both Working in Rp")
            }
            Violation::LivenessCycle { states } => write!(
                f,
                "liveness-coverage: {states}-state cycle with no Working node"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_stable() {
        assert_eq!(
            Violation::TurnoffSpec {
                node: 0,
                from: 1,
                expected_yield: true
            }
            .rule(),
            "turnoff-spec"
        );
        assert_eq!(
            Violation::LivenessCycle { states: 2 }.rule(),
            "liveness-coverage"
        );
    }
}
