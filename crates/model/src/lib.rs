//! # peas-model — exhaustive model checking of the PEAS state machine
//!
//! The golden fingerprints pin *one* trajectory per `(config, seed)`;
//! this crate checks *every* trajectory of a small world. It drives 2–6
//! [`peas::PeasNode`]s through all interleavings of timer firings,
//! PROBE/REPLY deliveries, message losses and node deaths, deduplicating
//! via a canonical state fingerprint, and checks safety invariants on
//! every reached state plus a liveness property (coverage is eventually
//! restored) via cycle detection over the reached graph.
//!
//! ## The abstraction
//!
//! The concrete protocol draws timer durations from a [`SimRng`]; the
//! model discards them. A [`ModelWorld`] keeps, per node, only *which*
//! timers are armed, and at every step nondeterministically fires any
//! armed timer, delivers or loses any in-flight frame, or kills a node.
//! Exploring **all** orders of these events subsumes every assignment of
//! concrete durations, so the RNG drops out of the state entirely.
//! Logical time still has to advance (the turn-off rule compares working
//! times), so each applied event ticks a 1 s quantum.
//!
//! States are deduplicated by a *canonical* key ([`canon::canon_key`])
//! that quantizes the unbounded parts (λ̂ to log₂ buckets, working-time
//! differences clamped at the tie epsilon, absolute time dropped), which
//! makes the quotient finite and the breadth-first exploration a
//! fixpoint computation. Invariants are checked on the concrete
//! representative of each canonical class; see `DESIGN.md` §10 for what
//! that does and does not prove.
//!
//! ## Counterexamples
//!
//! A violated invariant yields the breadth-first event trace that
//! reached it, which [`shrink::shrink_trace`] reduces (drop events, then
//! drop nodes) and [`emit::emit_peas`] renders as a replayable `.peas`
//! scenario with a `[trace]` section. `peas-bench scenario run` and the
//! `model` binary replay such files deterministically.
//!
//! [`SimRng`]: peas_des::rng::SimRng

pub mod canon;
pub mod cfg;
pub mod emit;
pub mod event;
pub mod explore;
pub mod invariant;
pub mod shrink;
pub mod world;

pub use canon::canon_key;
pub use cfg::{ModelCfg, Topology};
pub use emit::emit_peas;
pub use event::{ModelEvent, TimerKind};
pub use explore::{explore, replay, ExploreOutcome, FoundViolation, ReplayOutcome};
pub use invariant::Violation;
pub use shrink::{shrink_nodes, shrink_trace};
pub use world::ModelWorld;
