//! The micro-world host: a handful of [`PeasNode`]s, their armed
//! timers, and the frames in flight between them.
//!
//! The host replaces `peas-sim`'s event queue with *nondeterminism*:
//! instead of firing timers at drawn instants, it exposes every armed
//! timer, every in-flight frame and every remaining death as an enabled
//! [`ModelEvent`], and the explorer branches on all of them. Timer
//! durations returned by the node are discarded — firing timers in
//! every order subsumes every duration assignment — but each applied
//! event still advances logical time by a 1 s quantum, because the
//! turn-off rule compares working times.
//!
//! Frames: a broadcast puts one copy in flight per in-range receiver
//! whose radio is on at transmission time (a node that wakes later
//! physically cannot have heard it). A new broadcast on the same
//! directed edge supersedes an undelivered older copy, which bounds the
//! in-flight population and keeps the state space finite; delivery to a
//! node that slept or died in the meantime decodes to nothing.

use peas::{Action, Input, Message, Mode, PeasConfig, PeasNode, Reply, Timer};
use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};
use peas_radio::{NodeId, RxInfo};

use crate::cfg::ModelCfg;
use crate::event::{ModelEvent, TimerKind};
use crate::invariant::Violation;

/// Timer durations are discarded, so the RNG a node draws from never
/// influences the model; a fresh fixed-seed stream per input keeps the
/// nodes' draw sites happy and the world `Clone`-cheap.
const MODEL_RNG_SEED: u64 = 0x5EA5_0DE1;

/// Which of one node's timers are armed. The host mirrors the node's
/// `Schedule`/`Cancel` actions here; `ProbeSend` is a count because the
/// node arms one per PROBE of the burst.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Timers {
    pub(crate) wake: bool,
    pub(crate) probe_sends: u8,
    pub(crate) reply_window: bool,
    pub(crate) reply_backoff: bool,
}

impl Timers {
    fn armed(&self, kind: TimerKind) -> bool {
        match kind {
            TimerKind::Wake => self.wake,
            TimerKind::ProbeSend => self.probe_sends > 0,
            TimerKind::ReplyWindow => self.reply_window,
            TimerKind::ReplyBackoff => self.reply_backoff,
        }
    }

    fn any(&self) -> bool {
        self.wake || self.probe_sends > 0 || self.reply_window || self.reply_backoff
    }
}

/// One concrete state of the micro-world.
#[derive(Clone, Debug)]
pub struct ModelWorld {
    pub(crate) cfg: ModelCfg,
    /// Logical steps applied so far; `now` is `step` seconds.
    pub(crate) step: u64,
    pub(crate) nodes: Vec<PeasNode>,
    pub(crate) timers: Vec<Timers>,
    /// In-flight frames, one slot per directed edge (`from * n + to`).
    pub(crate) flights: Vec<Option<Message>>,
    pub(crate) deaths_left: u32,
}

impl ModelWorld {
    /// Boots a fresh micro-world: every node `Sleeping` with its wake
    /// timer armed, no frames in flight.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ModelCfg::validate`]).
    pub fn new(cfg: ModelCfg) -> ModelWorld {
        if let Err(e) = cfg.validate() {
            panic!("invalid model configuration: {e}");
        }
        let n = cfg.nodes as usize;
        let peas: PeasConfig = cfg.peas.clone();
        let mut world = ModelWorld {
            cfg,
            step: 0,
            nodes: Vec::with_capacity(n),
            timers: vec![Timers::default(); n],
            flights: vec![None; n * n],
            deaths_left: 0,
        };
        world.deaths_left = world.cfg.deaths;
        for i in 0..world.cfg.nodes {
            let mut node = PeasNode::new(NodeId(i), peas.clone());
            let mut rng = SimRng::new(MODEL_RNG_SEED ^ u64::from(i));
            let actions = node.start(&mut rng);
            world.nodes.push(node);
            world.process(i, actions);
        }
        world
    }

    /// The world's configuration.
    pub fn cfg(&self) -> &ModelCfg {
        &self.cfg
    }

    /// The current logical instant (one second per applied event).
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.step)
    }

    /// The nodes, indexed by id.
    pub fn nodes(&self) -> &[PeasNode] {
        &self.nodes
    }

    /// Whether `node` is still alive.
    pub fn alive(&self, node: u32) -> bool {
        self.nodes[node as usize].mode() != Mode::Dead
    }

    /// Whether some node is alive and no alive node is Working — the
    /// "coverage hole" predicate the liveness check hunts cycles in.
    pub fn coverage_hole(&self) -> bool {
        let any_alive = self.nodes.iter().any(|n| n.mode() != Mode::Dead);
        let any_working = self.nodes.iter().any(|n| n.mode() == Mode::Working);
        any_alive && !any_working
    }

    fn edge(&self, from: u32, to: u32) -> usize {
        (from * self.cfg.nodes + to) as usize
    }

    /// Whether `ev` is applicable in this state.
    pub fn is_enabled(&self, ev: ModelEvent) -> bool {
        let n = self.cfg.nodes;
        match ev {
            // `ReplyWindow` cannot outrun the probe burst: the config
            // invariant `probe_spread ≤ reply_window` means every PROBE
            // of the burst transmits before the window closes, so the
            // model only enables the close once the burst has drained.
            // (This is also what keeps probe-send counts bounded: a
            // node can never carry unfired PROBE timers into its next
            // sleep cycle.)
            ModelEvent::Fire {
                node,
                timer: TimerKind::ReplyWindow,
            } => {
                node < n
                    && self.timers[node as usize].reply_window
                    && self.timers[node as usize].probe_sends == 0
            }
            ModelEvent::Fire { node, timer } => node < n && self.timers[node as usize].armed(timer),
            ModelEvent::Deliver { from, to } => {
                from < n && to < n && from != to && self.flights[self.edge(from, to)].is_some()
            }
            ModelEvent::Lose { from, to } => {
                self.cfg.loss
                    && from < n
                    && to < n
                    && from != to
                    && self.flights[self.edge(from, to)].is_some()
            }
            ModelEvent::Kill { node } => node < n && self.deaths_left > 0 && self.alive(node),
        }
    }

    /// Every applicable event, in a fixed deterministic order (timers by
    /// node then kind, deliveries and losses by directed edge, kills by
    /// node). The explorer's reproducibility rests on this order.
    pub fn enabled_events(&self) -> Vec<ModelEvent> {
        let n = self.cfg.nodes;
        let mut events = Vec::new();
        for node in 0..n {
            for timer in TimerKind::ALL {
                let ev = ModelEvent::Fire { node, timer };
                if self.is_enabled(ev) {
                    events.push(ev);
                }
            }
        }
        for from in 0..n {
            for to in 0..n {
                if from == to || self.flights[self.edge(from, to)].is_none() {
                    continue;
                }
                events.push(ModelEvent::Deliver { from, to });
                if self.cfg.loss {
                    events.push(ModelEvent::Lose { from, to });
                }
            }
        }
        if self.deaths_left > 0 {
            for node in 0..n {
                if self.alive(node) {
                    events.push(ModelEvent::Kill { node });
                }
            }
        }
        events
    }

    /// Applies one enabled event and checks the invariant catalog on the
    /// resulting state; returns the first violation, if any.
    ///
    /// Callers must only pass enabled events (the explorer enumerates
    /// them; the replayer checks [`ModelWorld::is_enabled`] first). A
    /// disabled event is a caller bug and trips a debug assertion.
    pub fn apply(&mut self, ev: ModelEvent) -> Option<Violation> {
        debug_assert!(self.is_enabled(ev), "applying disabled event `{ev}`");
        self.step += 1;
        let mut transition_violation = None;
        match ev {
            ModelEvent::Fire { node, timer } => {
                let i = node as usize;
                let input = match timer {
                    TimerKind::Wake => {
                        self.timers[i].wake = false;
                        Input::WakeUp
                    }
                    TimerKind::ProbeSend => {
                        self.timers[i].probe_sends = self.timers[i].probe_sends.saturating_sub(1);
                        Input::ProbeSendTimer
                    }
                    TimerKind::ReplyWindow => {
                        self.timers[i].reply_window = false;
                        Input::ReplyWindowClosed
                    }
                    TimerKind::ReplyBackoff => {
                        self.timers[i].reply_backoff = false;
                        Input::ReplyBackoff
                    }
                };
                self.feed(node, input);
            }
            ModelEvent::Deliver { from, to } => {
                let slot = self.edge(from, to);
                if let Some(msg) = self.flights[slot].take() {
                    // A receiver that slept or died after the
                    // transmission decodes nothing.
                    if self.nodes[to as usize].mode().is_awake() {
                        transition_violation = self.deliver(from, to, msg);
                    }
                }
            }
            ModelEvent::Lose { from, to } => {
                let slot = self.edge(from, to);
                self.flights[slot] = None;
            }
            ModelEvent::Kill { node } => {
                self.deaths_left = self.deaths_left.saturating_sub(1);
                let i = node as usize;
                // The node's Cancel actions are subsumed by clearing the
                // whole timer set.
                let _cancels = self.nodes[i].kill();
                self.timers[i] = Timers::default();
                for other in 0..self.cfg.nodes {
                    if other != node {
                        let slot = self.edge(other, node);
                        self.flights[slot] = None;
                    }
                }
            }
        }
        transition_violation.or_else(|| self.check_state())
    }

    /// Delivers `msg` to an awake receiver, checking the turn-off
    /// transition invariant around the hand-off.
    fn deliver(&mut self, from: u32, to: u32, msg: Message) -> Option<Violation> {
        let receiver_working = self.nodes[to as usize].mode() == Mode::Working;
        let overheard = match (receiver_working, msg) {
            (true, Message::Reply(reply)) => Some(reply),
            _ => None,
        };
        let expected_yield = overheard.map(|reply| self.expected_yield(to, from, &reply));
        let input = Input::Frame {
            from: NodeId(from),
            msg,
            info: RxInfo {
                distance: 1.0,
                effective_distance: 1.0,
            },
        };
        self.feed(to, input);
        if let Some(expected) = expected_yield {
            let yielded = self.nodes[to as usize].mode() == Mode::Sleeping;
            if yielded != expected {
                return Some(Violation::TurnoffSpec {
                    node: to,
                    from,
                    expected_yield: expected,
                });
            }
        }
        None
    }

    /// An independent encoding of the Section 4 turn-off decision, for
    /// checking the implementation against the spec: the node with the
    /// shorter working time yields; `Tw` values within the tie epsilon
    /// are ties, broken by node id (the higher id yields).
    fn expected_yield(&self, me: u32, from: u32, reply: &Reply) -> bool {
        if !self.cfg.peas.turnoff_enabled {
            return false;
        }
        let now = self.now();
        let my_tw = self.nodes[me as usize]
            .working_time(now)
            .unwrap_or(SimDuration::ZERO);
        let eps = self.cfg.peas.turnoff_tie_epsilon;
        let diff = if my_tw >= reply.working_time {
            my_tw - reply.working_time
        } else {
            reply.working_time - my_tw
        };
        if diff <= eps {
            me > from
        } else {
            my_tw < reply.working_time
        }
    }

    /// Runs one input through a node and mirrors its actions into the
    /// host bookkeeping.
    fn feed(&mut self, node: u32, input: Input) {
        let now = self.now();
        let mut rng = SimRng::new(MODEL_RNG_SEED ^ u64::from(node));
        let actions = self.nodes[node as usize].on_input(now, input, &mut rng);
        self.process(node, actions);
    }

    fn process(&mut self, node: u32, actions: Vec<Action>) {
        let i = node as usize;
        for action in actions {
            match action {
                Action::Schedule { timer, .. } => match timer {
                    Timer::Wake => self.timers[i].wake = true,
                    Timer::ProbeSend => {
                        self.timers[i].probe_sends = self.timers[i].probe_sends.saturating_add(1)
                    }
                    Timer::ReplyWindow => self.timers[i].reply_window = true,
                    Timer::ReplyBackoff => self.timers[i].reply_backoff = true,
                },
                Action::Cancel(timer) => match timer {
                    Timer::Wake => self.timers[i].wake = false,
                    Timer::ProbeSend => self.timers[i].probe_sends = 0,
                    Timer::ReplyWindow => self.timers[i].reply_window = false,
                    Timer::ReplyBackoff => self.timers[i].reply_backoff = false,
                },
                Action::Broadcast { msg, .. } => {
                    for to in 0..self.cfg.nodes {
                        if self.cfg.topology.in_range(node, to)
                            && self.nodes[to as usize].mode().is_awake()
                        {
                            let slot = self.edge(node, to);
                            self.flights[slot] = Some(msg);
                        }
                    }
                }
            }
        }
    }

    /// Checks every state invariant; returns the first violation in a
    /// deterministic order (by node, then by pair).
    pub fn check_state(&self) -> Option<Violation> {
        let (lo, hi) = self.cfg.peas.rate_bounds;
        for (i, node) in self.nodes.iter().enumerate() {
            // peas-lint: allow(r3-unchecked-cast) -- ModelCfg::validate caps micro-worlds at 6 nodes
            let id = i as u32;
            let timers = &self.timers[i];
            match node.mode() {
                Mode::Dead => {
                    if timers.any() || node.reply_pending() {
                        return Some(Violation::DeadNodeActive { node: id });
                    }
                    continue;
                }
                Mode::Probing => {
                    if !timers.reply_window {
                        return Some(Violation::StuckProbing { node: id });
                    }
                }
                Mode::Sleeping => {
                    if !timers.wake {
                        return Some(Violation::SleeperWithoutAlarm { node: id });
                    }
                }
                Mode::Working => {}
            }
            let rate = node.rate();
            if !rate.is_finite() || rate <= 0.0 || rate < lo || rate > hi {
                return Some(Violation::RateBounds { node: id, rate });
            }
            let pending = node.reply_pending();
            if pending != timers.reply_backoff || (pending && node.mode() != Mode::Working) {
                return Some(Violation::BackoffConsistency { node: id });
            }
        }
        if self.cfg.strict_duplicate_working {
            for a in 0..self.cfg.nodes {
                for b in (a + 1)..self.cfg.nodes {
                    if self.cfg.topology.in_range(a, b)
                        && self.nodes[a as usize].mode() == Mode::Working
                        && self.nodes[b as usize].mode() == Mode::Working
                    {
                        return Some(Violation::DuplicateWorking { a, b });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Topology;

    #[test]
    fn fresh_world_has_one_wake_per_node_and_audits_clean() {
        let world = ModelWorld::new(ModelCfg::micro(3));
        assert_eq!(world.nodes().len(), 3);
        for i in 0..3u32 {
            assert!(world.is_enabled(ModelEvent::Fire {
                node: i,
                timer: TimerKind::Wake
            }));
        }
        assert_eq!(world.enabled_events().len(), 3);
        assert_eq!(world.check_state(), None);
        assert!(world.coverage_hole(), "nobody works yet");
    }

    #[test]
    fn wake_probe_silent_window_takes_over() {
        let mut world = ModelWorld::new(ModelCfg::micro(2));
        assert_eq!(
            world.apply(ModelEvent::Fire {
                node: 0,
                timer: TimerKind::Wake
            }),
            None
        );
        assert_eq!(world.nodes()[0].mode(), Mode::Probing);
        // The probe burst (1 in micro worlds) and the window are armed.
        assert!(world.is_enabled(ModelEvent::Fire {
            node: 0,
            timer: TimerKind::ProbeSend
        }));
        assert_eq!(
            world.apply(ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ProbeSend
            }),
            None
        );
        // Node 1 is asleep (radio off), so no frame is in flight.
        assert!(!world.is_enabled(ModelEvent::Deliver { from: 0, to: 1 }));
        assert_eq!(
            world.apply(ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ReplyWindow
            }),
            None
        );
        assert_eq!(world.nodes()[0].mode(), Mode::Working);
        assert!(!world.coverage_hole());
    }

    #[test]
    fn probe_reply_exchange_puts_prober_back_to_sleep() {
        let mut world = ModelWorld::new(ModelCfg::micro(2));
        // Node 0 takes over (its PROBE reaches nobody: node 1 sleeps).
        for ev in [
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::Wake,
            },
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ProbeSend,
            },
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ReplyWindow,
            },
            // Node 1 wakes and probes; node 0 (awake, Working) hears it.
            ModelEvent::Fire {
                node: 1,
                timer: TimerKind::Wake,
            },
            ModelEvent::Fire {
                node: 1,
                timer: TimerKind::ProbeSend,
            },
            ModelEvent::Deliver { from: 1, to: 0 },
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ReplyBackoff,
            },
            ModelEvent::Deliver { from: 0, to: 1 },
            ModelEvent::Fire {
                node: 1,
                timer: TimerKind::ReplyWindow,
            },
        ] {
            assert!(world.is_enabled(ev), "{ev} should be enabled");
            assert_eq!(world.apply(ev), None, "{ev}");
        }
        assert_eq!(world.nodes()[0].mode(), Mode::Working);
        assert_eq!(world.nodes()[1].mode(), Mode::Sleeping);
        assert!(world.is_enabled(ModelEvent::Fire {
            node: 1,
            timer: TimerKind::Wake
        }));
    }

    #[test]
    fn kill_clears_timers_and_incoming_flights() {
        let mut cfg = ModelCfg::micro(2);
        cfg.deaths = 1;
        let mut world = ModelWorld::new(cfg);
        assert!(world.is_enabled(ModelEvent::Kill { node: 0 }));
        assert_eq!(world.apply(ModelEvent::Kill { node: 0 }), None);
        assert!(!world.alive(0));
        assert!(
            !world.is_enabled(ModelEvent::Kill { node: 1 }),
            "budget spent"
        );
        assert_eq!(world.check_state(), None);
    }

    #[test]
    fn chain_topology_limits_broadcast_reach() {
        let mut cfg = ModelCfg::micro(3);
        cfg.topology = Topology::Chain;
        let mut world = ModelWorld::new(cfg);
        // Wake all three so every radio is on, then have node 0 probe.
        for node in 0..3 {
            world.apply(ModelEvent::Fire {
                node,
                timer: TimerKind::Wake,
            });
        }
        world.apply(ModelEvent::Fire {
            node: 0,
            timer: TimerKind::ProbeSend,
        });
        assert!(world.is_enabled(ModelEvent::Deliver { from: 0, to: 1 }));
        assert!(
            !world.is_enabled(ModelEvent::Deliver { from: 0, to: 2 }),
            "chain: node 2 is out of range of node 0"
        );
    }

    #[test]
    fn strict_duplicate_working_fires_on_the_probe_race() {
        let mut cfg = ModelCfg::micro(2);
        cfg.strict_duplicate_working = true;
        let mut world = ModelWorld::new(cfg);
        // Both wake, probe past each other (probing nodes ignore
        // PROBEs), and both windows close silent: the probe race.
        for ev in [
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::Wake,
            },
            ModelEvent::Fire {
                node: 1,
                timer: TimerKind::Wake,
            },
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ProbeSend,
            },
            ModelEvent::Fire {
                node: 1,
                timer: TimerKind::ProbeSend,
            },
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ReplyWindow,
            },
        ] {
            assert_eq!(world.apply(ev), None);
        }
        let violation = world.apply(ModelEvent::Fire {
            node: 1,
            timer: TimerKind::ReplyWindow,
        });
        assert_eq!(violation, Some(Violation::DuplicateWorking { a: 0, b: 1 }));
    }
}
