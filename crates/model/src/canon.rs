//! Canonical state fingerprints: the quotient that makes breadth-first
//! exploration a fixpoint computation.
//!
//! A concrete [`ModelWorld`] contains unbounded quantities — absolute
//! logical time, working-time instants, λ̂ as a raw `f64`, REPLY
//! payloads measured over ever-longer windows. The canonical key keeps
//! exactly the state that *gates transitions or the turn-off decision*,
//! and quantizes or drops the rest:
//!
//! * absolute time is dropped entirely;
//! * modes, armed timers, the pending-REPLY flag, whether the probing
//!   window is empty (that emptiness decides Working vs back-to-sleep),
//!   the in-flight frame per directed edge, and the remaining death
//!   budget are kept exactly — these are what `enabled_events` and the
//!   node state machine branch on;
//! * working times appear only as the *class* of pairwise differences
//!   between working nodes — shorter / tie (within the tie epsilon) /
//!   longer — exactly what the turn-off rule reads. The class is also
//!   all the *future* can distinguish: while both nodes work the
//!   difference is frozen, and against a frozen REPLY payload it grows
//!   monotonically one quantum at a time, so the class sequence
//!   (shorter → tie → longer) is the same from any state in a class;
//! * an in-flight REPLY's `Tw` payload appears as its difference class
//!   against the receiver's current working time when the receiver is
//!   working, since that class is all the turn-off rule reads;
//! * λ is kept as its whole-octave offset from λd, clamped to ±1
//!   (below / near / above the desired rate);
//! * measurement payloads and the estimator's window internals are
//!   dropped: they feed *only* the λ update, which gates no transition
//!   in the time-abstract model (sleep durations are already
//!   abstracted into the nondeterministic `Wake` firing). Keeping them
//!   multiplied the quotient ~50× with zero added behavioral coverage
//!   — and λ̂/λ invariants lose nothing, because every applied
//!   transition is invariant-checked on its *concrete* target before
//!   canonical dedup.
//!
//! Two states with equal keys can still differ in suppressed detail;
//! invariants are checked on the concrete representative that first
//! reaches each class (standard explicit-state practice — see
//! `DESIGN.md` §10 for the soundness discussion).

use peas::{Message, Mode};
use peas_des::time::SimDuration;

use crate::cfg::saturating_secs;
use crate::world::ModelWorld;

/// Sentinel for "absent" slots (no measurement, not working, …).
const NONE: i64 = i64::MIN + 1;

/// Stale `ProbeSend` timers accumulate across sleep cycles when paths
/// never fire them; counts above this cap behave identically (firing is
/// a no-op), so the canon merges them to keep the quotient finite.
const PROBE_SEND_CAP: u8 = 3;

/// The canonical key of a world state. Equal keys ⇒ the explorer treats
/// the states as the same; the encoding is a plain `Vec<i64>` so it
/// orders deterministically inside a `DetMap`.
pub fn canon_key(world: &ModelWorld) -> Vec<i64> {
    let n = world.cfg.nodes;
    let eps = saturating_secs(world.cfg.peas.turnoff_tie_epsilon);
    let lambda_d = world.cfg.peas.desired_rate;
    let now = world.now();
    let mut key = Vec::with_capacity(world.nodes.len() * 8 + world.flights.len() * 2 + 2);
    key.push(i64::from(n));
    for (i, node) in world.nodes.iter().enumerate() {
        let timers = &world.timers[i];
        key.push(mode_tag(node.mode()));
        key.push(i64::from(timers.wake));
        key.push(i64::from(timers.probe_sends.min(PROBE_SEND_CAP)));
        key.push(i64::from(timers.reply_window));
        key.push(i64::from(timers.reply_backoff));
        key.push(i64::from(node.reply_pending()));
        key.push(rate_bucket(node.rate(), lambda_d));
        // The probing window: zero vs non-zero replies is the only
        // branch the window close takes (Working vs rate-update+sleep).
        key.push(i64::from(!node.window_replies().is_empty()));
    }
    // Pairwise working-time difference classes.
    for a in 0..n {
        for b in (a + 1)..n {
            let tw_a = world.nodes[a as usize].working_time(now);
            let tw_b = world.nodes[b as usize].working_time(now);
            key.push(match (tw_a, tw_b) {
                (Some(x), Some(y)) => diff_class(x, y, eps),
                _ => NONE,
            });
        }
    }
    // In-flight frames per directed edge.
    for from in 0..n {
        for to in 0..n {
            if from == to {
                continue;
            }
            let slot = (from * n + to) as usize;
            match &world.flights[slot] {
                None => key.push(NONE),
                Some(Message::Probe) => key.push(1),
                Some(Message::Reply(reply)) => {
                    key.push(2);
                    // What the turn-off rule will read if the receiver
                    // is (still) working when this lands.
                    key.push(match world.nodes[to as usize].working_time(now) {
                        Some(my_tw) => diff_class(my_tw, reply.working_time, eps),
                        None => NONE,
                    });
                }
            }
        }
    }
    key.push(i64::from(world.deaths_left));
    key
}

fn mode_tag(mode: Mode) -> i64 {
    match mode {
        Mode::Sleeping => 0,
        Mode::Probing => 1,
        Mode::Working => 2,
        Mode::Dead => 3,
    }
}

/// λ as its whole-octave log₂ offset from λd, clamped to ±1: below /
/// near / above the desired rate. λ is clamped to `rate_bounds` anyway
/// and gates no transition, so this is a coverage hint, not a
/// behavioral dimension.
fn rate_bucket(rate: f64, lambda_d: f64) -> i64 {
    if !(rate.is_finite() && rate > 0.0) {
        return NONE; // out-of-domain rates are invariant violations anyway
    }
    saturate(libm_log2(rate / lambda_d)).clamp(-1, 1)
}

/// The turn-off-relevant class of a working-time difference: `-1` if
/// `a` is shorter by more than the tie epsilon, `0` for a tie, `1` if
/// longer.
fn diff_class(a: SimDuration, b: SimDuration, eps: i64) -> i64 {
    let diff = saturating_secs(a).saturating_sub(saturating_secs(b));
    if diff.abs() <= eps {
        0
    } else if diff < 0 {
        -1
    } else {
        1
    }
}

fn saturate(x: f64) -> i64 {
    // f64 → i64 `as` casts saturate in Rust, deterministically.
    x.round() as i64
}

/// `f64::log2` — aliased so the one transcendental the canon relies on
/// is easy to audit (IEEE-754, bit-deterministic on every target the
/// repo supports).
fn libm_log2(x: f64) -> f64 {
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::ModelCfg;
    use crate::event::{ModelEvent, TimerKind};

    #[test]
    fn fresh_worlds_share_a_key_and_mode_changes_split_it() {
        let cfg = ModelCfg::micro(3);
        let a = ModelWorld::new(cfg.clone());
        let mut b = ModelWorld::new(cfg);
        let key_a = canon_key(&a);
        assert_eq!(key_a, canon_key(&b), "identical worlds, identical keys");
        b.apply(ModelEvent::Fire {
            node: 0,
            timer: TimerKind::Wake,
        });
        assert_ne!(key_a, canon_key(&b), "a mode change must split the key");
    }

    #[test]
    fn rate_buckets_are_octaves_from_lambda_d() {
        assert_eq!(rate_bucket(0.02, 0.02), 0);
        assert_eq!(rate_bucket(0.04, 0.02), 1);
        assert_eq!(rate_bucket(10.0, 0.02), 1, "clamped above");
        assert_eq!(rate_bucket(1e-9, 0.02), -1, "clamped below");
        assert_eq!(rate_bucket(f64::NAN, 0.02), NONE);
    }

    #[test]
    fn diff_classes_split_at_the_tie_epsilon() {
        let s = SimDuration::from_secs;
        assert_eq!(diff_class(s(10), s(8), 3), 0);
        assert_eq!(diff_class(s(100), s(1), 3), 1);
        assert_eq!(diff_class(s(1), s(100), 3), -1);
    }
}
