//! Breadth-first exploration of the canonical-state quotient, plus the
//! deterministic trace replayer the counterexample pipeline rests on.

use std::collections::VecDeque;

use peas::Mode;
use peas_des::detmap::DetMap;

use crate::canon::canon_key;
use crate::cfg::ModelCfg;
use crate::event::ModelEvent;
use crate::invariant::Violation;
use crate::world::ModelWorld;

/// What an exploration run found.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Distinct canonical states reached (including the initial state).
    pub states: usize,
    /// Transitions taken (including ones landing on known states).
    pub transitions: usize,
    /// Whether the frontier drained before the `max_states` budget hit:
    /// only then is the exploration exhaustive over the quotient.
    pub fixpoint: bool,
    /// Longest shortest-path depth over reached states.
    pub max_depth: usize,
    /// Reached states in which some in-range pair is simultaneously
    /// Working — the probe-race redundancy PEAS tolerates by design.
    /// Reported (and pinned by goldens), not an invariant.
    pub duplicate_working_states: usize,
    /// Reached states satisfying the coverage-hole predicate (alive
    /// nodes but no Working node).
    pub coverage_hole_states: usize,
    /// FNV-1a over every canonical key in discovery order: a pinned
    /// fingerprint of the whole reached quotient.
    pub canon_hash: u64,
    /// The first invariant violation, with its breadth-first trace.
    pub violation: Option<FoundViolation>,
}

/// A violated invariant plus the event trace that reaches it from the
/// initial state.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// What was violated.
    pub violation: Violation,
    /// Events from the initial state to the violating transition, in
    /// order. Breadth-first search makes this a minimum-depth trace.
    pub trace: Vec<ModelEvent>,
}

/// The result of replaying an explicit event trace.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Events applied before stopping.
    pub applied: usize,
    /// Index of the first event that was not enabled, if the replay got
    /// stuck (the remaining events are skipped).
    pub stuck_at: Option<usize>,
    /// The violation the replay hit, if any (the replay stops there).
    pub violation: Option<Violation>,
    /// Canonical-key FNV-1a of the final state, for golden pinning.
    pub final_state_hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, key: &[i64]) -> u64 {
    for value in key {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Explores the full quotient breadth-first from the initial state.
///
/// Deterministic by construction: events are enumerated in a fixed
/// order, states are numbered in discovery order, and the dedup map is
/// a [`DetMap`]. Stops at the first invariant violation (safety), or
/// after draining the frontier runs liveness cycle detection over the
/// coverage-hole subgraph.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`ModelCfg::validate`]).
pub fn explore(cfg: &ModelCfg) -> ExploreOutcome {
    let root = ModelWorld::new(cfg.clone());
    let mut outcome = ExploreOutcome {
        states: 1,
        transitions: 0,
        fixpoint: true,
        max_depth: 0,
        duplicate_working_states: 0,
        coverage_hole_states: 0,
        canon_hash: FNV_OFFSET,
        violation: None,
    };
    let root_key = canon_key(&root);
    outcome.canon_hash = fnv_fold(outcome.canon_hash, &root_key);
    if let Some(violation) = root.check_state() {
        outcome.violation = Some(FoundViolation {
            violation,
            trace: Vec::new(),
        });
        return outcome;
    }

    let mut seen: DetMap<Vec<i64>, u32> = DetMap::new();
    seen.insert(root_key, 0);
    // Per state id: (parent id, event from parent) for trace rebuilds.
    let mut parents: Vec<(u32, Option<ModelEvent>)> = vec![(0, None)];
    let mut depth: Vec<u32> = vec![0];
    let mut hole: Vec<bool> = vec![root.coverage_hole()];
    // Transition list for the liveness pass (from → to over state ids).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if hole[0] {
        outcome.coverage_hole_states += 1;
    }
    let mut frontier: VecDeque<(u32, ModelWorld)> = VecDeque::new();
    frontier.push_back((0, root));

    while let Some((id, world)) = frontier.pop_front() {
        for ev in world.enabled_events() {
            let mut next = world.clone();
            outcome.transitions += 1;
            if let Some(violation) = next.apply(ev) {
                let mut trace = rebuild_trace(&parents, id);
                trace.push(ev);
                outcome.violation = Some(FoundViolation { violation, trace });
                return outcome;
            }
            let key = canon_key(&next);
            if let Some(&known) = seen.get(&key) {
                edges.push((id, known));
                continue;
            }
            if seen.len() >= cfg.max_states {
                outcome.fixpoint = false;
                continue;
            }
            let next_id = u32::try_from(seen.len()).unwrap_or(u32::MAX);
            outcome.canon_hash = fnv_fold(outcome.canon_hash, &key);
            seen.insert(key, next_id);
            parents.push((id, Some(ev)));
            let d = depth[id as usize] + 1;
            depth.push(d);
            outcome.max_depth = outcome.max_depth.max(d as usize);
            let is_hole = next.coverage_hole();
            hole.push(is_hole);
            if is_hole {
                outcome.coverage_hole_states += 1;
            }
            if has_duplicate_working(&next) {
                outcome.duplicate_working_states += 1;
            }
            edges.push((id, next_id));
            frontier.push_back((next_id, next));
        }
    }
    outcome.states = seen.len();

    // Liveness: a reachable cycle within the coverage-hole subgraph
    // means a scheduler could keep the network uncovered forever.
    if let Some(entry) = find_hole_cycle(&hole, &edges) {
        outcome.violation = Some(FoundViolation {
            violation: Violation::LivenessCycle {
                states: entry.cycle_states,
            },
            trace: rebuild_trace(&parents, entry.state),
        });
    }
    outcome
}

fn has_duplicate_working(world: &ModelWorld) -> bool {
    let n = world.cfg().nodes;
    for a in 0..n {
        for b in (a + 1)..n {
            if world.cfg().topology.in_range(a, b)
                && world.nodes()[a as usize].mode() == Mode::Working
                && world.nodes()[b as usize].mode() == Mode::Working
            {
                return true;
            }
        }
    }
    false
}

fn rebuild_trace(parents: &[(u32, Option<ModelEvent>)], mut id: u32) -> Vec<ModelEvent> {
    let mut trace = Vec::new();
    while let (parent, Some(ev)) = parents[id as usize] {
        trace.push(ev);
        id = parent;
    }
    trace.reverse();
    trace
}

struct HoleCycle {
    /// A state on the cycle (trace target).
    state: u32,
    /// Number of states in the strongly connected component.
    cycle_states: usize,
}

/// Finds a cycle (including self-loops) in the subgraph induced by
/// coverage-hole states, via iterative depth-first search with an
/// on-stack mark (any back edge inside the subgraph closes a cycle).
fn find_hole_cycle(hole: &[bool], edges: &[(u32, u32)]) -> Option<HoleCycle> {
    let n = hole.len();
    // Adjacency restricted to hole→hole transitions.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        if hole[from as usize] && hole[to as usize] {
            adj[from as usize].push(to);
        }
    }
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut mark = vec![0u8; n];
    for start in 0..n {
        if !hole[start] || mark[start] != 0 {
            continue;
        }
        // Each stack frame: (state, next child index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = 1;
        while let Some(&mut (state, ref mut child)) = stack.last_mut() {
            if *child < adj[state].len() {
                let next = adj[state][*child] as usize;
                *child += 1;
                match mark[next] {
                    0 => {
                        mark[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => {
                        // Back edge: the path suffix from `next` is a cycle.
                        let cycle_states =
                            stack.iter().skip_while(|&&(s, _)| s != next).count().max(1);
                        return Some(HoleCycle {
                            state: u32::try_from(next).unwrap_or(u32::MAX),
                            cycle_states,
                        });
                    }
                    _ => {}
                }
            } else {
                mark[state] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Replays an explicit event trace from the initial state, stopping at
/// the first disabled event or violated invariant.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`ModelCfg::validate`]).
pub fn replay(cfg: &ModelCfg, trace: &[ModelEvent]) -> ReplayOutcome {
    let mut world = ModelWorld::new(cfg.clone());
    let mut outcome = ReplayOutcome {
        applied: 0,
        stuck_at: None,
        violation: world.check_state(),
        final_state_hash: 0,
    };
    if outcome.violation.is_none() {
        for (index, &ev) in trace.iter().enumerate() {
            if !world.is_enabled(ev) {
                outcome.stuck_at = Some(index);
                break;
            }
            let violation = world.apply(ev);
            outcome.applied += 1;
            if violation.is_some() {
                outcome.violation = violation;
                break;
            }
        }
    }
    outcome.final_state_hash = fnv_fold(FNV_OFFSET, &canon_key(&world));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimerKind;

    fn tiny() -> ModelCfg {
        ModelCfg::micro(2)
    }

    #[test]
    fn two_node_world_reaches_a_clean_fixpoint() {
        let outcome = explore(&tiny());
        assert!(outcome.fixpoint, "2-node world must drain its frontier");
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.states > 50, "got {} states", outcome.states);
        assert!(
            outcome.duplicate_working_states > 0,
            "the probe race must be reachable"
        );
        assert!(outcome.coverage_hole_states > 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&tiny());
        let b = explore(&tiny());
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.canon_hash, b.canon_hash);
    }

    #[test]
    fn budget_truncation_clears_the_fixpoint_claim() {
        let mut cfg = tiny();
        cfg.max_states = 10;
        let outcome = explore(&cfg);
        assert!(!outcome.fixpoint);
        assert_eq!(outcome.states, 10);
        assert!(outcome.violation.is_none());
    }

    #[test]
    fn strict_invariant_yields_a_replayable_trace() {
        let mut cfg = tiny();
        cfg.strict_duplicate_working = true;
        let outcome = explore(&cfg);
        let found = outcome.violation.expect("probe race must be found");
        assert_eq!(found.violation.rule(), "duplicate-working");
        let replayed = replay(&cfg, &found.trace);
        assert_eq!(replayed.stuck_at, None);
        assert_eq!(
            replayed.violation.as_ref().map(Violation::rule),
            Some("duplicate-working"),
            "the trace must reproduce the violation"
        );
    }

    #[test]
    fn replay_reports_disabled_events() {
        let outcome = replay(
            &tiny(),
            &[ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ReplyBackoff,
            }],
        );
        assert_eq!(outcome.stuck_at, Some(0));
        assert_eq!(outcome.applied, 0);
    }

    #[test]
    fn replay_hash_is_stable_for_equal_traces() {
        let trace = [
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::Wake,
            },
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::ProbeSend,
            },
        ];
        let a = replay(&tiny(), &trace);
        let b = replay(&tiny(), &trace);
        assert_eq!(a.final_state_hash, b.final_state_hash);
        assert_eq!(a.applied, 2);
    }
}
