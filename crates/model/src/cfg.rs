//! Micro-world parameters: how many nodes, who hears whom, which
//! failure modes the explorer branches on.

use peas::PeasConfig;
use peas_des::time::SimDuration;

/// Which pairs of nodes are within probing range `Rp` of each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every pair is in range (the densest, raciest world).
    Clique,
    /// Only consecutively numbered nodes are in range, so turn-off
    /// decisions propagate hop by hop.
    Chain,
}

impl Topology {
    /// Whether nodes `a` and `b` hear each other's control frames.
    pub fn in_range(self, a: u32, b: u32) -> bool {
        match self {
            Topology::Clique => a != b,
            Topology::Chain => a.abs_diff(b) == 1,
        }
    }
}

/// Everything that defines one micro-world.
#[derive(Clone, Debug)]
pub struct ModelCfg {
    /// Number of nodes (2..=6; the explorer is exhaustive, not sampled).
    pub nodes: u32,
    /// Who is within `Rp` of whom.
    pub topology: Topology,
    /// Whether the explorer branches on losing each in-flight frame.
    pub loss: bool,
    /// How many node deaths the explorer may inject.
    pub deaths: u32,
    /// The protocol configuration every node runs.
    pub peas: PeasConfig,
    /// Canonical-state budget: exploration stops (without claiming a
    /// fixpoint) once this many distinct states have been reached.
    pub max_states: usize,
    /// Enables the deliberately-too-strong "no two Working nodes in
    /// range, ever" invariant. Real PEAS violates it (simultaneous
    /// probers never hear each other — the probe race), so this exists
    /// to exercise the find → shrink → replay pipeline in tests, not to
    /// check the protocol.
    pub strict_duplicate_working: bool,
}

impl ModelCfg {
    /// A micro-world tuned for exhaustive exploration: one PROBE per
    /// wakeup, a 2-probe measurement window, and a tie epsilon several
    /// quanta wide so id tie-breaks are actually reachable.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is outside `2..=6`.
    pub fn micro(nodes: u32) -> ModelCfg {
        assert!((2..=6).contains(&nodes), "micro-worlds have 2..=6 nodes");
        let peas = PeasConfig::builder()
            .probe_count(1)
            .measure_threshold(2)
            .turnoff_tie_epsilon(SimDuration::from_secs(3))
            .rate_bounds(0.02, 0.4)
            .build();
        ModelCfg {
            nodes,
            topology: Topology::Clique,
            loss: false,
            deaths: 0,
            peas,
            max_states: 600_000,
            strict_duplicate_working: false,
        }
    }

    /// Validates the micro-world.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: node count out of
    /// `2..=6`, an invalid embedded [`PeasConfig`], or a fixed-power
    /// configuration (the model has no distances, so the threshold rule
    /// is meaningless and must be off).
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=6).contains(&self.nodes) {
            return Err(format!(
                "model worlds must have 2..=6 nodes, got {}",
                self.nodes
            ));
        }
        self.peas.validate().map_err(|e| e.to_string())?;
        if self.peas.fixed_power.is_some() {
            return Err(
                "model worlds must not use fixed_power (no distances to threshold on)".to_string(),
            );
        }
        Ok(())
    }
}

/// A duration's whole seconds, saturating into `i64`.
pub(crate) fn saturating_secs(d: SimDuration) -> i64 {
    i64::try_from(d.as_nanos() / 1_000_000_000).unwrap_or(i64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_and_chain_adjacency() {
        assert!(Topology::Clique.in_range(0, 2));
        assert!(!Topology::Clique.in_range(1, 1));
        assert!(Topology::Chain.in_range(1, 2));
        assert!(!Topology::Chain.in_range(0, 2));
    }

    #[test]
    fn micro_config_is_valid() {
        ModelCfg::micro(3).validate().expect("valid");
    }

    #[test]
    fn fixed_power_is_rejected() {
        let mut cfg = ModelCfg::micro(3);
        cfg.peas = PeasConfig::builder().fixed_power(10.0).build();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn saturating_secs_truncates_to_whole_seconds() {
        assert_eq!(saturating_secs(SimDuration::from_millis(2500)), 2);
        assert_eq!(saturating_secs(SimDuration::MAX), 18_446_744_073);
    }
}
