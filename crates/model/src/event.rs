//! The nondeterministic event alphabet and its stable text encoding.
//!
//! Every event has a one-line rendering (`fire 0 wake`, `deliver 0 2`,
//! `lose 1 0`, `kill 2`) used verbatim in `[trace]` sections of emitted
//! counterexample scenarios, so the format is part of the on-disk
//! contract and is pinned by round-trip tests.

use std::fmt;

/// Which of a node's armed timers an event fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimerKind {
    /// End of a sleep period.
    Wake,
    /// Transmit one PROBE.
    ProbeSend,
    /// Close the REPLY-collection window.
    ReplyWindow,
    /// Transmit the pending REPLY.
    ReplyBackoff,
}

impl TimerKind {
    /// All kinds, in the enumeration order the explorer uses.
    pub const ALL: [TimerKind; 4] = [
        TimerKind::Wake,
        TimerKind::ProbeSend,
        TimerKind::ReplyWindow,
        TimerKind::ReplyBackoff,
    ];

    fn name(self) -> &'static str {
        match self {
            TimerKind::Wake => "wake",
            TimerKind::ProbeSend => "probe-send",
            TimerKind::ReplyWindow => "reply-window",
            TimerKind::ReplyBackoff => "reply-backoff",
        }
    }

    fn from_name(s: &str) -> Option<TimerKind> {
        TimerKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One scheduler choice: the atomic step the explorer branches on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModelEvent {
    /// Fire an armed timer on `node`.
    Fire {
        /// The node whose timer fires.
        node: u32,
        /// Which timer.
        timer: TimerKind,
    },
    /// Deliver the in-flight frame on the directed edge `from → to`.
    Deliver {
        /// Transmitting node.
        from: u32,
        /// Receiving node.
        to: u32,
    },
    /// Drop the in-flight frame on `from → to` (loss branch).
    Lose {
        /// Transmitting node.
        from: u32,
        /// Receiving node.
        to: u32,
    },
    /// Kill `node` (fail-stop; it never returns).
    Kill {
        /// The node that dies.
        node: u32,
    },
}

impl ModelEvent {
    /// Parses the stable text form produced by `Display`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed token.
    pub fn parse(s: &str) -> Result<ModelEvent, String> {
        let mut parts = s.split_whitespace();
        let head = parts.next().ok_or_else(|| "empty event".to_string())?;
        let mut num = |what: &str| -> Result<u32, String> {
            parts
                .next()
                .ok_or_else(|| format!("event `{s}`: missing {what}"))?
                .parse::<u32>()
                .map_err(|_| format!("event `{s}`: {what} is not a node index"))
        };
        let ev = match head {
            "fire" => {
                let node = num("node")?;
                let timer = parts
                    .next()
                    .and_then(TimerKind::from_name)
                    .ok_or_else(|| format!("event `{s}`: unknown timer kind"))?;
                ModelEvent::Fire { node, timer }
            }
            "deliver" => ModelEvent::Deliver {
                from: num("sender")?,
                to: num("receiver")?,
            },
            "lose" => ModelEvent::Lose {
                from: num("sender")?,
                to: num("receiver")?,
            },
            "kill" => ModelEvent::Kill { node: num("node")? },
            other => return Err(format!("unknown event kind `{other}` in `{s}`")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing tokens in event `{s}`"));
        }
        Ok(ev)
    }

    /// The node indices this event mentions (used by the node shrinker).
    pub fn touches(self) -> [Option<u32>; 2] {
        match self {
            ModelEvent::Fire { node, .. } | ModelEvent::Kill { node } => [Some(node), None],
            ModelEvent::Deliver { from, to } | ModelEvent::Lose { from, to } => {
                [Some(from), Some(to)]
            }
        }
    }

    /// Returns the event with every node index ≥ `removed` shifted down
    /// by one (for replay after dropping node `removed`). The caller
    /// must ensure the event does not mention `removed` itself.
    pub fn renumber_past(self, removed: u32) -> ModelEvent {
        let shift = |id: u32| if id > removed { id - 1 } else { id };
        match self {
            ModelEvent::Fire { node, timer } => ModelEvent::Fire {
                node: shift(node),
                timer,
            },
            ModelEvent::Deliver { from, to } => ModelEvent::Deliver {
                from: shift(from),
                to: shift(to),
            },
            ModelEvent::Lose { from, to } => ModelEvent::Lose {
                from: shift(from),
                to: shift(to),
            },
            ModelEvent::Kill { node } => ModelEvent::Kill { node: shift(node) },
        }
    }
}

impl fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelEvent::Fire { node, timer } => write!(f, "fire {node} {}", timer.name()),
            ModelEvent::Deliver { from, to } => write!(f, "deliver {from} {to}"),
            ModelEvent::Lose { from, to } => write!(f, "lose {from} {to}"),
            ModelEvent::Kill { node } => write!(f, "kill {node}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let events = [
            ModelEvent::Fire {
                node: 0,
                timer: TimerKind::Wake,
            },
            ModelEvent::Fire {
                node: 2,
                timer: TimerKind::ReplyBackoff,
            },
            ModelEvent::Deliver { from: 1, to: 0 },
            ModelEvent::Lose { from: 0, to: 2 },
            ModelEvent::Kill { node: 1 },
        ];
        for ev in events {
            let text = ev.to_string();
            assert_eq!(ModelEvent::parse(&text).expect("parses"), ev, "{text}");
        }
    }

    #[test]
    fn malformed_events_are_rejected() {
        for bad in [
            "",
            "fire",
            "fire x wake",
            "fire 0 nap",
            "deliver 0",
            "teleport 1 2",
            "kill 0 extra",
        ] {
            assert!(ModelEvent::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn renumbering_shifts_higher_ids_only() {
        let ev = ModelEvent::Deliver { from: 3, to: 1 };
        assert_eq!(ev.renumber_past(2), ModelEvent::Deliver { from: 2, to: 1 });
    }
}
