//! Counterexample minimization: greedy event deletion to a 1-minimal
//! trace, then dropping nodes the trace never mentions.
//!
//! Both passes preserve the *rule* of the violation (not the exact
//! violation payload — shrinking may move which node trips it), and
//! every candidate is validated by full deterministic replay, so the
//! shrunk artifact is replayable by construction.

use crate::cfg::{ModelCfg, Topology};
use crate::event::ModelEvent;
use crate::explore::replay;
use crate::invariant::Violation;

fn reproduces(cfg: &ModelCfg, trace: &[ModelEvent], rule: &str) -> bool {
    let outcome = replay(cfg, trace);
    outcome.stuck_at.is_none()
        && outcome
            .violation
            .as_ref()
            .is_some_and(|v| Violation::rule(v) == rule)
}

/// Shrinks `trace` to a 1-minimal reproduction of `rule`: repeatedly
/// removes single events while the violation still replays, until no
/// single removal survives.
///
/// Returns the input unchanged if it does not reproduce `rule` in the
/// first place (a shrinker must never *invent* a counterexample).
pub fn shrink_trace(cfg: &ModelCfg, trace: &[ModelEvent], rule: &str) -> Vec<ModelEvent> {
    let mut best: Vec<ModelEvent> = trace.to_vec();
    if !reproduces(cfg, &best, rule) {
        return best;
    }
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if reproduces(cfg, &candidate, rule) {
                best = candidate;
                improved = true;
                // Keep `i` in place: the next event shifted into slot i.
            } else {
                i += 1;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Drops nodes the trace never mentions, renumbering the survivors, as
/// long as the violation still replays in the smaller world.
///
/// On a [`Topology::Chain`] only endpoints are candidates (removing an
/// interior node would splice distant nodes into range of each other);
/// on a [`Topology::Clique`] any node is. Renumbering is monotone, so
/// relative id order — which the turn-off tie-break reads — is
/// preserved.
pub fn shrink_nodes(
    cfg: &ModelCfg,
    trace: &[ModelEvent],
    rule: &str,
) -> (ModelCfg, Vec<ModelEvent>) {
    let mut cfg = cfg.clone();
    let mut trace = trace.to_vec();
    if !reproduces(&cfg, &trace, rule) {
        return (cfg, trace);
    }
    loop {
        let mut dropped = false;
        let mut candidate_ids: Vec<u32> = match cfg.topology {
            Topology::Clique => (0..cfg.nodes).collect(),
            Topology::Chain => vec![cfg.nodes - 1, 0],
        };
        candidate_ids.retain(|&id| {
            !trace
                .iter()
                .any(|ev| ev.touches().iter().flatten().any(|&t| t == id))
        });
        for id in candidate_ids {
            if cfg.nodes <= 2 {
                break;
            }
            let mut smaller = cfg.clone();
            smaller.nodes -= 1;
            let renumbered: Vec<ModelEvent> = trace.iter().map(|ev| ev.renumber_past(id)).collect();
            if reproduces(&smaller, &renumbered, rule) {
                cfg = smaller;
                trace = renumbered;
                dropped = true;
                break; // candidate ids are stale now; recompute
            }
        }
        if !dropped {
            return (cfg, trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    /// The end-to-end pipeline the CI deliberate-bug job exercises, on
    /// the always-available strict invariant: find, shrink events,
    /// shrink nodes, and confirm the result still replays.
    #[test]
    fn probe_race_counterexample_shrinks_and_replays() {
        let mut cfg = ModelCfg::micro(3);
        cfg.strict_duplicate_working = true;
        let found = explore(&cfg).violation.expect("probe race is reachable");
        let rule = found.violation.rule();
        assert_eq!(rule, "duplicate-working");

        let trace = shrink_trace(&cfg, &found.trace, rule);
        assert!(trace.len() <= found.trace.len());
        let (small_cfg, small_trace) = shrink_nodes(&cfg, &trace, rule);
        assert_eq!(small_cfg.nodes, 2, "the probe race needs exactly two nodes");
        assert!(reproduces(&small_cfg, &small_trace, rule));

        // 1-minimality: removing any single event breaks reproduction.
        for i in 0..small_trace.len() {
            let mut cut = small_trace.clone();
            cut.remove(i);
            assert!(
                !reproduces(&small_cfg, &cut, rule),
                "event {i} ({}) was removable",
                small_trace[i]
            );
        }
    }

    #[test]
    fn shrinking_a_non_reproducing_trace_is_identity() {
        let cfg = ModelCfg::micro(2);
        let trace = vec![ModelEvent::Kill { node: 0 }];
        // Kill is not even enabled (deaths = 0): must come back intact.
        assert_eq!(shrink_trace(&cfg, &trace, "duplicate-working"), trace);
    }
}
