//! The hand-rolled `.peas` parser.
//!
//! The language is deliberately small and line-oriented:
//!
//! ```text
//! # comment (anywhere, to end of line)
//! extends = "base-paper.peas"     # optional, before any section
//!
//! [section]
//! key = value
//! ```
//!
//! Values are typed by shape: `480` (integer), `10.66` (float), `true`
//! (boolean), `"uniform"` (string), `25s` / `150ms` / `40us` / `7ns`
//! (duration) and `[160, 320, 480]` (flat list of scalars). Every error
//! carries the 1-based line and column of the offending token and a
//! stable, author-facing message.

use crate::ast::{Entry, Extends, ScenarioDoc, Section, Span, Value};
use peas_des::time::SimDuration;
use std::fmt;

/// A parse failure with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Stable, author-facing description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, column: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        column,
        message: message.into(),
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Strips a `#`-to-end-of-line comment, respecting double-quoted strings
/// (a `#` inside quotes is content, not a comment).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// One line's characters plus position bookkeeping.
struct Cursor<'a> {
    chars: Vec<char>,
    line: usize,
    /// 0-based index into `chars`; column = pos + 1.
    pos: usize,
    /// Unused marker tying the cursor to its source line.
    _src: std::marker::PhantomData<&'a str>,
}

impl<'a> Cursor<'a> {
    fn new(line_text: &'a str, line: usize) -> Cursor<'a> {
        Cursor {
            chars: line_text.chars().collect(),
            line,
            pos: 0,
            _src: std::marker::PhantomData,
        }
    }

    fn col(&self) -> usize {
        self.pos + 1
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    /// Consumes an identifier; errors with `what` on a bad start char.
    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        let span = Span::new(self.line, self.col());
        match self.peek() {
            Some(c) if is_ident_start(c) => {}
            _ => return Err(err(self.line, self.col(), format!("expected {what}"))),
        }
        let mut out = String::new();
        while matches!(self.peek(), Some(c) if is_ident_char(c)) {
            // peas-lint: allow(r1-unchecked-panic) -- peek() just returned Some for this position
            out.push(self.bump().unwrap());
        }
        Ok((out, span))
    }
}

/// Parses a whole document.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, pointing at the line and
/// column of the offending token.
pub fn parse(src: &str) -> Result<ScenarioDoc, ParseError> {
    let mut doc = ScenarioDoc::default();
    let mut current: Option<Section> = None;

    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx + 1;
        let text = strip_comment(raw_line);
        if text.trim().is_empty() {
            continue;
        }
        let mut cur = Cursor::new(text, line_no);
        cur.skip_ws();

        if cur.peek() == Some('[') {
            let header_span = Span::new(line_no, cur.col());
            cur.bump();
            let (name, _) = cur.ident("a section name after `[`")?;
            if cur.peek() != Some(']') {
                return Err(err(
                    line_no,
                    cur.col(),
                    "expected `]` to close the section header",
                ));
            }
            cur.bump();
            cur.skip_ws();
            if !cur.at_end() {
                return Err(err(
                    line_no,
                    cur.col(),
                    "unexpected characters after the section header",
                ));
            }
            if doc.sections.iter().any(|s| s.name == name)
                || current.as_ref().is_some_and(|s| s.name == name)
            {
                return Err(err(
                    header_span.line,
                    header_span.column,
                    format!("duplicate section [{name}]"),
                ));
            }
            if let Some(done) = current.take() {
                doc.sections.push(done);
            }
            current = Some(Section {
                name,
                entries: Vec::new(),
                span: header_span,
            });
            continue;
        }

        let (key, key_span) = cur.ident("a key or a `[section]` header")?;
        cur.skip_ws();
        if cur.peek() != Some('=') {
            return Err(err(
                line_no,
                cur.col(),
                format!("expected `=` after key `{key}`"),
            ));
        }
        cur.bump();
        cur.skip_ws();
        let value = parse_value(&mut cur, true)?;
        cur.skip_ws();
        if !cur.at_end() {
            return Err(err(
                line_no,
                cur.col(),
                "unexpected characters after the value",
            ));
        }

        match current.as_mut() {
            Some(section) => {
                if section.entries.iter().any(|e| e.key == key) {
                    return Err(err(
                        key_span.line,
                        key_span.column,
                        format!("duplicate key `{}` in [{}]", key, section.name),
                    ));
                }
                section.entries.push(Entry {
                    key,
                    value,
                    span: key_span,
                });
            }
            None if key == "extends" => {
                if doc.extends.is_some() {
                    return Err(err(
                        key_span.line,
                        key_span.column,
                        "duplicate `extends` declaration",
                    ));
                }
                match value {
                    Value::Str(path) => {
                        doc.extends = Some(Extends {
                            path,
                            span: key_span,
                        })
                    }
                    other => {
                        return Err(err(
                            key_span.line,
                            key_span.column,
                            format!(
                                "`extends` takes a quoted file name, found {}",
                                other.type_name()
                            ),
                        ))
                    }
                }
            }
            None => {
                return Err(err(
                    key_span.line,
                    key_span.column,
                    format!(
                    "key `{key}` outside any section (expected `extends` or a `[section]` header)"
                ),
                ))
            }
        }
    }
    if let Some(done) = current.take() {
        doc.sections.push(done);
    }
    Ok(doc)
}

/// Parses one value (list or scalar). `allow_list` is false inside lists,
/// keeping them flat.
fn parse_value(cur: &mut Cursor<'_>, allow_list: bool) -> Result<Value, ParseError> {
    match cur.peek() {
        Some('[') if allow_list => parse_list(cur),
        Some('[') => Err(err(cur.line, cur.col(), "nested lists are not supported")),
        Some('"') => parse_string(cur),
        Some(_) => parse_scalar_token(cur),
        None => Err(err(cur.line, cur.col(), "expected a value")),
    }
}

fn parse_list(cur: &mut Cursor<'_>) -> Result<Value, ParseError> {
    cur.bump(); // consume '['
    let mut items = Vec::new();
    loop {
        cur.skip_ws();
        if cur.peek() == Some(']') {
            cur.bump();
            return Ok(Value::List(items));
        }
        if cur.at_end() {
            return Err(err(cur.line, cur.col(), "unterminated list: expected `]`"));
        }
        items.push(parse_value(cur, false)?);
        cur.skip_ws();
        match cur.peek() {
            Some(',') => {
                cur.bump();
            }
            Some(']') => {}
            _ => return Err(err(cur.line, cur.col(), "expected `,` or `]` in list")),
        }
    }
}

fn parse_string(cur: &mut Cursor<'_>) -> Result<Value, ParseError> {
    let start_col = cur.col();
    cur.bump(); // consume the opening quote
    let mut out = String::new();
    loop {
        match cur.bump() {
            Some('"') => return Ok(Value::Str(out)),
            Some(c) => out.push(c),
            None => return Err(err(cur.line, start_col, "unterminated string literal")),
        }
    }
}

/// Duration unit suffixes, longest first so `ms` wins over `s`.
const DURATION_UNITS: [(&str, u64); 4] = [
    ("ns", 1),
    ("us", 1_000),
    ("ms", 1_000_000),
    ("s", 1_000_000_000),
];

fn parse_scalar_token(cur: &mut Cursor<'_>) -> Result<Value, ParseError> {
    let start_col = cur.col();
    let mut token = String::new();
    while let Some(c) = cur.peek() {
        if c.is_whitespace() || c == ',' || c == ']' {
            break;
        }
        token.push(c);
        cur.bump();
    }
    let line = cur.line;
    if token.is_empty() {
        return Err(err(line, start_col, "expected a value"));
    }
    if token == "true" {
        return Ok(Value::Bool(true));
    }
    if token == "false" {
        return Ok(Value::Bool(false));
    }
    let first = token.chars().next().unwrap_or(' ');
    if !(first.is_ascii_digit() || first == '-' || first == '+' || first == '.') {
        return Err(err(
            line,
            start_col,
            format!("expected a value, found `{token}`"),
        ));
    }

    // A trailing alphabetic run makes this a duration candidate — except
    // for scientific notation ("1e5" ends in a digit, never lands here).
    let suffix_len = token
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphabetic())
        .count();
    if suffix_len > 0 {
        let split = token.len() - suffix_len;
        let (number, suffix) = token.split_at(split);
        // "1e" or "-e3"-style fragments: the numeric part must be nonempty
        // and must not itself end mid-exponent.
        if let Some(&(_, nanos_per_unit)) = DURATION_UNITS.iter().find(|(u, _)| *u == suffix) {
            return parse_duration(number, nanos_per_unit, line, start_col, &token);
        }
        return Err(err(
            line,
            start_col,
            format!("unknown unit suffix `{suffix}` in `{token}` (expected ns, us, ms or s)"),
        ));
    }

    if token.contains(['.', 'e', 'E']) {
        return match token.parse::<f64>() {
            Ok(x) => Ok(Value::Float(x)),
            Err(_) => Err(err(line, start_col, format!("invalid number `{token}`"))),
        };
    }
    match token.parse::<i64>() {
        Ok(i) => Ok(Value::Int(i)),
        Err(_) => Err(err(
            line,
            start_col,
            format!("invalid integer `{token}` (out of range or malformed)"),
        )),
    }
}

fn parse_duration(
    number: &str,
    nanos_per_unit: u64,
    line: usize,
    col: usize,
    token: &str,
) -> Result<Value, ParseError> {
    if number.starts_with('-') {
        return Err(err(
            line,
            col,
            format!("durations cannot be negative: `{token}`"),
        ));
    }
    if number.contains(['.', 'e', 'E']) {
        let secs_units: f64 = number
            .parse()
            .map_err(|_| err(line, col, format!("invalid duration `{token}`")))?;
        let nanos = secs_units * nanos_per_unit as f64;
        if !(nanos.is_finite() && nanos >= 0.0 && nanos <= u64::MAX as f64) {
            return Err(err(
                line,
                col,
                format!("duration `{token}` overflows the clock"),
            ));
        }
        return Ok(Value::Duration(SimDuration::from_nanos(
            nanos.round() as u64
        )));
    }
    let units: u64 = number
        .parse()
        .map_err(|_| err(line, col, format!("invalid duration `{token}`")))?;
    match units.checked_mul(nanos_per_unit) {
        Some(nanos) => Ok(Value::Duration(SimDuration::from_nanos(nanos))),
        None => Err(err(
            line,
            col,
            format!("duration `{token}` overflows the clock"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_document() {
        let doc = parse(
            "# demo\nextends = \"base.peas\"\n\n[deployment]\ncount = 480 # nodes\nkind = \"uniform\"\n\n[peas]\nprobing_range = 3.0\nprobe_spread = 40ms\nturnoff = true\n",
        )
        .expect("parses");
        assert_eq!(
            doc.extends.as_ref().map(|e| e.path.as_str()),
            Some("base.peas")
        );
        assert_eq!(doc.sections.len(), 2);
        let dep = doc.section("deployment").expect("deployment");
        assert_eq!(dep.get("count").map(|e| &e.value), Some(&Value::Int(480)));
        let peas = doc.section("peas").expect("peas");
        assert_eq!(
            peas.get("probe_spread").map(|e| &e.value),
            Some(&Value::Duration(SimDuration::from_millis(40)))
        );
        assert_eq!(
            peas.get("turnoff").map(|e| &e.value),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn parses_lists_and_floats() {
        let doc = parse("[sweeps]\nvalues = [160, 320, 480]\nrates = [5.33, 48.0]\nempty = []\n")
            .expect("parses");
        let sweeps = doc.section("sweeps").expect("sweeps");
        assert_eq!(
            sweeps.get("values").map(|e| &e.value),
            Some(&Value::List(vec![
                Value::Int(160),
                Value::Int(320),
                Value::Int(480)
            ]))
        );
        assert_eq!(
            sweeps.get("empty").map(|e| &e.value),
            Some(&Value::List(vec![]))
        );
    }

    #[test]
    fn positions_point_at_tokens() {
        let e = parse("[a]\nx = 1\nx = 2\n").expect_err("duplicate key");
        assert_eq!((e.line, e.column), (3, 1));
        assert!(e.message.contains("duplicate key `x`"));

        let e = parse("[a]\n  y 3\n").expect_err("missing equals");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected `=`"));
    }

    #[test]
    fn comment_hash_inside_string_is_content() {
        let doc = parse("[a]\nname = \"x # y\" # real comment\n").expect("parses");
        assert_eq!(
            doc.section("a")
                .and_then(|s| s.get("name"))
                .map(|e| &e.value),
            Some(&Value::Str("x # y".into()))
        );
    }

    #[test]
    fn keys_outside_sections_are_rejected() {
        // Inside a section, `extends` parses as an ordinary entry (the
        // schema pass rejects it as an unknown key); a bare key at top
        // level other than `extends` is a parse error.
        assert!(parse("[a]\nextends = \"b.peas\"\n").is_ok());
        let e = parse("x = 1\n").expect_err("outside");
        assert!(e.message.contains("outside any section"));
        assert_eq!((e.line, e.column), (1, 1));
    }

    #[test]
    fn scientific_notation_is_a_float_not_a_duration() {
        let doc = parse("[a]\nx = 1e3\ny = -2.5e-2\n").expect("parses");
        let a = doc.section("a").expect("a");
        assert_eq!(a.get("x").map(|e| &e.value), Some(&Value::Float(1e3)));
        assert_eq!(a.get("y").map(|e| &e.value), Some(&Value::Float(-2.5e-2)));
    }
}
