//! The scenario-document AST.
//!
//! A parsed `.peas` file is a [`ScenarioDoc`]: an optional `extends`
//! declaration followed by ordered sections of ordered `key = value`
//! entries. Every node carries a [`Span`] so schema errors reported at
//! compile time still point at the author's source line; equality
//! ([`PartialEq`]) deliberately *ignores* spans so the printer/parser
//! round-trip property (`parse(print(doc)) == doc`) compares structure,
//! not layout.

use peas_des::time::SimDuration;
use std::fmt;

/// A 1-based source position.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub column: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }
}

/// A typed scalar or (flat) list value.
#[derive(Clone, Debug)]
pub enum Value {
    /// A signed integer, e.g. `480`.
    Int(i64),
    /// A float, e.g. `10.66`.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A double-quoted string, e.g. `"uniform"`.
    Str(String),
    /// A duration with a unit suffix, e.g. `25s` or `150ms`.
    Duration(SimDuration),
    /// A flat list of scalars, e.g. `[160, 320, 480]`.
    List(Vec<Value>),
}

impl Value {
    /// Human-readable type name for diagnostics ("an integer", ...).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Bool(_) => "a boolean",
            Value::Str(_) => "a string",
            Value::Duration(_) => "a duration",
            Value::List(_) => "a list",
        }
    }
}

impl PartialEq for Value {
    /// Structural equality with *bitwise* float comparison, so round-trip
    /// tests distinguish `-0.0` from `0.0` and never stumble over NaN.
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Duration(a), Value::Duration(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    /// The canonical source form the printer emits (and the parser
    /// accepts back unchanged).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            // `{:?}` is Rust's shortest-roundtrip float form ("10.66",
            // "1.0", "1e300"): parsing it recovers the exact bits.
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Duration(d) => write!(f, "{}", print_duration(*d)),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Prints a duration in its largest exact integer unit, so the printed
/// form parses back to the identical nanosecond count.
fn print_duration(d: SimDuration) -> String {
    let nanos = d.as_nanos();
    if nanos.is_multiple_of(1_000_000_000) {
        format!("{}s", nanos / 1_000_000_000)
    } else if nanos.is_multiple_of(1_000_000) {
        format!("{}ms", nanos / 1_000_000)
    } else if nanos.is_multiple_of(1_000) {
        format!("{}us", nanos / 1_000)
    } else {
        format!("{nanos}ns")
    }
}

/// One `key = value` line.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The key left of `=`.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// Where the key starts.
    pub span: Span,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.key == other.key && self.value == other.value
    }
}

/// One `[name]` section and its entries.
#[derive(Clone, Debug)]
pub struct Section {
    /// The name between the brackets.
    pub name: String,
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// Where the header starts.
    pub span: Span,
}

impl PartialEq for Section {
    fn eq(&self, other: &Section) -> bool {
        self.name == other.name && self.entries == other.entries
    }
}

impl Section {
    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A top-level `extends = "file.peas"` declaration.
#[derive(Clone, Debug)]
pub struct Extends {
    /// The referenced file, relative to the current file's directory.
    pub path: String,
    /// Where the `extends` key starts.
    pub span: Span,
}

impl PartialEq for Extends {
    fn eq(&self, other: &Extends) -> bool {
        self.path == other.path
    }
}

/// A whole parsed scenario document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioDoc {
    /// Optional inheritance declaration (must precede all sections).
    pub extends: Option<Extends>,
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Default for Span {
    fn default() -> Span {
        Span { line: 1, column: 1 }
    }
}

impl ScenarioDoc {
    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Overlays `child` on top of `base` (the `extends` semantics): base
    /// sections keep their order, child entries override base entries
    /// key-by-key (taking the child's value and span), child-only keys and
    /// sections are appended in child order. The result has no `extends`.
    pub fn merge_over(base: &ScenarioDoc, child: &ScenarioDoc) -> ScenarioDoc {
        let mut sections: Vec<Section> = base.sections.clone();
        for child_section in &child.sections {
            match sections.iter_mut().find(|s| s.name == child_section.name) {
                Some(merged) => {
                    for entry in &child_section.entries {
                        match merged.entries.iter_mut().find(|e| e.key == entry.key) {
                            Some(slot) => *slot = entry.clone(),
                            None => merged.entries.push(entry.clone()),
                        }
                    }
                }
                None => sections.push(child_section.clone()),
            }
        }
        ScenarioDoc {
            extends: None,
            sections,
        }
    }

    /// Sets (or inserts) `[section].key = value`, creating the section if
    /// absent. Used by sweep expansion to move along the sweep axis.
    pub fn set_key(&mut self, section: &str, key: &str, value: Value) {
        let slot = match self.sections.iter_mut().find(|s| s.name == section) {
            Some(s) => s,
            None => {
                self.sections.push(Section {
                    name: section.to_string(),
                    entries: Vec::new(),
                    span: Span::default(),
                });
                // peas-lint: allow(r1-unchecked-panic) -- the section was pushed on the line above
                self.sections.last_mut().unwrap()
            }
        };
        match slot.entries.iter_mut().find(|e| e.key == key) {
            Some(entry) => entry.value = value,
            None => slot.entries.push(Entry {
                key: key.to_string(),
                value,
                span: Span::default(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_equality_ignores_spans_but_not_bits() {
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(
            Entry {
                key: "a".into(),
                value: Value::Int(1),
                span: Span::new(1, 1)
            },
            Entry {
                key: "a".into(),
                value: Value::Int(1),
                span: Span::new(9, 9)
            }
        );
    }

    #[test]
    fn duration_display_uses_largest_exact_unit() {
        assert_eq!(
            Value::Duration(SimDuration::from_secs(25)).to_string(),
            "25s"
        );
        assert_eq!(
            Value::Duration(SimDuration::from_millis(1500)).to_string(),
            "1500ms"
        );
        assert_eq!(
            Value::Duration(SimDuration::from_nanos(1_001)).to_string(),
            "1001ns"
        );
        assert_eq!(
            Value::Duration(SimDuration::from_micros(7)).to_string(),
            "7us"
        );
    }

    #[test]
    fn merge_overrides_per_key_and_appends_new() {
        let base = ScenarioDoc {
            extends: None,
            sections: vec![Section {
                name: "peas".into(),
                span: Span::default(),
                entries: vec![
                    Entry {
                        key: "probing_range".into(),
                        value: Value::Float(3.0),
                        span: Span::default(),
                    },
                    Entry {
                        key: "probe_count".into(),
                        value: Value::Int(3),
                        span: Span::default(),
                    },
                ],
            }],
        };
        let child = ScenarioDoc {
            extends: None,
            sections: vec![
                Section {
                    name: "peas".into(),
                    span: Span::default(),
                    entries: vec![Entry {
                        key: "probing_range".into(),
                        value: Value::Float(6.0),
                        span: Span::default(),
                    }],
                },
                Section {
                    name: "failures".into(),
                    span: Span::default(),
                    entries: vec![Entry {
                        key: "rate_per_5000s".into(),
                        value: Value::Float(48.0),
                        span: Span::default(),
                    }],
                },
            ],
        };
        let merged = ScenarioDoc::merge_over(&base, &child);
        assert_eq!(merged.sections.len(), 2);
        let peas = merged.section("peas").expect("peas kept");
        assert_eq!(
            peas.get("probing_range").map(|e| &e.value),
            Some(&Value::Float(6.0))
        );
        assert_eq!(
            peas.get("probe_count").map(|e| &e.value),
            Some(&Value::Int(3))
        );
        assert!(merged.section("failures").is_some());
    }
}
