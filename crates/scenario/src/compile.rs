//! The schema compiler: a flattened [`ScenarioDoc`] becomes a
//! [`CompiledScenario`] holding ready-to-run [`ScenarioConfig`]s.
//!
//! Unspecified keys default to [`ScenarioConfig::paper`] for the declared
//! `[deployment] count`, so a scenario file states only what *differs*
//! from Section 5 of the paper — and a file that states nothing compiles
//! to exactly the config the Rust sweeps build, which is what makes the
//! byte-identical-fingerprint equivalence tests possible.
//!
//! Diagnostics are part of the contract: messages are stable strings
//! pinned by unit tests (`tests/errors.rs`), and every one carries the
//! line/column of the offending key.

use crate::ast::{Entry, ScenarioDoc, Value};
use crate::error::ScenarioError;
use peas::FixedPower;
use peas_des::time::{SimDuration, SimTime};
use peas_geom::{Deployment, Field};
use peas_radio::{
    HeightMap, PropagationSpec, TerrainSpec, DEFAULT_PATH_LOSS_EXP, DEFAULT_SIGMA_DB,
};
use peas_sim::{BatterySpec, EventWorkload, FailureConfig, ScenarioConfig};

/// Section names the compiler understands, in application order.
pub const SECTIONS: &[&str] = &[
    "scenario",
    "field",
    "deployment",
    "radio",
    "terrain",
    "energy",
    "peas",
    "grab",
    "failures",
    "traffic",
    "metrics",
    "model",
    "trace",
    "sweeps",
    "golden",
];

/// A parameter sweep declared by a `[sweeps]` section: one axis, a list
/// of values along it, and the seeds each point is replicated over.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Section half of the `section.key` axis.
    pub section: String,
    /// Key half of the `section.key` axis.
    pub key: String,
    /// Values along the axis, in declaration order.
    pub values: Vec<Value>,
    /// Seeds each point runs under, in declaration order.
    pub seeds: Vec<u64>,
    /// One fully-compiled config per value (at the base seed).
    pub point_bases: Vec<ScenarioConfig>,
}

/// Overrides for the golden conformance run of a scenario, so the pinned
/// fingerprint can use a shorter horizon or a single sweep point while
/// the scenario proper keeps its paper-scale settings.
#[derive(Clone, Copy, Debug, Default)]
pub struct GoldenSpec {
    /// Seed override for the golden run.
    pub seed: Option<u64>,
    /// Horizon override for the golden run.
    pub horizon: Option<SimTime>,
    /// Which sweep point the golden run uses (index into `values`).
    pub point: Option<usize>,
}

/// Which pairs of a micro-world's nodes are within probing range of
/// each other (`[model] topology`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelTopology {
    /// Every pair of nodes is within `Rp` of each other.
    Clique,
    /// Only consecutively numbered nodes (`|i - j| == 1`) are in range.
    Chain,
}

/// A `[model]` section: parameters for the `peas-model` exhaustive
/// explorer. This crate only parses and validates the spec; the explorer
/// itself lives in `peas-model` (which depends on this crate, not the
/// other way around).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSpec {
    /// Number of nodes in the micro-world (defaults to `[deployment]
    /// count`; must be 2..=6 — the explorer is exhaustive, not sampled).
    pub nodes: u32,
    /// Which pairs are within probing range.
    pub topology: ModelTopology,
    /// Whether the explorer branches on losing each in-flight frame.
    pub loss: bool,
    /// How many node deaths the explorer may inject (0 = none).
    pub deaths: u32,
    /// State budget: exploration stops (without claiming a fixpoint)
    /// after this many distinct canonical states.
    pub max_states: usize,
}

/// A `[trace]` section: an ordered event trace to replay through the
/// micro-world instead of exploring. This is the format counterexamples
/// are emitted in; the strings are parsed by `peas-model`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpec {
    /// Ordered event descriptions, e.g. `"fire 0 wake"`, `"deliver 0 2"`.
    pub events: Vec<String>,
    /// The invariant the replay is expected to violate (`"none"` or
    /// absent when the trace must replay clean).
    pub expect_violation: Option<String>,
}

/// One concrete run expanded from a scenario (a sweep point × seed, or
/// the single base run of a sweep-less scenario).
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// Human-readable label, stable across runs.
    pub label: String,
    /// The fully-resolved configuration.
    pub config: ScenarioConfig,
}

/// A fully compiled scenario.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// Scenario name (`[scenario] name`, or the caller-provided default).
    pub name: String,
    /// The flattened document the scenario compiled from.
    pub doc: ScenarioDoc,
    /// The base configuration (ignoring any sweep).
    pub base: ScenarioConfig,
    /// The sweep, if `[sweeps]` was declared.
    pub sweep: Option<SweepSpec>,
    /// Golden-run overrides (empty if `[golden]` was absent).
    pub golden: GoldenSpec,
    /// The model-checking spec, if `[model]` was declared.
    pub model: Option<ModelSpec>,
    /// The replay trace, if `[trace]` was declared (requires `[model]`).
    pub trace: Option<TraceSpec>,
}

impl CompiledScenario {
    /// Expands the scenario into its concrete runs, in deterministic
    /// order: for each sweep value (in declaration order), each seed (in
    /// declaration order) — the same flattening the Rust sweeps use.
    pub fn runs(&self) -> Vec<SweepRun> {
        match &self.sweep {
            None => vec![SweepRun {
                label: self.name.clone(),
                config: self.base.clone(),
            }],
            Some(sw) => {
                let mut runs = Vec::with_capacity(sw.values.len() * sw.seeds.len());
                for (value, point) in sw.values.iter().zip(&sw.point_bases) {
                    for &seed in &sw.seeds {
                        runs.push(SweepRun {
                            label: format!("{}.{}={} seed={}", sw.section, sw.key, value, seed),
                            config: point.clone().with_seed(seed),
                        });
                    }
                }
                runs
            }
        }
    }

    /// The runs of worker slot `worker` in a `workers`-way sharded
    /// execution of this scenario's sweep: every run whose position in
    /// the [`CompiledScenario::runs`] enumeration satisfies
    /// `index % workers == worker`. The slices of all workers partition
    /// `runs()` exactly, in order — the contract the sweep journal's
    /// positional merge relies on (`peas_sim::SweepSession` applies the
    /// same rule).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0 or `worker >= workers`.
    pub fn runs_for_shard(&self, worker: usize, workers: usize) -> Vec<SweepRun> {
        assert!(workers >= 1, "need at least one worker slot");
        assert!(
            worker < workers,
            "worker {worker} out of range 0..{workers}"
        );
        self.runs()
            .into_iter()
            .enumerate()
            .filter(|(index, _)| index % workers == worker)
            .map(|(_, run)| run)
            .collect()
    }

    /// The configuration the golden conformance run uses: the base (or
    /// the `[golden] point`-th sweep value) with the `[golden]` seed and
    /// horizon overrides applied.
    pub fn golden_config(&self) -> ScenarioConfig {
        let mut cfg = match (self.golden.point, &self.sweep) {
            (Some(i), Some(sw)) => sw.point_bases[i].clone(),
            _ => self.base.clone(),
        };
        if let Some(seed) = self.golden.seed {
            cfg.seed = seed;
        }
        if let Some(horizon) = self.golden.horizon {
            cfg.horizon = horizon;
        }
        cfg
    }
}

/// Compiles a flattened document (no unresolved `extends`) into a
/// [`CompiledScenario`]. `default_name` is used when the document does
/// not declare `[scenario] name` (callers pass the file stem).
///
/// # Errors
///
/// Returns a [`ScenarioError`] pointing at the first offending key for
/// unknown sections/keys, type mismatches, a missing `[deployment]`
/// section, malformed sweeps, or configs that fail semantic validation.
pub fn compile(doc: &ScenarioDoc, default_name: &str) -> Result<CompiledScenario, ScenarioError> {
    if let Some(ext) = &doc.extends {
        return Err(ScenarioError::at(
            ext.span,
            "document still has an unresolved `extends` (flatten it with the loader first)",
        ));
    }
    for section in &doc.sections {
        if !SECTIONS.contains(&section.name.as_str()) {
            return Err(ScenarioError::at(
                section.span,
                format!("unknown section [{}]", section.name),
            ));
        }
    }

    let base = compile_base(doc)?;
    let name = match doc.section("scenario").and_then(|s| s.get("name")) {
        Some(entry) => get_str("scenario", entry)?,
        None => default_name.to_string(),
    };

    let sweep = compile_sweep(doc, &base)?;
    let golden = compile_golden(doc, &sweep)?;
    let model = compile_model(doc, &base)?;
    let trace = compile_trace(doc, &model)?;

    Ok(CompiledScenario {
        name,
        doc: doc.clone(),
        base,
        sweep,
        golden,
        model,
        trace,
    })
}

/// Compiles every section except `[sweeps]`/`[golden]` into one config.
fn compile_base(doc: &ScenarioDoc) -> Result<ScenarioConfig, ScenarioError> {
    let deployment = doc.section("deployment").ok_or_else(|| {
        ScenarioError::whole_doc(
            "missing required section [deployment] (every scenario must declare `count`)",
        )
    })?;
    let count_entry = deployment
        .get("count")
        .ok_or_else(|| ScenarioError::at(deployment.span, "missing key `count` in [deployment]"))?;
    let count = get_usize("deployment", count_entry)?;

    let mut cfg = ScenarioConfig::paper(count);

    apply_scenario(doc, &mut cfg)?;
    apply_field(doc, &mut cfg)?;
    apply_deployment(doc, &mut cfg)?;
    apply_radio(doc, &mut cfg)?;
    apply_energy(doc, &mut cfg)?;
    apply_peas(doc, &mut cfg)?;
    apply_grab(doc, &mut cfg)?;
    apply_failures(doc, &mut cfg)?;
    apply_traffic(doc, &mut cfg)?;
    apply_metrics(doc, &mut cfg)?;

    cfg.validate()
        .map_err(|e| ScenarioError::whole_doc(format!("invalid scenario: {e}")))?;
    Ok(cfg)
}

fn apply_scenario(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("scenario") else {
        return Ok(());
    };
    for e in &section.entries {
        match e.key.as_str() {
            "name" => {
                get_str("scenario", e)?;
            }
            "seed" => cfg.seed = get_u64("scenario", e)?,
            "horizon" => cfg.horizon = SimTime::from_nanos(get_duration("scenario", e)?.as_nanos()),
            "sensing_range" => cfg.sensing_range = get_f64("scenario", e)?,
            "bitrate_bps" => cfg.bitrate_bps = get_u64("scenario", e)?,
            "loss_rate" => cfg.loss_rate = get_f64("scenario", e)?,
            _ => return Err(unknown_key("scenario", e)),
        }
    }
    Ok(())
}

fn apply_field(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("field") else {
        return Ok(());
    };
    let mut width = cfg.field.width();
    let mut height = cfg.field.height();
    for e in &section.entries {
        match e.key.as_str() {
            "width" => width = get_f64("field", e)?,
            "height" => height = get_f64("field", e)?,
            _ => return Err(unknown_key("field", e)),
        }
    }
    cfg.field = Field::new(width, height);
    Ok(())
}

fn apply_deployment(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    // Presence is checked in `compile_base`; `count` is already applied.
    let Some(section) = doc.section("deployment") else {
        return Ok(());
    };
    let mut kind: Option<(&Entry, String)> = None;
    let mut centers: Option<usize> = None;
    let mut std_dev: Option<f64> = None;
    for e in &section.entries {
        match e.key.as_str() {
            "count" => {}
            "kind" => kind = Some((e, get_str("deployment", e)?)),
            "centers" => centers = Some(get_usize("deployment", e)?),
            "std_dev" => std_dev = Some(get_f64("deployment", e)?),
            _ => return Err(unknown_key("deployment", e)),
        }
    }
    if let Some((entry, kind)) = kind {
        cfg.deployment = match kind.as_str() {
            "uniform" => Deployment::Uniform,
            "jittered-grid" => Deployment::JitteredGrid,
            "clustered" => {
                let (Some(centers), Some(std_dev)) = (centers, std_dev) else {
                    return Err(ScenarioError::at(
                        entry.span,
                        "clustered deployment requires `centers` and `std_dev`",
                    ));
                };
                Deployment::Clustered { centers, std_dev }
            }
            other => {
                return Err(ScenarioError::at(
                    entry.span,
                    format!(
                        "unknown deployment kind `{other}` (expected \"uniform\", \"jittered-grid\" or \"clustered\")"
                    ),
                ))
            }
        };
    }
    Ok(())
}

fn apply_radio(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let mut kind: Option<(&Entry, String)> = None;
    let mut path_loss_exp = DEFAULT_PATH_LOSS_EXP;
    let mut sigma_db = DEFAULT_SIGMA_DB;
    let mut channel_seed = 0u64;
    if let Some(section) = doc.section("radio") {
        for e in &section.entries {
            match e.key.as_str() {
                // `model` is the canonical spelling; `channel` is the
                // pre-trait alias kept so existing scenarios stay valid.
                "model" | "channel" => kind = Some((e, get_str("radio", e)?)),
                "path_loss_exp" => path_loss_exp = get_f64("radio", e)?,
                "sigma_db" => sigma_db = get_f64("radio", e)?,
                "channel_seed" => channel_seed = get_u64("radio", e)?,
                _ => return Err(unknown_key("radio", e)),
            }
        }
    }
    let terrain_requested = match &kind {
        Some((_, kind)) => kind == "terrain",
        None => false,
    };
    if !terrain_requested {
        if let Some(terrain) = doc.section("terrain") {
            return Err(ScenarioError::at(
                terrain.span,
                "a [terrain] section requires `model = \"terrain\"` in [radio]",
            ));
        }
    }
    if let Some((entry, kind)) = kind {
        cfg.propagation = match kind.as_str() {
            "disc" => PropagationSpec::Disc,
            "shadowed" => PropagationSpec::Shadowed {
                path_loss_exp,
                sigma_db,
                seed: channel_seed,
            },
            "terrain" => compile_terrain(doc, entry, path_loss_exp)?,
            other => {
                return Err(ScenarioError::at(
                    entry.span,
                    format!(
                        "unknown propagation model `{other}` (expected \"disc\", \"shadowed\" or \"terrain\")"
                    ),
                ))
            }
        };
    }
    Ok(())
}

/// Compiles a `[terrain]` section into a [`PropagationSpec::Terrain`].
/// `model_entry` is the `[radio] model = "terrain"` entry, blamed when the
/// section is missing; `path_loss_exp` comes from `[radio]` so both
/// stochastic and terrain models share one exponent key.
fn compile_terrain(
    doc: &ScenarioDoc,
    model_entry: &Entry,
    path_loss_exp: f64,
) -> Result<PropagationSpec, ScenarioError> {
    let Some(section) = doc.section("terrain") else {
        return Err(ScenarioError::at(
            model_entry.span,
            "model \"terrain\" requires a [terrain] section",
        ));
    };
    let mut cols: Option<(&Entry, usize)> = None;
    let mut rows: Option<(&Entry, usize)> = None;
    let mut cell_size: Option<(&Entry, f64)> = None;
    let mut heights: Option<(&Entry, Vec<f64>)> = None;
    let mut seed: Option<(&Entry, u64)> = None;
    let mut amplitude: Option<(&Entry, f64)> = None;
    let mut hills: Option<usize> = None;
    let mut diffraction: Option<(&Entry, f64)> = None;
    let mut antenna_height: Option<(&Entry, f64)> = None;
    let mut wavelength: Option<(&Entry, f64)> = None;
    for e in &section.entries {
        match e.key.as_str() {
            "cols" => cols = Some((e, get_usize("terrain", e)?)),
            "rows" => rows = Some((e, get_usize("terrain", e)?)),
            "cell_size" => cell_size = Some((e, get_f64("terrain", e)?)),
            "heights" => {
                let values = get_list("terrain", e)?
                    .iter()
                    .map(|v| match v {
                        Value::Float(x) => Ok(*x),
                        Value::Int(i) => Ok(*i as f64),
                        other => Err(type_error("terrain", e, "a list of numbers", other)),
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                heights = Some((e, values));
            }
            "seed" => seed = Some((e, get_u64("terrain", e)?)),
            "amplitude" => amplitude = Some((e, get_f64("terrain", e)?)),
            "hills" => hills = Some(get_usize("terrain", e)?),
            "diffraction" => diffraction = Some((e, get_f64("terrain", e)?)),
            "antenna_height" => antenna_height = Some((e, get_f64("terrain", e)?)),
            "wavelength" => wavelength = Some((e, get_f64("terrain", e)?)),
            _ => return Err(unknown_key("terrain", e)),
        }
    }

    let missing =
        |key: &str| ScenarioError::at(section.span, format!("missing key `{key}` in [terrain]"));
    let (cols_entry, cols) = cols.ok_or_else(|| missing("cols"))?;
    let (rows_entry, rows) = rows.ok_or_else(|| missing("rows"))?;
    let (cell_entry, cell) = cell_size.ok_or_else(|| missing("cell_size"))?;
    if cols < 2 {
        return Err(ScenarioError::at(
            cols_entry.span,
            format!("terrain `cols` must be at least 2, got {cols}"),
        ));
    }
    if rows < 2 {
        return Err(ScenarioError::at(
            rows_entry.span,
            format!("terrain `rows` must be at least 2, got {rows}"),
        ));
    }
    if !(cell.is_finite() && cell > 0.0) {
        return Err(ScenarioError::at(
            cell_entry.span,
            format!("terrain `cell_size` must be positive, got {cell}"),
        ));
    }

    let height_map = match (&heights, &seed) {
        (Some((entry, _)), Some(_)) => {
            return Err(ScenarioError::at(
                entry.span,
                "terrain heights are either inline (`heights`) or generated (`seed`), not both",
            ))
        }
        (None, None) => {
            return Err(ScenarioError::at(
                section.span,
                "terrain needs a height map: inline `heights` or a generator `seed`",
            ))
        }
        (Some((entry, values)), None) => {
            if let Some((key, _)) = [
                ("amplitude", amplitude.is_some()),
                ("hills", hills.is_some()),
            ]
            .into_iter()
            .find(|&(_, set)| set)
            {
                return Err(ScenarioError::at(
                    entry.span,
                    format!("terrain `{key}` only applies to generated heights (`seed`)"),
                ));
            }
            let want = cols * rows;
            if values.len() != want {
                return Err(ScenarioError::at(
                    entry.span,
                    format!(
                        "terrain `heights` has {} samples but {cols} cols x {rows} rows = {want}",
                        values.len()
                    ),
                ));
            }
            if let Some(i) = values.iter().position(|v| !v.is_finite()) {
                return Err(ScenarioError::at(
                    entry.span,
                    format!("terrain `heights` sample {i} is not finite"),
                ));
            }
            HeightMap::Inline(values.clone())
        }
        (None, Some((_, seed))) => {
            if let Some((entry, a)) = amplitude {
                if !(a.is_finite() && a >= 0.0) {
                    return Err(ScenarioError::at(
                        entry.span,
                        format!("terrain `amplitude` must be finite and non-negative, got {a}"),
                    ));
                }
            }
            // Defaults for amplitude/hills live in `TerrainSpec::generated`.
            let HeightMap::Generated {
                amplitude: default_amplitude,
                hills: default_hills,
                ..
            } = TerrainSpec::generated(cols, rows, cell, *seed).heights
            else {
                unreachable!("TerrainSpec::generated always yields generated heights")
            };
            HeightMap::Generated {
                seed: *seed,
                amplitude: amplitude.map_or(default_amplitude, |(_, a)| a),
                hills: hills.unwrap_or(default_hills),
            }
        }
    };

    let mut spec = TerrainSpec::generated(cols, rows, cell, 0);
    spec.heights = height_map;
    spec.path_loss_exp = path_loss_exp;
    if let Some((entry, d)) = diffraction {
        if !(d.is_finite() && d >= 0.0) {
            return Err(ScenarioError::at(
                entry.span,
                format!("terrain `diffraction` must be finite and non-negative, got {d}"),
            ));
        }
        spec.diffraction = d;
    }
    if let Some((entry, h)) = antenna_height {
        if !(h.is_finite() && h >= 0.0) {
            return Err(ScenarioError::at(
                entry.span,
                format!("terrain `antenna_height` must be finite and non-negative, got {h}"),
            ));
        }
        spec.antenna_height = h;
    }
    if let Some((entry, w)) = wavelength {
        if !(w.is_finite() && w > 0.0) {
            return Err(ScenarioError::at(
                entry.span,
                format!("terrain `wavelength` must be positive, got {w}"),
            ));
        }
        spec.wavelength = w;
    }
    Ok(PropagationSpec::Terrain(spec))
}

fn apply_energy(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("energy") else {
        return Ok(());
    };
    let mut battery_kind: Option<(&Entry, String)> = None;
    let mut battery_lo = 54.0;
    let mut battery_hi = 60.0;
    let mut battery_j: Option<f64> = None;
    for e in &section.entries {
        match e.key.as_str() {
            "tx_mw" => cfg.power.tx_mw = get_f64("energy", e)?,
            "rx_mw" => cfg.power.rx_mw = get_f64("energy", e)?,
            "idle_mw" => cfg.power.idle_mw = get_f64("energy", e)?,
            "sleep_mw" => cfg.power.sleep_mw = get_f64("energy", e)?,
            "battery" => battery_kind = Some((e, get_str("energy", e)?)),
            "battery_lo" => battery_lo = get_f64("energy", e)?,
            "battery_hi" => battery_hi = get_f64("energy", e)?,
            "battery_j" => battery_j = Some(get_f64("energy", e)?),
            _ => return Err(unknown_key("energy", e)),
        }
    }
    match battery_kind {
        Some((entry, kind)) => {
            cfg.battery = match kind.as_str() {
                "uniform" => BatterySpec::Uniform {
                    lo: battery_lo,
                    hi: battery_hi,
                },
                "fixed" => {
                    let Some(j) = battery_j else {
                        return Err(ScenarioError::at(
                            entry.span,
                            "fixed battery requires `battery_j`",
                        ));
                    };
                    BatterySpec::Fixed(j)
                }
                other => {
                    return Err(ScenarioError::at(
                        entry.span,
                        format!("unknown battery `{other}` (expected \"uniform\" or \"fixed\")"),
                    ))
                }
            };
        }
        None => {
            // Allow adjusting the uniform bounds without restating the kind.
            if section.get("battery_lo").is_some() || section.get("battery_hi").is_some() {
                cfg.battery = BatterySpec::Uniform {
                    lo: battery_lo,
                    hi: battery_hi,
                };
            }
        }
    }
    Ok(())
}

fn apply_peas(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("peas") else {
        return Ok(());
    };
    for e in &section.entries {
        match e.key.as_str() {
            "probing_range" => cfg.peas.probing_range = get_f64("peas", e)?,
            "initial_rate" => cfg.peas.initial_rate = get_f64("peas", e)?,
            "desired_rate" => cfg.peas.desired_rate = get_f64("peas", e)?,
            "measure_threshold" => cfg.peas.measure_threshold = get_u32("peas", e)?,
            "probe_count" => cfg.peas.probe_count = get_u32("peas", e)?,
            "probe_spread" => cfg.peas.probe_spread = get_duration("peas", e)?,
            "reply_window" => cfg.peas.reply_window = get_duration("peas", e)?,
            "reply_backoff_base" => cfg.peas.reply_backoff_base = get_duration("peas", e)?,
            "reply_backoff_max" => cfg.peas.reply_backoff_max = get_duration("peas", e)?,
            "turnoff" => cfg.peas.turnoff_enabled = get_bool("peas", e)?,
            "turnoff_tie_epsilon" => cfg.peas.turnoff_tie_epsilon = get_duration("peas", e)?,
            "measure_window_max" => cfg.peas.measure_window_max = get_duration("peas", e)?,
            "rate_lo" => cfg.peas.rate_bounds.0 = get_f64("peas", e)?,
            "rate_hi" => cfg.peas.rate_bounds.1 = get_f64("peas", e)?,
            "adjust_down" => cfg.peas.adjust_factor_bounds.0 = get_f64("peas", e)?,
            "adjust_up" => cfg.peas.adjust_factor_bounds.1 = get_f64("peas", e)?,
            "fixed_power_range" => {
                cfg.peas.fixed_power = Some(FixedPower {
                    tx_range: get_f64("peas", e)?,
                })
            }
            _ => return Err(unknown_key("peas", e)),
        }
    }
    Ok(())
}

fn apply_grab(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("grab") else {
        return Ok(());
    };
    let mut grab = cfg.grab.clone().unwrap_or_default();
    let mut enabled = true;
    for e in &section.entries {
        match e.key.as_str() {
            "enabled" => enabled = get_bool("grab", e)?,
            "adv_period" => grab.adv_period = get_duration("grab", e)?,
            "report_period" => grab.report_period = get_duration("grab", e)?,
            "adv_delay_max" => grab.adv_delay_max = get_duration("grab", e)?,
            "forward_delay_max" => grab.forward_delay_max = get_duration("grab", e)?,
            "credit_alpha" => grab.credit_alpha = get_f64("grab", e)?,
            "data_range" => grab.data_range = get_f64("grab", e)?,
            "adv_bytes" => grab.adv_bytes = get_usize("grab", e)?,
            "report_bytes" => grab.report_bytes = get_usize("grab", e)?,
            _ => return Err(unknown_key("grab", e)),
        }
    }
    cfg.grab = if enabled { Some(grab) } else { None };
    Ok(())
}

fn apply_failures(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("failures") else {
        return Ok(());
    };
    let mut enabled = true;
    let mut rate = cfg.failure.map_or(0.0, |f| f.rate_per_5000s);
    for e in &section.entries {
        match e.key.as_str() {
            "enabled" => enabled = get_bool("failures", e)?,
            "rate_per_5000s" => rate = get_f64("failures", e)?,
            _ => return Err(unknown_key("failures", e)),
        }
    }
    cfg.failure = if enabled && rate > 0.0 {
        Some(FailureConfig {
            rate_per_5000s: rate,
        })
    } else {
        None
    };
    Ok(())
}

fn apply_traffic(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("traffic") else {
        return Ok(());
    };
    for e in &section.entries {
        match e.key.as_str() {
            "events_per_100s" => {
                let rate = get_f64("traffic", e)?;
                cfg.events = (rate > 0.0).then_some(EventWorkload {
                    rate_per_100s: rate,
                });
            }
            _ => return Err(unknown_key("traffic", e)),
        }
    }
    Ok(())
}

fn apply_metrics(doc: &ScenarioDoc, cfg: &mut ScenarioConfig) -> Result<(), ScenarioError> {
    let Some(section) = doc.section("metrics") else {
        return Ok(());
    };
    for e in &section.entries {
        match e.key.as_str() {
            "sample_period" => cfg.metrics.sample_period = get_duration("metrics", e)?,
            "coverage_resolution" => cfg.metrics.coverage_resolution = get_f64("metrics", e)?,
            "max_k" => cfg.metrics.max_k = get_u32("metrics", e)?,
            _ => return Err(unknown_key("metrics", e)),
        }
    }
    Ok(())
}

fn compile_sweep(
    doc: &ScenarioDoc,
    base: &ScenarioConfig,
) -> Result<Option<SweepSpec>, ScenarioError> {
    let Some(section) = doc.section("sweeps") else {
        return Ok(None);
    };
    let mut axis: Option<(&Entry, String)> = None;
    let mut values: Option<&Entry> = None;
    let mut seeds: Vec<u64> = Vec::new();
    for e in &section.entries {
        match e.key.as_str() {
            "axis" => axis = Some((e, get_str("sweeps", e)?)),
            "values" => values = Some(e),
            "seeds" => {
                seeds = get_list("sweeps", e)?
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) if *i >= 0 => Ok(*i as u64),
                        other => Err(type_error("sweeps", e, "a non-negative integer", other)),
                    })
                    .collect::<Result<_, _>>()?
            }
            _ => return Err(unknown_key("sweeps", e)),
        }
    }
    let (axis_entry, axis) =
        axis.ok_or_else(|| ScenarioError::at(section.span, "missing key `axis` in [sweeps]"))?;
    let values_entry = values
        .ok_or_else(|| ScenarioError::at(section.span, "missing key `values` in [sweeps]"))?;
    let values = get_list("sweeps", values_entry)?.to_vec();
    if values.is_empty() {
        return Err(ScenarioError::at(
            values_entry.span,
            "sweep `values` must not be empty",
        ));
    }
    let Some((axis_section, axis_key)) = axis.split_once('.') else {
        return Err(ScenarioError::at(
            axis_entry.span,
            "sweep axis must be `section.key`, e.g. `deployment.count`",
        ));
    };
    if !SECTIONS.contains(&axis_section)
        || matches!(axis_section, "sweeps" | "golden" | "model" | "trace")
    {
        return Err(ScenarioError::at(
            axis_entry.span,
            format!("unknown sweep axis section [{axis_section}]"),
        ));
    }
    if seeds.is_empty() {
        seeds.push(base.seed);
    }

    // Compile every point eagerly so bad sweep values are reported here,
    // not mid-run.
    let mut point_bases = Vec::with_capacity(values.len());
    for value in &values {
        let mut point_doc = doc.clone();
        point_doc.set_key(axis_section, axis_key, value.clone());
        point_bases.push(compile_base(&point_doc).map_err(|mut e| {
            e.message = format!(
                "sweep point {}.{} = {} is invalid: {}",
                axis_section, axis_key, value, e.message
            );
            e
        })?);
    }

    Ok(Some(SweepSpec {
        section: axis_section.to_string(),
        key: axis_key.to_string(),
        values,
        seeds,
        point_bases,
    }))
}

fn compile_golden(
    doc: &ScenarioDoc,
    sweep: &Option<SweepSpec>,
) -> Result<GoldenSpec, ScenarioError> {
    let Some(section) = doc.section("golden") else {
        return Ok(GoldenSpec::default());
    };
    let mut golden = GoldenSpec::default();
    for e in &section.entries {
        match e.key.as_str() {
            "seed" => golden.seed = Some(get_u64("golden", e)?),
            "horizon" => {
                golden.horizon = Some(SimTime::from_nanos(get_duration("golden", e)?.as_nanos()))
            }
            "point" => {
                let idx = get_usize("golden", e)?;
                match sweep {
                    None => {
                        return Err(ScenarioError::at(
                            e.span,
                            "`point` requires a [sweeps] section",
                        ))
                    }
                    Some(sw) if idx >= sw.values.len() => {
                        return Err(ScenarioError::at(
                            e.span,
                            format!(
                                "golden point {idx} out of range (sweep has {} values)",
                                sw.values.len()
                            ),
                        ))
                    }
                    Some(_) => golden.point = Some(idx),
                }
            }
            _ => return Err(unknown_key("golden", e)),
        }
    }
    Ok(golden)
}

fn compile_model(
    doc: &ScenarioDoc,
    base: &ScenarioConfig,
) -> Result<Option<ModelSpec>, ScenarioError> {
    let Some(section) = doc.section("model") else {
        return Ok(None);
    };
    let mut spec = ModelSpec {
        nodes: u32::try_from(base.node_count).unwrap_or(u32::MAX),
        topology: ModelTopology::Clique,
        loss: false,
        deaths: 0,
        max_states: 200_000,
    };
    for e in &section.entries {
        match e.key.as_str() {
            "nodes" => spec.nodes = get_u32("model", e)?,
            "topology" => {
                spec.topology = match get_str("model", e)?.as_str() {
                    "clique" => ModelTopology::Clique,
                    "chain" => ModelTopology::Chain,
                    other => {
                        return Err(ScenarioError::at(
                            e.span,
                            format!(
                            "unknown model topology `{other}` (expected \"clique\" or \"chain\")"
                        ),
                        ))
                    }
                }
            }
            "loss" => spec.loss = get_bool("model", e)?,
            "deaths" => spec.deaths = get_u32("model", e)?,
            "max_states" => spec.max_states = get_usize("model", e)?,
            _ => return Err(unknown_key("model", e)),
        }
    }
    if !(2..=6).contains(&spec.nodes) {
        return Err(ScenarioError::at(
            section.span,
            format!(
                "[model] worlds must have 2..=6 nodes (the explorer is exhaustive), got {}",
                spec.nodes
            ),
        ));
    }
    Ok(Some(spec))
}

fn compile_trace(
    doc: &ScenarioDoc,
    model: &Option<ModelSpec>,
) -> Result<Option<TraceSpec>, ScenarioError> {
    let Some(section) = doc.section("trace") else {
        return Ok(None);
    };
    if model.is_none() {
        return Err(ScenarioError::at(
            section.span,
            "a [trace] section requires a [model] section to replay against",
        ));
    }
    let mut events: Option<Vec<String>> = None;
    let mut expect_violation = None;
    for e in &section.entries {
        match e.key.as_str() {
            "events" => {
                events = Some(
                    get_list("trace", e)?
                        .iter()
                        .map(|v| match v {
                            Value::Str(s) => Ok(s.clone()),
                            other => Err(type_error("trace", e, "a list of strings", other)),
                        })
                        .collect::<Result<_, _>>()?,
                )
            }
            "expect_violation" => {
                let s = get_str("trace", e)?;
                expect_violation = (s != "none").then_some(s);
            }
            _ => return Err(unknown_key("trace", e)),
        }
    }
    let events =
        events.ok_or_else(|| ScenarioError::at(section.span, "missing key `events` in [trace]"))?;
    Ok(Some(TraceSpec {
        events,
        expect_violation,
    }))
}

// ---------------------------------------------------------------------------
// Typed accessors with stable diagnostics.

fn unknown_key(section: &str, e: &Entry) -> ScenarioError {
    ScenarioError::at(e.span, format!("unknown key `{}` in [{section}]", e.key))
}

fn type_error(section: &str, e: &Entry, want: &str, found: &Value) -> ScenarioError {
    ScenarioError::at(
        e.span,
        format!(
            "[{section}] {}: expected {want}, found {}",
            e.key,
            found.type_name()
        ),
    )
}

fn get_f64(section: &str, e: &Entry) -> Result<f64, ScenarioError> {
    match &e.value {
        Value::Float(x) => Ok(*x),
        Value::Int(i) => Ok(*i as f64),
        other => Err(type_error(section, e, "a number", other)),
    }
}

fn get_i64(section: &str, e: &Entry) -> Result<i64, ScenarioError> {
    match &e.value {
        Value::Int(i) => Ok(*i),
        other => Err(type_error(section, e, "an integer", other)),
    }
}

fn get_u64(section: &str, e: &Entry) -> Result<u64, ScenarioError> {
    let i = get_i64(section, e)?;
    u64::try_from(i).map_err(|_| type_error(section, e, "a non-negative integer", &e.value))
}

fn get_u32(section: &str, e: &Entry) -> Result<u32, ScenarioError> {
    let i = get_i64(section, e)?;
    u32::try_from(i).map_err(|_| type_error(section, e, "a non-negative integer", &e.value))
}

fn get_usize(section: &str, e: &Entry) -> Result<usize, ScenarioError> {
    let i = get_i64(section, e)?;
    usize::try_from(i).map_err(|_| type_error(section, e, "a non-negative integer", &e.value))
}

fn get_bool(section: &str, e: &Entry) -> Result<bool, ScenarioError> {
    match &e.value {
        Value::Bool(b) => Ok(*b),
        other => Err(type_error(section, e, "a boolean", other)),
    }
}

fn get_str(section: &str, e: &Entry) -> Result<String, ScenarioError> {
    match &e.value {
        Value::Str(s) => Ok(s.clone()),
        other => Err(type_error(section, e, "a string", other)),
    }
}

fn get_duration(section: &str, e: &Entry) -> Result<SimDuration, ScenarioError> {
    match &e.value {
        Value::Duration(d) => Ok(*d),
        other => Err(type_error(
            section,
            e,
            "a duration (e.g. `150ms`, `25s`)",
            other,
        )),
    }
}

fn get_list<'a>(section: &str, e: &'a Entry) -> Result<&'a [Value], ScenarioError> {
    match &e.value {
        Value::List(items) => Ok(items),
        other => Err(type_error(section, e, "a list", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn compile_src(src: &str) -> Result<CompiledScenario, ScenarioError> {
        compile(&parse(src).expect("parses"), "test")
    }

    #[test]
    fn empty_deployment_only_doc_matches_paper_config() {
        let c = compile_src("[deployment]\ncount = 480\n").expect("compiles");
        assert_eq!(c.base, ScenarioConfig::paper(480));
        assert_eq!(c.name, "test");
        assert_eq!(c.runs().len(), 1);
    }

    #[test]
    fn overrides_apply_per_section() {
        let src = "\
[scenario]
name = \"demo\"
seed = 7
horizon = 1500s
loss_rate = 0.05

[deployment]
count = 100

[radio]
channel = \"shadowed\"
channel_seed = 7

[peas]
probing_range = 6.0
turnoff = false

[failures]
enabled = false

[grab]
enabled = false
";
        let c = compile_src(src).expect("compiles");
        assert_eq!(c.name, "demo");
        assert_eq!(c.base.seed, 7);
        assert_eq!(c.base.horizon, SimTime::from_secs(1500));
        assert_eq!(c.base.loss_rate, 0.05);
        assert_eq!(c.base.propagation, PropagationSpec::shadowed(7));
        assert_eq!(c.base.peas.probing_range, 6.0);
        assert!(!c.base.peas.turnoff_enabled);
        assert_eq!(c.base.failure, None);
        assert_eq!(c.base.grab, None);
    }

    #[test]
    fn terrain_model_compiles_from_its_section() {
        let src = "\
[deployment]
count = 60

[radio]
model = \"terrain\"
path_loss_exp = 2.5

[terrain]
cols = 11
rows = 11
cell_size = 5.0
seed = 9
amplitude = 12.0
hills = 5
diffraction = 0.8
";
        let c = compile_src(src).expect("compiles");
        let mut want = TerrainSpec::generated(11, 11, 5.0, 9);
        want.heights = HeightMap::Generated {
            seed: 9,
            amplitude: 12.0,
            hills: 5,
        };
        want.path_loss_exp = 2.5;
        want.diffraction = 0.8;
        assert_eq!(c.base.propagation, PropagationSpec::Terrain(want));
    }

    #[test]
    fn terrain_heights_can_be_inline() {
        let src = "\
[deployment]
count = 20

[field]
width = 10.0
height = 10.0

[radio]
model = \"terrain\"

[terrain]
cols = 2
rows = 2
cell_size = 10.0
heights = [0.0, 4.0, 4.0, 0.0]
";
        let c = compile_src(src).expect("compiles");
        let PropagationSpec::Terrain(spec) = &c.base.propagation else {
            panic!("expected a terrain spec, got {:?}", c.base.propagation);
        };
        assert_eq!(spec.heights, HeightMap::Inline(vec![0.0, 4.0, 4.0, 0.0]));
        assert_eq!(spec.path_loss_exp, DEFAULT_PATH_LOSS_EXP);
    }

    #[test]
    fn sweep_expands_values_times_seeds_in_order() {
        let src = "\
[deployment]
count = 160

[sweeps]
axis = \"deployment.count\"
values = [160, 320]
seeds = [101, 102, 103]

[golden]
point = 1
horizon = 1000s
";
        let c = compile_src(src).expect("compiles");
        let runs = c.runs();
        assert_eq!(runs.len(), 6);
        assert_eq!(runs[0].config.node_count, 160);
        assert_eq!(runs[0].config.seed, 101);
        assert_eq!(runs[2].config.seed, 103);
        assert_eq!(runs[3].config.node_count, 320);
        assert_eq!(runs[3].config.seed, 101);
        assert_eq!(runs[0].label, "deployment.count=160 seed=101");
        let golden = c.golden_config();
        assert_eq!(golden.node_count, 320);
        assert_eq!(golden.horizon, SimTime::from_secs(1000));
    }

    #[test]
    fn shards_partition_the_run_enumeration_in_order() {
        let src = "\
[deployment]
count = 160

[sweeps]
axis = \"deployment.count\"
values = [160, 320]
seeds = [101, 102, 103]
";
        let c = compile_src(src).expect("compiles");
        let all: Vec<String> = c.runs().into_iter().map(|r| r.label).collect();
        for workers in 1..=4 {
            let mut sliced: Vec<(usize, String)> = Vec::new();
            for worker in 0..workers {
                for (offset, run) in c.runs_for_shard(worker, workers).into_iter().enumerate() {
                    sliced.push((worker + offset * workers, run.label));
                }
            }
            sliced.sort_by_key(|(index, _)| *index);
            assert_eq!(
                sliced.iter().map(|(_, l)| l.clone()).collect::<Vec<_>>(),
                all,
                "workers={workers} does not partition runs() in order"
            );
        }
        assert_eq!(c.runs_for_shard(1, 4).len(), 2); // indices 1 and 5
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_worker_out_of_range_rejected() {
        let c = compile_src("[deployment]\ncount = 60\n").expect("compiles");
        let _ = c.runs_for_shard(2, 2);
    }

    #[test]
    fn diagnostics_are_stable() {
        let err = compile_src("[deployment]\ncount = \"lots\"\n").expect_err("type error");
        assert_eq!(
            err.message,
            "[deployment] count: expected an integer, found a string"
        );
        assert_eq!((err.line, err.column), (2, 1));

        let err = compile_src("[peas]\nprobing_rage = 3.0\n").expect_err("unknown key");
        assert_eq!(
            err.message,
            "missing required section [deployment] (every scenario must declare `count`)"
        );

        let err = compile_src("[deployment]\ncount = 10\n\n[peas]\nprobing_rage = 3.0\n")
            .expect_err("unknown key");
        assert_eq!(err.message, "unknown key `probing_rage` in [peas]");
        assert_eq!((err.line, err.column), (5, 1));
    }

    #[test]
    fn model_section_compiles_with_defaults_from_deployment() {
        let c = compile_src("[deployment]\ncount = 3\n\n[model]\nloss = true\n").expect("compiles");
        let model = c.model.expect("model spec");
        assert_eq!(model.nodes, 3);
        assert_eq!(model.topology, ModelTopology::Clique);
        assert!(model.loss);
        assert_eq!(model.deaths, 0);
        assert_eq!(model.max_states, 200_000);
        assert!(c.trace.is_none());
    }

    #[test]
    fn model_section_rejects_large_worlds() {
        let err = compile_src("[deployment]\ncount = 40\n\n[model]\ndeaths = 1\n")
            .expect_err("too many nodes");
        assert!(err.message.contains("2..=6"), "{}", err.message);
        let c = compile_src("[deployment]\ncount = 40\n\n[model]\nnodes = 4\n").expect("compiles");
        assert_eq!(c.model.expect("model").nodes, 4);
    }

    #[test]
    fn trace_parses_events_and_requires_model() {
        let err = compile_src("[deployment]\ncount = 3\n\n[trace]\nevents = [\"fire 0 wake\"]\n")
            .expect_err("trace without model");
        assert!(
            err.message.contains("requires a [model]"),
            "{}",
            err.message
        );

        let src = "\
[deployment]
count = 3

[model]
topology = \"chain\"

[trace]
events = [\"fire 0 wake\", \"deliver 0 1\"]
expect_violation = \"none\"
";
        let c = compile_src(src).expect("compiles");
        assert_eq!(
            c.model.as_ref().expect("model").topology,
            ModelTopology::Chain
        );
        let trace = c.trace.expect("trace");
        assert_eq!(trace.events, vec!["fire 0 wake", "deliver 0 1"]);
        assert_eq!(trace.expect_violation, None);
    }

    #[test]
    fn clustered_requires_parameters() {
        let err = compile_src("[deployment]\ncount = 10\nkind = \"clustered\"\n")
            .expect_err("incomplete clustered");
        assert_eq!(
            err.message,
            "clustered deployment requires `centers` and `std_dev`"
        );
        let c = compile_src(
            "[deployment]\ncount = 10\nkind = \"clustered\"\ncenters = 4\nstd_dev = 3.5\n",
        )
        .expect("compiles");
        assert_eq!(
            c.base.deployment,
            Deployment::Clustered {
                centers: 4,
                std_dev: 3.5
            }
        );
    }
}
