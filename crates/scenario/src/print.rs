//! The canonical printer: the inverse of [`crate::parse::parse`].
//!
//! `print` emits the normal form of a document — `extends` first, one
//! blank line between blocks, `key = value` entries in document order —
//! and the round-trip law `parse(print(doc)) == doc` is pinned by a
//! property test over arbitrary generated ASTs (`tests/roundtrip.rs`).

use crate::ast::ScenarioDoc;
use std::fmt::Write as _;

/// Renders a document in canonical source form.
pub fn print(doc: &ScenarioDoc) -> String {
    let mut out = String::new();
    let mut first_block = true;
    if let Some(ext) = &doc.extends {
        let _ = writeln!(out, "extends = \"{}\"", ext.path);
        first_block = false;
    }
    for section in &doc.sections {
        if !first_block {
            out.push('\n');
        }
        first_block = false;
        let _ = writeln!(out, "[{}]", section.name);
        for entry in &section.entries {
            let _ = writeln!(out, "{} = {}", entry.key, entry.value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn printed_form_is_canonical_and_reparses() {
        let src = "  extends   =  \"base.peas\"   # x\n[a]\nn =    480\nr=10.66\nd  = 40ms\ns = \"uniform\"\nl = [1, 2]\n";
        let doc = parse(src).expect("parses");
        let printed = print(&doc);
        assert_eq!(
            printed,
            "extends = \"base.peas\"\n\n[a]\nn = 480\nr = 10.66\nd = 40ms\ns = \"uniform\"\nl = [1, 2]\n"
        );
        assert_eq!(parse(&printed).expect("reparses"), doc);
        // Printing is idempotent.
        assert_eq!(print(&parse(&printed).expect("reparses")), printed);
    }
}
