//! File loading and `extends` resolution.
//!
//! A scenario file may start with `extends = "other.peas"`; the referenced
//! file (resolved relative to the extending file's directory) is loaded
//! first and the child is overlaid on it with
//! [`ScenarioDoc::merge_over`]. Chains may be arbitrarily deep; cycles are
//! detected and reported with the full chain in the message.

use crate::ast::ScenarioDoc;
use crate::compile::{compile, CompiledScenario};
use crate::error::ScenarioError;
use crate::parse::parse;
use std::path::{Path, PathBuf};

/// Parses a standalone scenario source that must not use `extends`
/// (tests and in-memory callers with no directory to resolve against).
///
/// # Errors
///
/// Returns a [`ScenarioError`] on parse failure or if the source declares
/// `extends`.
pub fn load_str(src: &str) -> Result<ScenarioDoc, ScenarioError> {
    let doc = parse(src).map_err(ScenarioError::from)?;
    if let Some(ext) = &doc.extends {
        return Err(ScenarioError::at(
            ext.span,
            format!(
                "`extends = \"{}\"` cannot be resolved without a file path (load from a file instead)",
                ext.path
            ),
        ));
    }
    Ok(doc)
}

/// Loads a scenario file and flattens its whole `extends` chain into a
/// single document (no `extends` left).
///
/// # Errors
///
/// Returns a [`ScenarioError`] (tagged with the offending file) on I/O
/// failure, parse failure, or a cyclic `extends` chain.
pub fn load_path(path: &Path) -> Result<ScenarioDoc, ScenarioError> {
    let mut chain: Vec<PathBuf> = Vec::new();
    load_rec(path, &mut chain)
}

/// Loads, flattens and compiles a scenario file. The default scenario
/// name is the file stem.
///
/// # Errors
///
/// Returns a [`ScenarioError`] from loading (see [`load_path`]) or from
/// schema compilation, tagged with the file it came from.
pub fn load_compiled(path: &Path) -> Result<CompiledScenario, ScenarioError> {
    let doc = load_path(path)?;
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".to_string());
    compile(&doc, &stem).map_err(|e| e.with_file(path.display().to_string()))
}

/// Display name used in cycle diagnostics: the file name if present,
/// else the whole path.
fn short_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// The identity used for cycle detection; canonicalization defeats
/// `../`-style aliases where the file exists.
fn identity(path: &Path) -> PathBuf {
    path.canonicalize().unwrap_or_else(|_| path.to_path_buf())
}

fn load_rec(path: &Path, chain: &mut Vec<PathBuf>) -> Result<ScenarioDoc, ScenarioError> {
    let id = identity(path);
    if chain.contains(&id) {
        let mut names: Vec<String> = chain.iter().map(|p| short_name(p)).collect();
        names.push(short_name(&id));
        return Err(ScenarioError::whole_doc(format!(
            "cyclic `extends` chain: {}",
            names.join(" -> ")
        ))
        .with_file(path.display().to_string()));
    }

    let src = std::fs::read_to_string(path).map_err(|e| {
        ScenarioError::whole_doc(format!("cannot read scenario file: {e}"))
            .with_file(path.display().to_string())
    })?;
    let doc =
        parse(&src).map_err(|e| ScenarioError::from(e).with_file(path.display().to_string()))?;

    let Some(ext) = &doc.extends else {
        return Ok(doc);
    };

    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let base_path = parent.join(&ext.path);
    chain.push(id);
    let base = load_rec(&base_path, chain)?;
    chain.pop();
    Ok(ScenarioDoc::merge_over(&base, &doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// A scratch directory under the target dir, unique per test.
    fn scratch(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/scenario-loader-tests")
            .join(name);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn extends_chain_flattens_child_over_base() {
        let dir = scratch("chain");
        fs::write(
            dir.join("base.peas"),
            "[deployment]\ncount = 160\n\n[peas]\nprobing_range = 3.0\n",
        )
        .expect("write base");
        fs::write(
            dir.join("child.peas"),
            "extends = \"base.peas\"\n\n[peas]\nprobing_range = 6.0\n",
        )
        .expect("write child");
        let doc = load_path(&dir.join("child.peas")).expect("loads");
        assert!(doc.extends.is_none());
        let peas = doc.section("peas").expect("peas section");
        assert_eq!(
            peas.get("probing_range").map(|e| &e.value),
            Some(&crate::ast::Value::Float(6.0))
        );
        assert!(doc.section("deployment").is_some());
    }

    #[test]
    fn cyclic_extends_is_reported_with_the_chain() {
        let dir = scratch("cycle");
        fs::write(dir.join("a.peas"), "extends = \"b.peas\"\n").expect("write a");
        fs::write(dir.join("b.peas"), "extends = \"a.peas\"\n").expect("write b");
        let err = load_path(&dir.join("a.peas")).expect_err("cycle detected");
        assert_eq!(
            err.message,
            "cyclic `extends` chain: a.peas -> b.peas -> a.peas"
        );
    }

    #[test]
    fn load_str_rejects_extends() {
        let err = load_str("extends = \"base.peas\"\n").expect_err("rejected");
        assert!(err
            .message
            .contains("cannot be resolved without a file path"));
    }
}
