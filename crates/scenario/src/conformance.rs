//! The golden conformance layer: canonical run fingerprints and metric
//! snapshots, plus the machinery to render, parse and diff them.
//!
//! A *fingerprint* is FNV-1a over the formatted sample stream of a run —
//! the exact encoding the repo's original golden test used, now the
//! single canonical definition. A *snapshot* is the fingerprint plus a
//! small set of headline metrics in a stable `key = value` text form
//! committed under `scenarios/golden/`; [`first_divergence`] names the
//! first field that differs so a failing conformance test can say
//! precisely what drifted.

use peas_sim::RunReport;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a stream of string parts.
fn fnv1a(parts: impl Iterator<Item = String>) -> u64 {
    let mut hash = FNV_OFFSET;
    for part in parts {
        for byte in part.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// The canonical event-stream fingerprint of a run: FNV-1a over each
/// sample formatted as
/// `t|coverage_micro|working|sleeping|alive|wakeups|delivery_micro`.
/// Any change to protocol logic, RNG-consumption order, radio behavior
/// or energy accounting shifts this value.
pub fn sample_fingerprint(report: &RunReport) -> u64 {
    fnv1a(report.samples.iter().map(|s| {
        format!(
            "{:.3}|{:?}|{}|{}|{}|{}|{:?}",
            s.t_secs,
            s.coverage
                .iter()
                .map(|c| (c * 1e6).round() as u64)
                .collect::<Vec<_>>(),
            s.working,
            s.sleeping,
            s.alive,
            s.total_wakeups,
            s.delivery_ratio.map(|r| (r * 1e6).round() as u64),
        )
    }))
}

/// The delivery threshold used for snapshot lifetimes (the paper's 90%).
const LIFETIME_THRESHOLD: f64 = 0.9;

/// A golden snapshot: ordered `(key, value)` pairs, all values already
/// rendered as stable strings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Fields in canonical order.
    pub fields: Vec<(String, String)>,
}

impl Snapshot {
    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Builds the canonical snapshot of a run. Field order is part of the
    /// format; every value is formatted with fixed precision so the
    /// rendered text is deterministic.
    pub fn of_report(report: &RunReport) -> Snapshot {
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut push = |key: &str, value: String| fields.push((key.to_string(), value));

        push(
            "fingerprint",
            format!("{:#018X}", sample_fingerprint(report)),
        );
        push("samples", report.samples.len().to_string());
        push("end_secs", format!("{:.3}", report.end_secs));
        push("total_wakeups", report.total_wakeups().to_string());
        push("failures_injected", report.failures_injected.to_string());
        push("energy_deaths", report.energy_deaths.to_string());
        push("generated_reports", report.generated_reports.to_string());
        push("delivered_reports", report.delivered_reports.to_string());
        push("events_total", report.events_total.to_string());
        push("events_detected", report.events_detected.to_string());
        push("events_delivered", report.events_delivered.to_string());
        push("consumed_j", format!("{:.6}", report.consumed_j));
        push("overhead_j", format!("{:.6}", report.overhead_j()));
        let max_k = report.samples.first().map_or(0, |s| s.coverage.len());
        let max_k = u32::try_from(max_k).unwrap_or(u32::MAX);
        for k in 1..=max_k {
            push(
                &format!("cov{k}_lifetime"),
                format!("{:.3}", report.coverage_lifetime(k, LIFETIME_THRESHOLD)),
            );
        }
        push(
            "delivery_lifetime",
            format!("{:.3}", report.delivery_lifetime(LIFETIME_THRESHOLD)),
        );

        Snapshot { fields }
    }

    /// Renders the snapshot in its on-disk text form.
    pub fn render(&self, scenario_name: &str) -> String {
        let mut out = String::new();
        out.push_str("# Golden conformance snapshot. Regenerate with:\n");
        out.push_str(&format!(
            "#   cargo run --release -p peas-bench --bin scenario -- bless {scenario_name}\n"
        ));
        for (key, value) in &self.fields {
            out.push_str(&format!("{key} = {value}\n"));
        }
        out
    }

    /// Parses a snapshot from its on-disk text form. `#` lines and blank
    /// lines are ignored; everything else must be `key = value`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(src: &str) -> Result<Snapshot, String> {
        let mut fields = Vec::new();
        for (i, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "snapshot line {}: expected `key = value`, got `{line}`",
                    i + 1
                ));
            };
            fields.push((key.trim().to_string(), value.trim().to_string()));
        }
        Ok(Snapshot { fields })
    }
}

/// Where two snapshots first disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// The field that differs (or exists on only one side).
    pub field: String,
    /// The expected (committed) value, if the field exists there.
    pub expected: Option<String>,
    /// The actual (freshly computed) value, if the field exists there.
    pub actual: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let expected = self.expected.as_deref().unwrap_or("<missing>");
        let actual = self.actual.as_deref().unwrap_or("<missing>");
        write!(
            f,
            "field `{}`: expected {expected}, got {actual}",
            self.field
        )
    }
}

/// Returns the first field (in `expected` order, then `actual`-only
/// fields) whose value differs between the two snapshots, or `None` when
/// they agree completely.
pub fn first_divergence(expected: &Snapshot, actual: &Snapshot) -> Option<Divergence> {
    for (key, want) in &expected.fields {
        match actual.get(key) {
            Some(got) if got == want => {}
            got => {
                return Some(Divergence {
                    field: key.clone(),
                    expected: Some(want.clone()),
                    actual: got.map(str::to_string),
                })
            }
        }
    }
    for (key, got) in &actual.fields {
        if expected.get(key).is_none() {
            return Some(Divergence {
                field: key.clone(),
                expected: None,
                actual: Some(got.clone()),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(fields: &[(&str, &str)]) -> Snapshot {
        Snapshot {
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let s = snap(&[
            ("fingerprint", "0x405387E10CC72444"),
            ("samples", "61"),
            ("cov1_lifetime", "1500.000"),
        ]);
        let text = s.render("fig9");
        assert!(text.contains("bless fig9"));
        assert_eq!(Snapshot::parse(&text).expect("parses"), s);
    }

    #[test]
    fn divergence_names_the_first_differing_field() {
        let a = snap(&[("fingerprint", "0xAA"), ("samples", "61")]);
        let b = snap(&[("fingerprint", "0xAA"), ("samples", "62")]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.field, "samples");
        assert_eq!(d.to_string(), "field `samples`: expected 61, got 62");
        assert_eq!(first_divergence(&a, &a), None);

        let c = snap(&[("fingerprint", "0xAA")]);
        let d = first_divergence(&a, &c).expect("missing field");
        assert_eq!(d.field, "samples");
        assert_eq!(d.actual, None);
    }

    #[test]
    fn malformed_snapshot_lines_are_reported() {
        let err = Snapshot::parse("fingerprint 0xAA\n").expect_err("malformed");
        assert!(err.contains("snapshot line 1"));
    }
}
