//! Error type shared by the loader and the schema compiler.

use crate::ast::Span;
use crate::parse::ParseError;
use std::fmt;

/// A scenario-level failure (parse, schema or load), pointing at the
/// offending file, line and column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// The file the error originates from, when known.
    pub file: Option<String>,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Stable, author-facing description.
    pub message: String,
}

impl ScenarioError {
    /// Builds an error at a source span.
    pub fn at(span: Span, message: impl Into<String>) -> ScenarioError {
        ScenarioError {
            file: None,
            line: span.line,
            column: span.column,
            message: message.into(),
        }
    }

    /// Builds a whole-document error (anchored at line 1, column 1).
    pub fn whole_doc(message: impl Into<String>) -> ScenarioError {
        ScenarioError::at(Span::new(1, 1), message)
    }

    /// Attaches the file the error came from (keeps an existing one).
    pub fn with_file(mut self, file: impl Into<String>) -> ScenarioError {
        if self.file.is_none() {
            self.file = Some(file.into());
        }
        self
    }
}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> ScenarioError {
        ScenarioError {
            file: None,
            line: e.line,
            column: e.column,
            message: e.message,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.file {
            Some(file) => write!(
                f,
                "{}:{}:{}: {}",
                file, self.line, self.column, self.message
            ),
            None => write!(f, "{}:{}: {}", self.line, self.column, self.message),
        }
    }
}

impl std::error::Error for ScenarioError {}
