//! # peas-scenario — declarative scenarios and golden conformance
//!
//! A tiny, dependency-free scenario language (`.peas` files) for the PEAS
//! reproduction, plus the golden conformance layer that pins every
//! scenario to a committed fingerprint.
//!
//! The pipeline:
//!
//! ```text
//! .peas source --parse--> ScenarioDoc --extends/merge--> flattened doc
//!      --compile--> CompiledScenario { ScenarioConfig(s), sweep, golden }
//!      --Runner--> RunReport --Snapshot::of_report--> golden snapshot
//! ```
//!
//! Design rules:
//!
//! - **Paper defaults.** Unset keys default to [`ScenarioConfig::paper`]
//!   for the declared node count, so a scenario file describes only its
//!   *difference* from Section 5 of the paper, and an empty file equals
//!   the Rust-built config bit for bit.
//! - **Spans everywhere.** Every diagnostic carries a 1-based line and
//!   column, and the message strings are stable (pinned by tests).
//! - **Canonical printing.** [`print`] emits a normal form with the
//!   round-trip law `parse(print(doc)) == doc`.
//!
//! ```
//! use peas_scenario::{compile, load_str};
//!
//! let doc = load_str("[deployment]\ncount = 480\n").expect("parses");
//! let scenario = compile(&doc, "quick").expect("compiles");
//! assert_eq!(scenario.base.node_count, 480);
//! ```
//!
//! [`ScenarioConfig::paper`]: peas_sim::ScenarioConfig::paper

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod conformance;
pub mod error;
pub mod job;
pub mod loader;
pub mod parse;
pub mod print;

pub use ast::{Entry, Extends, ScenarioDoc, Section, Span, Value};
pub use compile::{
    compile, CompiledScenario, GoldenSpec, ModelSpec, ModelTopology, SweepRun, SweepSpec,
    TraceSpec, SECTIONS,
};
pub use conformance::{first_divergence, sample_fingerprint, Divergence, Snapshot};
pub use error::ScenarioError;
pub use job::{compile_job, job_scenario_path};
pub use loader::{load_compiled, load_path, load_str};
pub use parse::{parse, ParseError};
pub use print::print;
