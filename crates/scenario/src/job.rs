//! Compiling sweep-service job submissions to concrete runs.
//!
//! A [`JobSpec`] (the wire form lives in [`peas_sim::job`]) names either
//! a `.peas` scenario — by corpus stem or by path — or carries an inline
//! scenario source. This module is the bridge from that submission to a
//! [`CompiledScenario`]: resolve, load, compile, and reject the job
//! shapes the sweep service cannot serve (model-checking scenarios,
//! inline sources using `extends`).

use std::path::{Path, PathBuf};

use peas_sim::job::{JobSource, JobSpec};

use crate::compile::{compile, CompiledScenario};
use crate::error::ScenarioError;
use crate::loader::{load_compiled, load_str};

/// Resolves a job's scenario reference against the service's scenario
/// directory: a reference ending in `.peas` is a path (absolute used
/// as-is, relative joined onto `scenario_dir`); anything else is a
/// corpus stem resolving to `scenario_dir/<stem>.peas`.
pub fn job_scenario_path(reference: &str, scenario_dir: &Path) -> PathBuf {
    let direct = Path::new(reference);
    if direct.extension().is_some_and(|ext| ext == "peas") {
        if direct.is_absolute() {
            direct.to_path_buf()
        } else {
            scenario_dir.join(direct)
        }
    } else {
        scenario_dir.join(format!("{reference}.peas"))
    }
}

/// Compiles a job submission to the scenario it asks to run. Inline
/// sources compile with the job name as the scenario's default name;
/// referenced scenarios go through the normal loader (including
/// `extends` flattening).
///
/// # Errors
///
/// Returns a [`ScenarioError`] on load/parse/compile failure, on an
/// inline source using `extends` (inline jobs must be self-contained),
/// or when the scenario declares `[model]` — model-checking scenarios
/// have no simulation runs for the sweep service to schedule.
pub fn compile_job(spec: &JobSpec, scenario_dir: &Path) -> Result<CompiledScenario, ScenarioError> {
    let compiled = match &spec.source {
        JobSource::Inline(text) => {
            let doc = load_str(text)?;
            compile(&doc, &spec.name)?
        }
        JobSource::Scenario(reference) => {
            load_compiled(&job_scenario_path(reference, scenario_dir))?
        }
    };
    if compiled.model.is_some() {
        return Err(ScenarioError::whole_doc(format!(
            "job `{}` names a model-checking scenario; the sweep service only \
             schedules simulation sweeps",
            spec.name
        )));
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, source: JobSource) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            source,
        }
    }

    #[test]
    fn stem_and_path_references_resolve_against_the_scenario_dir() {
        let dir = Path::new("/corpus");
        assert_eq!(
            job_scenario_path("sweep-smoke", dir),
            PathBuf::from("/corpus/sweep-smoke.peas")
        );
        assert_eq!(
            job_scenario_path("sub/custom.peas", dir),
            PathBuf::from("/corpus/sub/custom.peas")
        );
        assert_eq!(
            job_scenario_path("/abs/custom.peas", dir),
            PathBuf::from("/abs/custom.peas")
        );
    }

    #[test]
    fn inline_jobs_compile_with_the_job_name() {
        let s = spec(
            "adhoc",
            JobSource::Inline("[deployment]\ncount = 30\n".to_string()),
        );
        let compiled = compile_job(&s, Path::new("/nowhere")).expect("compiles");
        assert_eq!(compiled.name, "adhoc");
        assert_eq!(compiled.base.node_count, 30);
        assert_eq!(compiled.runs().len(), 1);
    }

    #[test]
    fn inline_jobs_cannot_extend() {
        let s = spec(
            "adhoc",
            JobSource::Inline("extends = \"base.peas\"\n".to_string()),
        );
        let err = compile_job(&s, Path::new("/nowhere")).expect_err("rejected");
        assert!(err
            .message
            .contains("cannot be resolved without a file path"));
    }

    #[test]
    fn model_scenarios_are_rejected() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
        let s = spec("mc", JobSource::Scenario("model-3node".to_string()));
        let err = compile_job(&s, &dir).expect_err("rejected");
        assert!(err.message.contains("model-checking scenario"), "{err}");
    }
}
