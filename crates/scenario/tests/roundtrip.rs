//! The printer/parser round-trip law: `parse(print(doc)) == doc` for
//! arbitrary documents, and `print(parse(src)) == src` for sources
//! already in canonical form (printing is a normal form).

use proptest::prelude::*;

use peas_des::time::SimDuration;
use peas_radio::PropagationSpec;
use peas_scenario::{compile, parse, print, Entry, Extends, ScenarioDoc, Section, Span, Value};

/// A lowercase identifier usable as a key, section name or string value.
fn arb_ident() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..26, 1..8).prop_map(|letters| {
        letters
            .into_iter()
            .map(|i| (b'a' + i as u8) as char)
            .collect()
    })
}

/// Any scalar value (everything a list element may be).
fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        prop::bool::ANY.prop_map(Value::Bool),
        arb_ident().prop_map(Value::Str),
        (0u64..10_000_000_000u64).prop_map(|n| Value::Duration(SimDuration::from_nanos(n))),
    ]
}

/// Any value, including flat lists (possibly empty).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_scalar(),
        prop::collection::vec(arb_scalar(), 0..5).prop_map(Value::List),
    ]
}

/// A section with unique keys.
fn arb_section() -> impl Strategy<Value = Section> {
    (
        arb_ident(),
        prop::collection::vec((arb_ident(), arb_value()), 0..6),
    )
        .prop_map(|(name, pairs)| {
            let mut entries: Vec<Entry> = Vec::new();
            for (key, value) in pairs {
                if entries.iter().any(|e| e.key == key) {
                    continue; // duplicate keys are a parse error by design
                }
                entries.push(Entry {
                    key,
                    value,
                    span: Span::default(),
                });
            }
            Section {
                name,
                entries,
                span: Span::default(),
            }
        })
}

/// A whole document: optional `extends`, unique section names.
fn arb_doc() -> impl Strategy<Value = ScenarioDoc> {
    (
        prop::option::of(arb_ident()),
        prop::collection::vec(arb_section(), 0..5),
    )
        .prop_map(|(extends, raw_sections)| {
            let mut sections: Vec<Section> = Vec::new();
            for section in raw_sections {
                if sections.iter().any(|s| s.name == section.name) {
                    continue; // duplicate sections are a parse error by design
                }
                sections.push(section);
            }
            ScenarioDoc {
                extends: extends.map(|stem| Extends {
                    path: format!("{stem}.peas"),
                    span: Span::default(),
                }),
                sections,
            }
        })
}

fn entry(key: &str, value: Value) -> Entry {
    Entry {
        key: key.to_string(),
        value,
        span: Span::default(),
    }
}

fn section(name: &str, entries: Vec<Entry>) -> Section {
    Section {
        name: name.to_string(),
        entries,
        span: Span::default(),
    }
}

/// A well-formed terrain scenario: the raster lattice exactly spans the
/// declared field, heights are either an inline list of the right length
/// (drawn from a fixed-size pool) or generator parameters.
fn arb_terrain_doc() -> impl Strategy<Value = ScenarioDoc> {
    (
        (
            2usize..6,
            2usize..6,
            1.0f64..10.0,
            prop::collection::vec(-50.0f64..50.0, 25..26),
        ),
        (
            any::<bool>(),
            0i64..1_000_000,
            prop::option::of(0.0f64..20.0),
            prop::option::of(1usize..10),
            prop::option::of(0.0f64..3.0),
        ),
    )
        .prop_map(
            |((cols, rows, cell, pool), (inline, seed, amplitude, hills, diffraction))| {
                let mut terrain = vec![
                    entry("cols", Value::Int(cols as i64)),
                    entry("rows", Value::Int(rows as i64)),
                    entry("cell_size", Value::Float(cell)),
                ];
                if inline {
                    let values = pool[..cols * rows].iter().copied().map(Value::Float);
                    terrain.push(entry("heights", Value::List(values.collect())));
                } else {
                    terrain.push(entry("seed", Value::Int(seed)));
                    if let Some(a) = amplitude {
                        terrain.push(entry("amplitude", Value::Float(a)));
                    }
                    if let Some(h) = hills {
                        terrain.push(entry("hills", Value::Int(h as i64)));
                    }
                }
                if let Some(d) = diffraction {
                    terrain.push(entry("diffraction", Value::Float(d)));
                }
                ScenarioDoc {
                    extends: None,
                    sections: vec![
                        section("deployment", vec![entry("count", Value::Int(30))]),
                        section(
                            "field",
                            vec![
                                entry("width", Value::Float((cols - 1) as f64 * cell)),
                                entry("height", Value::Float((rows - 1) as f64 * cell)),
                            ],
                        ),
                        section(
                            "radio",
                            vec![entry("model", Value::Str("terrain".to_string()))],
                        ),
                        section("terrain", terrain),
                    ],
                }
            },
        )
}

proptest! {
    /// The round-trip law: printing then parsing recovers the document
    /// exactly (spans excluded — equality ignores them by design).
    #[test]
    fn parse_print_round_trips(doc in arb_doc()) {
        let printed = print(&doc);
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "printed form failed to parse: {printed:?}");
        prop_assert_eq!(reparsed.expect("checked above"), doc);
    }

    /// Printing is idempotent: the canonical form is a fixed point.
    #[test]
    fn print_is_a_normal_form(doc in arb_doc()) {
        let printed = print(&doc);
        let reprinted = print(&parse(&printed).expect("canonical form parses"));
        prop_assert_eq!(reprinted, printed);
    }

    /// `[terrain]` sections obey the round-trip law, and — stronger — the
    /// reparsed document compiles to the identical propagation spec, so a
    /// scenario printed by tooling can never silently change its raster.
    #[test]
    fn terrain_docs_round_trip_through_print_and_compile(doc in arb_terrain_doc()) {
        let printed = print(&doc);
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "printed terrain doc failed to parse: {printed:?}");
        let reparsed = reparsed.expect("checked above");
        prop_assert_eq!(&reparsed, &doc);

        let direct = compile(&doc, "t").expect("valid terrain doc compiles");
        let round_tripped = compile(&reparsed, "t").expect("reparsed doc compiles");
        prop_assert!(
            matches!(direct.base.propagation, PropagationSpec::Terrain(_)),
            "expected a terrain spec, got {:?}",
            direct.base.propagation
        );
        prop_assert_eq!(direct.base.propagation, round_tripped.base.propagation);
    }
}
