//! The printer/parser round-trip law: `parse(print(doc)) == doc` for
//! arbitrary documents, and `print(parse(src)) == src` for sources
//! already in canonical form (printing is a normal form).

use proptest::prelude::*;

use peas_des::time::SimDuration;
use peas_scenario::{parse, print, Entry, Extends, ScenarioDoc, Section, Span, Value};

/// A lowercase identifier usable as a key, section name or string value.
fn arb_ident() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..26, 1..8).prop_map(|letters| {
        letters
            .into_iter()
            .map(|i| (b'a' + i as u8) as char)
            .collect()
    })
}

/// Any scalar value (everything a list element may be).
fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        prop::bool::ANY.prop_map(Value::Bool),
        arb_ident().prop_map(Value::Str),
        (0u64..10_000_000_000u64).prop_map(|n| Value::Duration(SimDuration::from_nanos(n))),
    ]
}

/// Any value, including flat lists (possibly empty).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_scalar(),
        prop::collection::vec(arb_scalar(), 0..5).prop_map(Value::List),
    ]
}

/// A section with unique keys.
fn arb_section() -> impl Strategy<Value = Section> {
    (
        arb_ident(),
        prop::collection::vec((arb_ident(), arb_value()), 0..6),
    )
        .prop_map(|(name, pairs)| {
            let mut entries: Vec<Entry> = Vec::new();
            for (key, value) in pairs {
                if entries.iter().any(|e| e.key == key) {
                    continue; // duplicate keys are a parse error by design
                }
                entries.push(Entry {
                    key,
                    value,
                    span: Span::default(),
                });
            }
            Section {
                name,
                entries,
                span: Span::default(),
            }
        })
}

/// A whole document: optional `extends`, unique section names.
fn arb_doc() -> impl Strategy<Value = ScenarioDoc> {
    (
        prop::option::of(arb_ident()),
        prop::collection::vec(arb_section(), 0..5),
    )
        .prop_map(|(extends, raw_sections)| {
            let mut sections: Vec<Section> = Vec::new();
            for section in raw_sections {
                if sections.iter().any(|s| s.name == section.name) {
                    continue; // duplicate sections are a parse error by design
                }
                sections.push(section);
            }
            ScenarioDoc {
                extends: extends.map(|stem| Extends {
                    path: format!("{stem}.peas"),
                    span: Span::default(),
                }),
                sections,
            }
        })
}

proptest! {
    /// The round-trip law: printing then parsing recovers the document
    /// exactly (spans excluded — equality ignores them by design).
    #[test]
    fn parse_print_round_trips(doc in arb_doc()) {
        let printed = print(&doc);
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "printed form failed to parse: {printed:?}");
        prop_assert_eq!(reparsed.expect("checked above"), doc);
    }

    /// Printing is idempotent: the canonical form is a fixed point.
    #[test]
    fn print_is_a_normal_form(doc in arb_doc()) {
        let printed = print(&doc);
        let reprinted = print(&parse(&printed).expect("canonical form parses"));
        prop_assert_eq!(reprinted, printed);
    }
}
