//! Diagnostic contract tests: every error class a scenario author can
//! hit has a *stable* message and points at the offending line/column.
//! These strings are part of the DSL's public surface — docs and CI
//! output quote them — so changing one is a deliberate act that must
//! update this file.

use std::path::{Path, PathBuf};

use peas_scenario::{compile, load_compiled, load_path, parse};

fn compile_err(src: &str) -> peas_scenario::ScenarioError {
    compile(&parse(src).expect("source parses"), "test").expect_err("compile must fail")
}

#[test]
fn unknown_key_names_the_key_and_section() {
    let err = compile_err("[deployment]\ncount = 480\n\n[peas]\nprobing_rage = 3.0\n");
    assert_eq!(err.message, "unknown key `probing_rage` in [peas]");
    assert_eq!((err.line, err.column), (5, 1));
}

#[test]
fn unknown_section_is_rejected() {
    let err = compile_err("[deployment]\ncount = 480\n\n[radios]\nchannel = \"disc\"\n");
    assert_eq!(err.message, "unknown section [radios]");
    assert_eq!((err.line, err.column), (4, 1));
}

#[test]
fn type_mismatch_states_expected_and_found() {
    let err = compile_err("[deployment]\ncount = \"lots\"\n");
    assert_eq!(
        err.message,
        "[deployment] count: expected an integer, found a string"
    );
    assert_eq!((err.line, err.column), (2, 1));

    let err = compile_err("[deployment]\ncount = 480\n\n[peas]\nprobe_spread = 40\n");
    assert_eq!(
        err.message,
        "[peas] probe_spread: expected a duration (e.g. `150ms`, `25s`), found an integer"
    );
    assert_eq!((err.line, err.column), (5, 1));

    let err = compile_err("[deployment]\ncount = 480\n\n[peas]\nturnoff = 1\n");
    assert_eq!(
        err.message,
        "[peas] turnoff: expected a boolean, found an integer"
    );
}

#[test]
fn missing_deployment_section_is_reported() {
    let err = compile_err("[peas]\nprobing_range = 3.0\n");
    assert_eq!(
        err.message,
        "missing required section [deployment] (every scenario must declare `count`)"
    );
    assert_eq!((err.line, err.column), (1, 1));

    let err = compile_err("[deployment]\nkind = \"uniform\"\n");
    assert_eq!(err.message, "missing key `count` in [deployment]");
    assert_eq!((err.line, err.column), (1, 1));
}

#[test]
fn terrain_section_requires_the_terrain_model() {
    let err = compile_err("[deployment]\ncount = 60\n\n[terrain]\ncols = 11\n");
    assert_eq!(
        err.message,
        "a [terrain] section requires `model = \"terrain\"` in [radio]"
    );
    assert_eq!((err.line, err.column), (4, 1));

    let err = compile_err("[deployment]\ncount = 60\n\n[radio]\nmodel = \"terrain\"\n");
    assert_eq!(
        err.message,
        "model \"terrain\" requires a [terrain] section"
    );
    assert_eq!((err.line, err.column), (5, 1));
}

#[test]
fn unknown_propagation_model_lists_the_choices() {
    let err = compile_err("[deployment]\ncount = 60\n\n[radio]\nmodel = \"fresnel\"\n");
    assert_eq!(
        err.message,
        "unknown propagation model `fresnel` (expected \"disc\", \"shadowed\" or \"terrain\")"
    );
    assert_eq!((err.line, err.column), (5, 1));
}

/// Every `[terrain]` key points its diagnostic at the offending line.
#[test]
fn malformed_terrain_rasters_are_reported_at_the_key() {
    let terrain = |body: &str| {
        format!("[deployment]\ncount = 60\n\n[radio]\nmodel = \"terrain\"\n\n[terrain]\n{body}")
    };

    let err = compile_err(&terrain("cols = 11\nrows = 11\n"));
    assert_eq!(err.message, "missing key `cell_size` in [terrain]");
    assert_eq!((err.line, err.column), (7, 1));

    let err = compile_err(&terrain(
        "cols = 11\nrows = 11\ncell_size = 0.0\nseed = 1\n",
    ));
    assert_eq!(err.message, "terrain `cell_size` must be positive, got 0");
    assert_eq!((err.line, err.column), (10, 1));

    let err = compile_err(&terrain("cols = 1\nrows = 11\ncell_size = 5.0\nseed = 1\n"));
    assert_eq!(err.message, "terrain `cols` must be at least 2, got 1");
    assert_eq!((err.line, err.column), (8, 1));

    let err = compile_err(&terrain(
        "cols = 2\nrows = 2\ncell_size = 5.0\nheights = [0.0, 1.0, 2.0]\n",
    ));
    assert_eq!(
        err.message,
        "terrain `heights` has 3 samples but 2 cols x 2 rows = 4"
    );
    assert_eq!((err.line, err.column), (11, 1));

    let err = compile_err(&terrain(
        "cols = 2\nrows = 2\ncell_size = 5.0\nheights = [0.0, 1.0, 2.0, 3.0]\nseed = 4\n",
    ));
    assert_eq!(
        err.message,
        "terrain heights are either inline (`heights`) or generated (`seed`), not both"
    );

    let err = compile_err(&terrain("cols = 2\nrows = 2\ncell_size = 5.0\n"));
    assert_eq!(
        err.message,
        "terrain needs a height map: inline `heights` or a generator `seed`"
    );
    assert_eq!((err.line, err.column), (7, 1));
}

#[test]
fn terrain_raster_must_cover_the_field() {
    // 6x6 at 5 m spans 25 m; the default paper field is 50 x 50 m.
    let err = compile_err(
        "[deployment]\ncount = 60\n\n[radio]\nmodel = \"terrain\"\n\n\
         [terrain]\ncols = 6\nrows = 6\ncell_size = 5.0\nseed = 1\n",
    );
    assert!(
        err.message
            .starts_with("invalid scenario: terrain raster spans"),
        "{}",
        err.message
    );
}

#[test]
fn bad_unit_suffix_lists_the_accepted_units() {
    let err = parse("[scenario]\nhorizon = 3m\n").expect_err("bad suffix");
    assert_eq!(
        err.message,
        "unknown unit suffix `m` in `3m` (expected ns, us, ms or s)"
    );
    assert_eq!((err.line, err.column), (2, 11));
}

/// A scratch directory under target/, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/scenario-error-tests")
        .join(name);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn cyclic_extends_reports_the_whole_chain() {
    let dir = scratch("cycle3");
    std::fs::write(dir.join("a.peas"), "extends = \"b.peas\"\n").expect("write a");
    std::fs::write(dir.join("b.peas"), "extends = \"c.peas\"\n").expect("write b");
    std::fs::write(dir.join("c.peas"), "extends = \"a.peas\"\n").expect("write c");
    let err = load_path(&dir.join("a.peas")).expect_err("cycle detected");
    assert_eq!(
        err.message,
        "cyclic `extends` chain: a.peas -> b.peas -> c.peas -> a.peas"
    );
    assert!(err.file.is_some(), "cycle errors carry the offending file");
}

#[test]
fn compile_errors_from_files_carry_the_file_name() {
    let dir = scratch("filetag");
    std::fs::write(dir.join("bad.peas"), "[deployment]\ncount = true\n").expect("write bad");
    let err = load_compiled(&dir.join("bad.peas")).expect_err("type error");
    assert_eq!(
        err.message,
        "[deployment] count: expected an integer, found a boolean"
    );
    assert!(
        err.file.as_deref().is_some_and(|f| f.ends_with("bad.peas")),
        "error should name the file, got {:?}",
        err.file
    );
    // The rendered form is file:line:col: message.
    assert!(err
        .to_string()
        .ends_with("bad.peas:2:1: [deployment] count: expected an integer, found a boolean"));
}
