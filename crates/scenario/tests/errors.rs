//! Diagnostic contract tests: every error class a scenario author can
//! hit has a *stable* message and points at the offending line/column.
//! These strings are part of the DSL's public surface — docs and CI
//! output quote them — so changing one is a deliberate act that must
//! update this file.

use std::path::{Path, PathBuf};

use peas_scenario::{compile, load_compiled, load_path, parse};

fn compile_err(src: &str) -> peas_scenario::ScenarioError {
    compile(&parse(src).expect("source parses"), "test").expect_err("compile must fail")
}

#[test]
fn unknown_key_names_the_key_and_section() {
    let err = compile_err("[deployment]\ncount = 480\n\n[peas]\nprobing_rage = 3.0\n");
    assert_eq!(err.message, "unknown key `probing_rage` in [peas]");
    assert_eq!((err.line, err.column), (5, 1));
}

#[test]
fn unknown_section_is_rejected() {
    let err = compile_err("[deployment]\ncount = 480\n\n[radios]\nchannel = \"disc\"\n");
    assert_eq!(err.message, "unknown section [radios]");
    assert_eq!((err.line, err.column), (4, 1));
}

#[test]
fn type_mismatch_states_expected_and_found() {
    let err = compile_err("[deployment]\ncount = \"lots\"\n");
    assert_eq!(
        err.message,
        "[deployment] count: expected an integer, found a string"
    );
    assert_eq!((err.line, err.column), (2, 1));

    let err = compile_err("[deployment]\ncount = 480\n\n[peas]\nprobe_spread = 40\n");
    assert_eq!(
        err.message,
        "[peas] probe_spread: expected a duration (e.g. `150ms`, `25s`), found an integer"
    );
    assert_eq!((err.line, err.column), (5, 1));

    let err = compile_err("[deployment]\ncount = 480\n\n[peas]\nturnoff = 1\n");
    assert_eq!(
        err.message,
        "[peas] turnoff: expected a boolean, found an integer"
    );
}

#[test]
fn missing_deployment_section_is_reported() {
    let err = compile_err("[peas]\nprobing_range = 3.0\n");
    assert_eq!(
        err.message,
        "missing required section [deployment] (every scenario must declare `count`)"
    );
    assert_eq!((err.line, err.column), (1, 1));

    let err = compile_err("[deployment]\nkind = \"uniform\"\n");
    assert_eq!(err.message, "missing key `count` in [deployment]");
    assert_eq!((err.line, err.column), (1, 1));
}

#[test]
fn bad_unit_suffix_lists_the_accepted_units() {
    let err = parse("[scenario]\nhorizon = 3m\n").expect_err("bad suffix");
    assert_eq!(
        err.message,
        "unknown unit suffix `m` in `3m` (expected ns, us, ms or s)"
    );
    assert_eq!((err.line, err.column), (2, 11));
}

/// A scratch directory under target/, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/scenario-error-tests")
        .join(name);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn cyclic_extends_reports_the_whole_chain() {
    let dir = scratch("cycle3");
    std::fs::write(dir.join("a.peas"), "extends = \"b.peas\"\n").expect("write a");
    std::fs::write(dir.join("b.peas"), "extends = \"c.peas\"\n").expect("write b");
    std::fs::write(dir.join("c.peas"), "extends = \"a.peas\"\n").expect("write c");
    let err = load_path(&dir.join("a.peas")).expect_err("cycle detected");
    assert_eq!(
        err.message,
        "cyclic `extends` chain: a.peas -> b.peas -> c.peas -> a.peas"
    );
    assert!(err.file.is_some(), "cycle errors carry the offending file");
}

#[test]
fn compile_errors_from_files_carry_the_file_name() {
    let dir = scratch("filetag");
    std::fs::write(dir.join("bad.peas"), "[deployment]\ncount = true\n").expect("write bad");
    let err = load_compiled(&dir.join("bad.peas")).expect_err("type error");
    assert_eq!(
        err.message,
        "[deployment] count: expected an integer, found a boolean"
    );
    assert!(
        err.file.as_deref().is_some_and(|f| f.ends_with("bad.peas")),
        "error should name the file, got {:?}",
        err.file
    );
    // The rendered form is file:line:col: message.
    assert!(err
        .to_string()
        .ends_with("bad.peas:2:1: [deployment] count: expected an integer, found a boolean"));
}
