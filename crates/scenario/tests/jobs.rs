//! Integration of the job wire form (`peas_sim::job`) with the scenario
//! compiler (`compile_job`): a submission decoded from client JSON must
//! compile to exactly the runs the referenced scenario produces, so the
//! sweep service's shard enumeration (and therefore its cache keys)
//! agree with `peas-bench scenario run` and `peas-bench sweep`.

use std::path::{Path, PathBuf};

use peas_scenario::{compile_job, load_compiled};
use peas_sim::job::{decode_job, encode_job, JobSource, JobSpec};
use peas_sim::{config_fingerprint, enumerate_shards};

fn corpus() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// A decoded scenario-reference job compiles to the same labels,
/// fingerprints and seeds as loading the `.peas` file directly — the
/// cache sees identical shard keys whichever door a sweep comes in by.
#[test]
fn scenario_jobs_compile_to_the_corpus_scenarios_shards() {
    let src = r#"{"schema":1,"job":"night-sweep","scenario":"sweep-smoke"}"#;
    let spec = decode_job(src).expect("decodes");
    let via_job = compile_job(&spec, &corpus()).expect("compiles");
    let direct = load_compiled(&corpus().join("sweep-smoke.peas")).expect("loads");

    let shard_keys = |runs: Vec<peas_scenario::SweepRun>| -> Vec<(String, u64, u64)> {
        enumerate_shards(runs.into_iter().map(|r| (r.label, r.config)).collect())
            .into_iter()
            .map(|s| (s.label, s.key.fingerprint, s.key.seed))
            .collect()
    };
    let via_job = shard_keys(via_job.runs());
    let direct = shard_keys(direct.runs());
    assert_eq!(via_job.len(), 4, "sweep-smoke is a 2 x 2 sweep");
    assert_eq!(via_job, direct, "job path and direct load must agree");
}

/// An inline job is self-contained: the same source submitted under two
/// different job names yields identical shard keys (the job name labels
/// the spool artifacts, never the cache address).
#[test]
fn inline_job_shard_keys_are_independent_of_the_job_name() {
    let inline = "[deployment]\ncount = 30\n\n[sweeps]\naxis = \"deployment.count\"\n\
                  values = [30, 40]\nseeds = [7]\n";
    let keys_for = |name: &str| -> Vec<(u64, u64)> {
        let spec = JobSpec {
            name: name.to_string(),
            source: JobSource::Inline(inline.to_string()),
        };
        compile_job(&spec, Path::new("/nowhere"))
            .expect("compiles")
            .runs()
            .into_iter()
            .map(|r| (config_fingerprint(&r.config), r.config.seed))
            .collect()
    };
    let a = keys_for("client-a.job");
    let b = keys_for("client-b.job");
    assert_eq!(a.len(), 2);
    assert_eq!(a, b, "cache keys must not depend on the submission name");
}

/// The encode/decode round trip survives scenario sources with the
/// characters a real `.peas` file contains (newlines, quotes, brackets).
#[test]
fn job_round_trips_a_real_scenario_source() {
    let source = std::fs::read_to_string(corpus().join("smoke.peas")).expect("read smoke.peas");
    let spec = JobSpec {
        name: "smoke-inline".to_string(),
        source: JobSource::Inline(source),
    };
    let back = decode_job(&encode_job(&spec)).expect("round trip");
    assert_eq!(back, spec);
    let compiled = compile_job(&back, Path::new("/nowhere")).expect("compiles");
    assert_eq!(compiled.name, "smoke-inline");
    assert_eq!(compiled.runs().len(), 1);
}

/// Jobs that cannot be served fail with actionable messages: a missing
/// corpus stem reports the resolved path, and the loader's span-tagged
/// diagnostics pass through for broken inline sources.
#[test]
fn unservable_jobs_fail_with_useful_errors() {
    let missing = JobSpec {
        name: "typo".to_string(),
        source: JobSource::Scenario("no-such-scenario".to_string()),
    };
    let err = compile_job(&missing, &corpus()).expect_err("missing stem");
    assert!(
        err.to_string().contains("no-such-scenario.peas"),
        "error must name the resolved path: {err}"
    );

    let broken = JobSpec {
        name: "broken".to_string(),
        source: JobSource::Inline("[deployment]\ncount = \"lots\"\n".to_string()),
    };
    let err = compile_job(&broken, Path::new("/nowhere")).expect_err("type error");
    assert!(
        err.to_string().contains("count"),
        "diagnostic must name the bad key: {err}"
    );
}
