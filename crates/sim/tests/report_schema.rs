//! Contract test for the versioned `RunReport` wire form (`schema = 1`).
//!
//! The sweep checkpoint journal and `scenario run --json` both persist
//! reports in this form, so its key names and their order are a
//! compatibility contract: a rename or reorder silently invalidates
//! every journal on disk. This test pins the exact key sequence — if it
//! fails, either revert the serializer change or bump
//! [`peas_sim::REPORT_SCHEMA`] and teach the decoder both versions.

use peas_des::time::SimTime;
use peas_sim::{decode_report, encode_report, Runner, ScenarioConfig, REPORT_SCHEMA};

fn sample_report() -> peas_sim::RunReport {
    let mut config = ScenarioConfig::small();
    config.node_count = 25;
    config.horizon = SimTime::from_secs(300);
    Runner::new(config.with_seed(7)).run_single()
}

/// Every `"key":` occurrence in encoding order. Object nesting does not
/// matter for the contract — a journal written by one build must decode
/// in the next, which requires the flat key stream to be stable.
fn key_stream(encoded: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = encoded.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if bytes.get(j + 1) == Some(&b':') {
                keys.push(encoded[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn schema_version_is_pinned() {
    assert_eq!(REPORT_SCHEMA, 1);
}

#[test]
fn serialized_report_key_names_and_order_are_pinned() {
    let report = sample_report();
    let encoded = encode_report(&report);
    let keys = key_stream(&encoded);

    // Top-level prefix, in order.
    let head = [
        "schema",
        "node_count",
        "seed",
        "samples",
        "t_secs",
        "coverage",
        "working",
        "sleeping",
        "alive",
        "delivery_ratio",
        "total_wakeups",
    ];
    assert_eq!(
        &keys[..head.len()],
        &head,
        "schema-1 prefix drifted in {encoded:.120}"
    );

    // Per-sample keys repeat identically for every sample.
    let per_sample = &head[4..];
    let samples = report.samples.len();
    assert!(samples >= 2, "sample config should record several samples");
    for s in 0..samples {
        let at = 4 + s * per_sample.len();
        assert_eq!(
            &keys[at..at + per_sample.len()],
            per_sample,
            "sample #{s} keys drifted"
        );
    }

    // Everything after the samples array, in order: the aggregate
    // node_stats object, the energy ledger, the medium census and the
    // scalar tail.
    let tail = [
        "node_stats",
        "wakeups",
        "probes_sent",
        "replies_sent",
        "probes_heard",
        "replies_heard",
        "measurements",
        "window_with_reply",
        "window_silent",
        "turnoffs",
        "replies_overheard",
        "ledger_j",
        "protocol_tx",
        "protocol_rx",
        "protocol_idle",
        "app_tx",
        "app_rx",
        "working_idle",
        "sleep",
        "consumed_j",
        "medium",
        "frames_sent",
        "deliveries_ok",
        "collisions",
        "random_losses",
        "failures_injected",
        "energy_deaths",
        "generated_reports",
        "delivered_reports",
        "events_total",
        "events_detected",
        "events_delivered",
        "end_secs",
        "events_processed",
    ];
    let tail_at = 4 + samples * per_sample.len();
    assert_eq!(&keys[tail_at..], &tail, "schema-1 suffix drifted");
}

#[test]
fn decode_inverts_encode_exactly() {
    let report = sample_report();
    let encoded = encode_report(&report);
    let decoded = decode_report(&encoded).expect("well-formed schema-1 line");
    assert_eq!(decoded, report, "decode(encode(r)) must equal r");
    assert_eq!(
        encode_report(&decoded),
        encoded,
        "re-encoding must be byte-identical"
    );
}

#[test]
fn unknown_schema_versions_are_rejected() {
    let report = sample_report();
    let encoded = encode_report(&report).replacen("\"schema\":1", "\"schema\":2", 1);
    let err = decode_report(&encoded).expect_err("schema 2 must be rejected");
    assert!(
        err.contains("unsupported report schema"),
        "unexpected error: {err}"
    );
}
