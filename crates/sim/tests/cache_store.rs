//! Corruption conformance for the result cache: damage a segment at
//! property-chosen offsets — single-bit flips and truncations — and
//! prove the store's two safety rules:
//!
//! 1. **Never serve garbage.** Whatever survives a scan of a damaged
//!    store is byte-identical (schema-1) to the pristine record with
//!    the same key; corrupt records are detected by checksum, not
//!    decoded into plausible-but-wrong reports.
//! 2. **Converge by re-running.** Damaged records are classified (torn
//!    tail vs quarantined interior damage), the affected shards become
//!    novel again, and one execute pass restores a fully-served plan
//!    whose merged bytes equal the uncorrupted reference.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use peas_des::time::SimTime;
use peas_sim::{encode_report, ResultCache, ScenarioConfig, SweepPlan};

fn tiny(seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::small();
    c.node_count = 25;
    c.horizon = SimTime::from_secs(300);
    c.with_seed(seed)
}

fn runs() -> Vec<(String, ScenarioConfig)> {
    vec![
        ("seed-1".to_string(), tiny(1)),
        ("seed-2".to_string(), tiny(2)),
    ]
}

struct Pristine {
    /// The bytes of a freshly-written single-writer segment holding
    /// both shards (two records, trailing newline).
    segment: Vec<u8>,
    /// The reference merged bytes of the two-shard plan.
    merged: Vec<String>,
}

/// Builds the pristine two-record segment once; every property case
/// starts from a byte-copy of it.
fn pristine() -> &'static Pristine {
    static PRISTINE: OnceLock<Pristine> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("peas-store-pristine-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("open cache");
        let plan = SweepPlan::new(runs());
        let scan = cache.scan().expect("scan empty");
        cache.execute(&plan.novel(&scan), 1).expect("execute");
        let scan = cache.scan().expect("rescan");
        let merged = plan
            .merged(&scan)
            .expect("complete")
            .iter()
            .map(encode_report)
            .collect();
        let segment = fs::read(cache.segment_path(0)).expect("read segment");
        let _ = fs::remove_dir_all(&dir);
        assert!(segment.ends_with(b"\n"));
        Pristine { segment, merged }
    })
}

fn temp_cache(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("peas-store-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Scans a damaged store and asserts rule 1 + rule 2 for the two-shard
/// plan; returns the (quarantined, torn) classification counts.
fn check_damaged_store(dir: &PathBuf) -> (usize, usize) {
    let cache = ResultCache::open(dir).expect("open damaged cache");
    let plan = SweepPlan::new(runs());
    let p = pristine();

    let scan = cache.scan().expect("a damaged store must still scan");
    // Rule 1: anything served is byte-identical to the pristine record.
    for (shard, want) in plan.shards().iter().zip(&p.merged) {
        if let Some(report) = scan.get(&shard.key) {
            assert_eq!(
                &encode_report(report),
                want,
                "damaged store served wrong bytes for {}",
                shard.label
            );
        }
    }
    let classified = (scan.quarantined, scan.torn);

    // Rule 2: novel shards re-run and the plan converges byte-exactly.
    let novel = plan.novel(&scan);
    assert_eq!(
        novel.len() + plan.cached(&scan),
        plan.len(),
        "every shard is either served or novel"
    );
    cache.execute(&novel, 1).expect("re-execute");
    let scan = cache.scan().expect("post-repair scan");
    let merged: Vec<String> = plan
        .merged(&scan)
        .expect("complete after repair")
        .iter()
        .map(encode_report)
        .collect();
    assert_eq!(merged, p.merged, "repaired store diverges from reference");

    classified
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Flip one property-chosen bit anywhere in the segment: the store
    /// never serves the damaged record and converges after a re-run.
    #[test]
    fn bit_flips_are_detected_and_repaired(raw_offset in any::<u64>(), bit in 0u8..8) {
        let p = pristine();
        let offset = (raw_offset as usize) % p.segment.len();
        let mut bytes = p.segment.clone();
        bytes[offset] ^= 1 << bit;

        let dir = temp_cache(raw_offset ^ u64::from(bit));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("cache-0.jsonl"), &bytes).expect("write damaged segment");

        let (quarantined, torn) = check_damaged_store(&dir);
        // Flipping the final newline tears the tail; flipping a byte of
        // record 2 (after record 1's newline) damages only the tail line,
        // which still ends in '\n' and is therefore quarantined, not torn.
        let record_1_len = p.segment.iter().position(|b| *b == b'\n').expect("newline");
        if offset == p.segment.len() - 1 {
            prop_assert_eq!((quarantined, torn), (0, 1), "newline flip tears the tail");
        } else if offset > record_1_len {
            prop_assert_eq!((quarantined, torn), (1, 0), "interior tail-record damage");
        } else {
            // Record 1 (or its newline): a newline flip fuses the two
            // records into one damaged line; a body flip damages just
            // record 1. Either way at least one record is quarantined.
            prop_assert!(quarantined >= 1 && torn == 0, "got {quarantined}/{torn}");
        }

        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncate the segment at a property-chosen offset: a cut that
    /// leaves a partial final line is a torn tail (never quarantined),
    /// a cut at a record boundary leaves a smaller valid store, and
    /// either way the plan converges after a re-run.
    #[test]
    fn truncations_are_torn_tails_and_repaired(raw_cut in any::<u64>()) {
        let p = pristine();
        // Cut strictly inside the file (len keeps the pristine store).
        let cut = (raw_cut as usize) % p.segment.len();
        let bytes = p.segment[..cut].to_vec();

        let dir = temp_cache(0x5EED_0000 ^ raw_cut);
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("cache-0.jsonl"), &bytes).expect("write truncated segment");

        let (quarantined, torn) = check_damaged_store(&dir);
        prop_assert_eq!(quarantined, 0, "a truncation must never quarantine");
        let record_1_len = p.segment.iter().position(|b| *b == b'\n').expect("newline");
        let boundary = cut == 0 || cut == record_1_len + 1;
        prop_assert_eq!(torn, usize::from(!boundary),
            "cut at {} (record 1 ends at {})", cut, record_1_len);

        let _ = fs::remove_dir_all(&dir);
    }
}
