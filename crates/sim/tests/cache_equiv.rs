//! Cache-equivalence conformance: the result cache is only sound if a
//! cache hit is indistinguishable from a cold re-run. These tests pin
//! the sweep service's two headline guarantees at the library layer:
//!
//! 1. **Differential byte-identity** — a report served from the cache
//!    encodes (schema-1) to exactly the bytes a fresh
//!    `Runner::new(cfg).run_single()` produces, and re-submitting an
//!    identical sweep executes zero shards.
//! 2. **Overlap dedup** (property test) — across arbitrary overlapping
//!    sweeps submitted in arbitrary order, the executed shards are
//!    exactly the distinct novel `ShardKey`s, each run exactly once,
//!    and every submission still merges byte-identically.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use peas_des::time::SimTime;
use peas_sim::{
    config_fingerprint, encode_report, ResultCache, Runner, ScenarioConfig, ShardKey, SweepPlan,
};

/// The four grid points every test here sweeps over: 2 densities x 2
/// seeds of the fast small-field scenario.
const COUNTS: [usize; 2] = [25, 30];
const SEEDS: [u64; 2] = [1, 2];

fn tiny(count: usize, seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::small();
    c.node_count = count;
    c.horizon = SimTime::from_secs(300);
    c.with_seed(seed)
}

fn grid() -> Vec<(String, ScenarioConfig)> {
    let mut runs = Vec::new();
    for count in COUNTS {
        for seed in SEEDS {
            runs.push((format!("n={count} seed={seed}"), tiny(count, seed)));
        }
    }
    runs
}

/// Cold-run reference bytes per grid key, computed once: what an
/// uncached `Runner` says each shard's schema-1 line must be.
fn reference() -> &'static BTreeMap<ShardKey, String> {
    static REFERENCE: OnceLock<BTreeMap<ShardKey, String>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        grid()
            .into_iter()
            .map(|(_, config)| {
                let key = ShardKey {
                    fingerprint: config_fingerprint(&config),
                    seed: config.seed,
                };
                (key, encode_report(&Runner::new(config).run_single()))
            })
            .collect()
    })
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("peas-equiv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The differential test: serve a sweep through the cache, then check
/// every merged report byte-for-byte against an independent cold run,
/// and prove the resubmission path runs nothing.
#[test]
fn cache_served_reports_are_byte_identical_to_cold_runs() {
    let dir = temp_cache("diff");
    let cache = ResultCache::open(&dir).expect("open cache");
    let plan = SweepPlan::new(grid());

    let scan = cache.scan().expect("scan empty");
    let novel = plan.novel(&scan);
    assert_eq!(novel.len(), plan.len(), "empty cache: everything is novel");
    cache.execute(&novel, 2).expect("execute");

    let scan = cache.scan().expect("rescan");
    let merged = plan.merged(&scan).expect("complete");
    for (shard, report) in plan.shards().iter().zip(&merged) {
        let cold = reference()
            .get(&shard.key)
            .expect("every shard key has a reference run");
        assert_eq!(
            &encode_report(report),
            cold,
            "cache-served bytes diverge from a cold run for {}",
            shard.label
        );
    }

    // Re-submitting the identical sweep is a pure cache hit.
    let resubmitted = SweepPlan::new(grid());
    assert!(
        resubmitted.novel(&scan).is_empty(),
        "identical resubmission must execute zero shards"
    );
    assert_eq!(resubmitted.cached(&scan), resubmitted.len());
    let again = resubmitted.merged(&scan).expect("still complete");
    let bytes = |reports: &[peas_sim::RunReport]| -> Vec<String> {
        reports.iter().map(encode_report).collect()
    };
    assert_eq!(bytes(&again), bytes(&merged));

    let _ = fs::remove_dir_all(&dir);
}

/// A submission for the overlap property: indices into the 4-point grid
/// (duplicates allowed — a sweep may even repeat its own shard).
fn arb_submission() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random overlapping sweeps, submitted one after another against a
    /// shared cache: the executed shards are exactly the distinct novel
    /// keys (each exactly once, no matter how submissions overlap or
    /// which order they arrive in), and every submission's merged
    /// reports equal the cold-run reference byte for byte.
    #[test]
    fn overlapping_sweeps_execute_exactly_the_novel_keys(
        subs in prop::collection::vec(arb_submission(), 1..4),
        flip_order in any::<bool>(),
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let all = grid();

        let mut subs = subs;
        if flip_order {
            subs.reverse();
        }

        let dir = temp_cache(&format!("overlap-{case}"));
        let cache = ResultCache::open(&dir).expect("open cache");
        let mut executed: Vec<ShardKey> = Vec::new();
        let mut expected_novel: Vec<ShardKey> = Vec::new();
        for sub in &subs {
            let runs: Vec<_> = sub.iter().map(|&i| all[i].clone()).collect();
            let plan = SweepPlan::new(runs);
            let scan = cache.scan().expect("scan");
            let novel = plan.novel(&scan);
            // Predict novelty independently: keys never seen by any
            // earlier submission (nor earlier in this one).
            for shard in plan.shards() {
                if !executed.contains(&shard.key)
                    && !expected_novel.contains(&shard.key)
                {
                    expected_novel.push(shard.key);
                }
            }
            cache.execute(&novel, 2).expect("execute");
            executed.extend(novel.iter().map(|s| s.key));
            prop_assert_eq!(&executed, &expected_novel,
                "executed set must track exactly the novel keys");

            // This submission is now fully served, byte-identically.
            let scan = cache.scan().expect("rescan");
            let merged = plan.merged(&scan).expect("complete");
            for (shard, report) in plan.shards().iter().zip(&merged) {
                prop_assert_eq!(
                    &encode_report(report),
                    reference().get(&shard.key).expect("reference"),
                    "submission {:?} shard {} diverged", sub, shard.label
                );
            }
        }

        // No key ever ran twice.
        let mut dedup = executed.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), executed.len(), "a key was executed twice");

        let _ = fs::remove_dir_all(&dir);
    }
}
