//! Property-based tests over whole simulation runs: for arbitrary small
//! scenarios, the run must satisfy the system invariants.

use proptest::prelude::*;

use peas_des::time::SimTime;
use peas_sim::{BatterySpec, FailureConfig, Runner, ScenarioConfig};

fn arb_scenario() -> impl Strategy<Value = ScenarioConfig> {
    (
        10usize..60,                      // node_count
        any::<u64>(),                     // seed
        0.0f64..0.2,                      // loss rate
        prop::option::of(10.0f64..200.0), // failure rate (scaled high for short runs)
        prop::bool::ANY,                  // grab on/off
        2.0f64..10.0,                     // battery joules
    )
        .prop_map(|(n, seed, loss, failure, grab, battery)| {
            let mut c = ScenarioConfig::small().with_seed(seed);
            c.node_count = n;
            c.loss_rate = loss;
            c.failure = failure.map(|rate_per_5000s| FailureConfig { rate_per_5000s });
            if grab {
                c.grab = Some(peas_grab::GrabConfig::paper());
            }
            c.battery = BatterySpec::Fixed(battery);
            c.horizon = SimTime::from_secs(600);
            c.metrics.sample_period = peas_des::time::SimDuration::from_secs(50);
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core run invariants hold for arbitrary scenarios.
    #[test]
    fn run_invariants(config in arb_scenario()) {
        let report = Runner::new(config.clone()).run_single();
        // Samples advance in time.
        for w in report.samples.windows(2) {
            prop_assert!(w[0].t_secs < w[1].t_secs);
            // Alive count never increases; cumulative wakeups never shrink.
            prop_assert!(w[1].alive <= w[0].alive);
            prop_assert!(w[1].total_wakeups >= w[0].total_wakeups);
            // Delivery ratio stays a probability.
            if let Some(r) = w[1].delivery_ratio {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
        for s in &report.samples {
            // Coverage values are probabilities, monotone in k.
            for c in s.coverage.windows(2) {
                prop_assert!((0.0..=1.0).contains(&c[0]));
                prop_assert!(c[0] >= c[1] - 1e-12);
            }
            // Census consistency: working + sleeping <= alive <= deployed.
            prop_assert!(s.working + s.sleeping <= s.alive);
            prop_assert!(s.alive <= config.node_count);
        }
        // Energy ledger balances the batteries exactly.
        prop_assert!((report.ledger.total_j() - report.consumed_j).abs() < 1e-6);
        // Death bookkeeping: every death is a failure or a depletion, and
        // the final accounting sweep may kill nodes after the last sample.
        if let Some(last) = report.samples.last() {
            let deaths = (report.failures_injected + report.energy_deaths) as usize;
            prop_assert!(deaths >= config.node_count - last.alive);
            prop_assert!(deaths <= config.node_count);
        }
        // Deliveries never exceed generation.
        prop_assert!(report.delivered_reports <= report.generated_reports);
    }

    /// Bit-for-bit determinism for arbitrary scenarios.
    #[test]
    fn runs_are_reproducible(config in arb_scenario()) {
        let a = Runner::new(config.clone()).run_single();
        let b = Runner::new(config).run_single();
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.node_stats, b.node_stats);
        prop_assert_eq!(a.medium, b.medium);
        prop_assert_eq!(a.failures_injected, b.failures_injected);
        prop_assert_eq!(a.energy_deaths, b.energy_deaths);
        prop_assert_eq!(a.delivered_reports, b.delivered_reports);
    }

    /// The overhead ratio is always a valid fraction, and protocol
    /// overhead is consistent with its parts.
    #[test]
    fn overhead_is_a_fraction(config in arb_scenario()) {
        let report = Runner::new(config).run_single();
        let ratio = report.overhead_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
        prop_assert!(report.overhead_j() <= report.ledger.total_j() + 1e-9);
    }
}
