//! Property-based tests over whole simulation runs: for arbitrary small
//! scenarios, the run must satisfy the system invariants.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use peas_des::time::SimTime;
use peas_sim::{encode_report, BatterySpec, FailureConfig, Runner, ScenarioConfig, SweepSession};

fn arb_scenario() -> impl Strategy<Value = ScenarioConfig> {
    (
        10usize..60,                      // node_count
        any::<u64>(),                     // seed
        0.0f64..0.2,                      // loss rate
        prop::option::of(10.0f64..200.0), // failure rate (scaled high for short runs)
        prop::bool::ANY,                  // grab on/off
        2.0f64..10.0,                     // battery joules
    )
        .prop_map(|(n, seed, loss, failure, grab, battery)| {
            let mut c = ScenarioConfig::small().with_seed(seed);
            c.node_count = n;
            c.loss_rate = loss;
            c.failure = failure.map(|rate_per_5000s| FailureConfig { rate_per_5000s });
            if grab {
                c.grab = Some(peas_grab::GrabConfig::paper());
            }
            c.battery = BatterySpec::Fixed(battery);
            c.horizon = SimTime::from_secs(600);
            c.metrics.sample_period = peas_des::time::SimDuration::from_secs(50);
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core run invariants hold for arbitrary scenarios.
    #[test]
    fn run_invariants(config in arb_scenario()) {
        let report = Runner::new(config.clone()).run_single();
        // Samples advance in time.
        for w in report.samples.windows(2) {
            prop_assert!(w[0].t_secs < w[1].t_secs);
            // Alive count never increases; cumulative wakeups never shrink.
            prop_assert!(w[1].alive <= w[0].alive);
            prop_assert!(w[1].total_wakeups >= w[0].total_wakeups);
            // Delivery ratio stays a probability.
            if let Some(r) = w[1].delivery_ratio {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
        for s in &report.samples {
            // Coverage values are probabilities, monotone in k.
            for c in s.coverage.windows(2) {
                prop_assert!((0.0..=1.0).contains(&c[0]));
                prop_assert!(c[0] >= c[1] - 1e-12);
            }
            // Census consistency: working + sleeping <= alive <= deployed.
            prop_assert!(s.working + s.sleeping <= s.alive);
            prop_assert!(s.alive <= config.node_count);
        }
        // Energy ledger balances the batteries exactly.
        prop_assert!((report.ledger.total_j() - report.consumed_j).abs() < 1e-6);
        // Death bookkeeping: every death is a failure or a depletion, and
        // the final accounting sweep may kill nodes after the last sample.
        if let Some(last) = report.samples.last() {
            let deaths = (report.failures_injected + report.energy_deaths) as usize;
            prop_assert!(deaths >= config.node_count - last.alive);
            prop_assert!(deaths <= config.node_count);
        }
        // Deliveries never exceed generation.
        prop_assert!(report.delivered_reports <= report.generated_reports);
    }

    /// Bit-for-bit determinism for arbitrary scenarios.
    #[test]
    fn runs_are_reproducible(config in arb_scenario()) {
        let a = Runner::new(config.clone()).run_single();
        let b = Runner::new(config).run_single();
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.node_stats, b.node_stats);
        prop_assert_eq!(a.medium, b.medium);
        prop_assert_eq!(a.failures_injected, b.failures_injected);
        prop_assert_eq!(a.energy_deaths, b.energy_deaths);
        prop_assert_eq!(a.delivered_reports, b.delivered_reports);
    }

    /// The overhead ratio is always a valid fraction, and protocol
    /// overhead is consistent with its parts.
    #[test]
    fn overhead_is_a_fraction(config in arb_scenario()) {
        let report = Runner::new(config).run_single();
        let ratio = report.overhead_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
        prop_assert!(report.overhead_j() <= report.ledger.total_j() + 1e-9);
    }

    /// Journal appender/reader round-trip under arbitrary torn tails: a
    /// segment truncated at ANY byte offset inside its final record must
    /// resume — appending onto the torn segment itself — to a merged
    /// journal byte-identical to an uninterrupted run.
    #[test]
    fn torn_tail_resume_round_trips(offset_raw in any::<u64>()) {
        let p = pristine_journal();
        // Tear anywhere in the final record: keep 0..=len bytes of it
        // (0 = clean tear at the newline, len = untorn segment).
        let tail_len = p.segment.len() - p.tail_start;
        let keep = p.tail_start + (offset_raw % (tail_len as u64 + 1)) as usize;

        let dir: PathBuf = std::env::temp_dir().join(format!(
            "peas-torn-prop-{}-{keep}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create journal dir");
        std::fs::write(dir.join("worker-0.jsonl"), &p.segment[..keep]).expect("seed segment");

        let session = SweepSession::create(&dir, torn_tail_runs()).expect("open session");
        session.run_worker(0, 1, None).expect("resume");
        prop_assert_eq!(session.pending().expect("pending"), Vec::<usize>::new());
        let merged: Vec<String> = session
            .merged()
            .expect("complete")
            .iter()
            .map(encode_report)
            .collect();
        prop_assert_eq!(&merged, &p.reference, "tear at byte {} of the final record", keep - p.tail_start);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The two-shard run list behind the torn-tail property.
fn torn_tail_runs() -> Vec<(String, ScenarioConfig)> {
    let tiny = |seed: u64| {
        let mut c = ScenarioConfig::small().with_seed(seed);
        c.node_count = 25;
        c.horizon = SimTime::from_secs(300);
        c
    };
    vec![("s1".to_string(), tiny(1)), ("s2".to_string(), tiny(2))]
}

/// A pristine two-record journal segment plus the uninterrupted
/// reference reports, computed once per test process.
struct PristineJournal {
    /// The untorn `worker-0.jsonl` bytes (two complete records).
    segment: Vec<u8>,
    /// Byte offset where the final record starts (after the first `\n`).
    tail_start: usize,
    /// The uninterrupted run's reports in schema-1 serialized form.
    reference: Vec<String>,
}

fn pristine_journal() -> &'static PristineJournal {
    static PRISTINE: OnceLock<PristineJournal> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let runs = torn_tail_runs();
        let reference: Vec<String> = Runner::configs(runs.iter().map(|(_, c)| c.clone()).collect())
            .run()
            .iter()
            .map(encode_report)
            .collect();
        let dir = std::env::temp_dir().join(format!("peas-torn-pristine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = SweepSession::create(&dir, runs).expect("create session");
        session.run_worker(0, 1, None).expect("fill journal");
        let segment = std::fs::read(session.segment_path(0)).expect("read segment");
        let _ = std::fs::remove_dir_all(&dir);
        let tail_start = segment
            .iter()
            .position(|&b| b == b'\n')
            .expect("two records")
            + 1;
        PristineJournal {
            segment,
            tail_start,
            reference,
        }
    })
}
