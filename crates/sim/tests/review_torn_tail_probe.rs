//! Regression: resuming onto a segment with a torn (newline-less) tail
//! must not swallow the re-run shard's journal record.
//!
//! A worker killed mid-write leaves its segment ending in half a line
//! with no newline. The original append path reopened the segment in
//! plain append mode, so the resumed shard's record fused onto the torn
//! half-line and neither parsed — `pending()` kept reporting the shard
//! forever. `open_segment_for_append` now truncates the segment to its
//! last complete newline before the first append, which this test pins:
//! after a mid-line tear, one resume drains `pending()` and the merged
//! journal is byte-identical to an uninterrupted run.

use std::fs::OpenOptions;
use std::io::Read;
use std::path::PathBuf;

use peas_des::time::SimTime;
use peas_sim::{encode_report, Runner, ScenarioConfig, SweepSession};

fn tiny(seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::small();
    c.node_count = 25;
    c.horizon = SimTime::from_secs(300);
    c.with_seed(seed)
}

#[test]
fn resume_onto_torn_tail_of_same_segment() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("peas-review-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runs = vec![("s1".to_string(), tiny(1)), ("s2".to_string(), tiny(2))];

    // Reference: the same two shards run uninterrupted, no journal.
    let reference: Vec<String> = Runner::configs(runs.iter().map(|(_, c)| c.clone()).collect())
        .run()
        .iter()
        .map(encode_report)
        .collect();

    let session = SweepSession::create(&dir, runs.clone()).expect("create");
    // Single worker slot journals both shards into worker-0.jsonl.
    assert_eq!(session.run_worker(0, 1, None).expect("run"), 2);

    // Tear the final line mid-record, exactly like a SIGKILL mid-write:
    // keep line 1 + newline + half of line 2, NO trailing newline.
    let segment = session.segment_path(0);
    let mut text = String::new();
    OpenOptions::new()
        .read(true)
        .open(&segment)
        .expect("open")
        .read_to_string(&mut text)
        .expect("read");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    let keep = lines[0].len() + 1 + lines[1].len() / 2;
    OpenOptions::new()
        .write(true)
        .open(&segment)
        .expect("reopen")
        .set_len(keep as u64)
        .expect("truncate");

    // Resume with the SAME topology (the default for a real crash):
    // shard 1 is pending and is re-run by worker slot 0, appending to the
    // torn segment.
    let resumed = SweepSession::create(&dir, runs).expect("reopen");
    assert_eq!(resumed.pending().expect("pending"), vec![1]);
    assert_eq!(resumed.run_worker(0, 1, None).expect("resume"), 1);

    // The re-run record is visible: nothing pending, and the merged
    // journal byte-matches the uninterrupted reference.
    assert_eq!(
        resumed.pending().expect("pending after resume"),
        Vec::<usize>::new(),
        "the record appended after a torn tail must be readable"
    );
    let merged: Vec<String> = resumed
        .merged()
        .expect("complete after resume")
        .iter()
        .map(encode_report)
        .collect();
    assert_eq!(
        merged, reference,
        "resume onto a torn tail must merge byte-identical to an uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
