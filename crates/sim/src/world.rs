//! The simulated sensor network: PEAS + GRAB over the radio substrate.
//!
//! [`World`] owns every node's protocol state machine, battery and RNG
//! stream, the shared [`Medium`], the failure injector and the metric
//! samplers. It drives everything through one deterministic event loop; the
//! same [`ScenarioConfig`] (including seed) always produces the identical
//! run.
//!
//! ## Energy accounting
//!
//! Every joule is charged to a [`EnergyCause`] so Table 1's overhead ratio
//! is measured directly:
//!
//! * a node's *baseline* draw follows its mode — sleep 0.03 mW, probing or
//!   working 12 mW (idle listening); probing-mode time is PEAS overhead;
//! * transmissions charge the full 60 mW for the frame's airtime to
//!   `ProtocolTx`/`AppTx` (the baseline for that span is not double
//!   charged);
//! * receptions reattribute one frame-time of the baseline to
//!   `ProtocolRx`/`AppRx` (reception draw equals idle draw on Motes, so the
//!   total is unchanged — only the attribution moves).

use peas::{
    Action as PeasAction, Input as PeasInput, Message as PeasMessage, Mode, PeasNode,
    Timer as PeasTimer,
};
use peas_des::prelude::*;
use peas_geom::{CoverageCsr, CoverageGrid, Point};
use peas_grab::{GrabMessage, GrabRelay, GrabSink, GrabSource};
use peas_radio::{Battery, Delivery, EnergyCause, EnergyLedger, Medium, NodeId, RxInfo, TxId};

use crate::config::ScenarioConfig;
use crate::metrics::{RunReport, Sample};
use crate::trace::{DeathKind as TraceDeathKind, FrameKind, TraceEvent, TraceSink};

/// Boot-phase cost-field floods: the first working set forms within the
/// first ~30 s (λ₀ = 0.1), so the sink floods a few times early before
/// settling into the periodic `adv_period` refresh. This keeps the first
/// reports routable and the cumulative success ratio clean.
const BOOT_ADV_SECS: [u64; 3] = [10, 30, 60];
/// Carrier-sense retries before transmitting regardless.
const MAX_SEND_ATTEMPTS: u8 = 6;
/// `working_slot` sentinel: the sensor is not in the working set.
const NOT_WORKING: u32 = u32::MAX;

/// Dense index for per-mode censuses (`census[mode_rank(m)]`).
fn mode_rank(mode: Mode) -> usize {
    match mode {
        Mode::Working => 0,
        Mode::Probing => 1,
        Mode::Sleeping => 2,
        Mode::Dead => 3,
    }
}

/// Dense index for the per-sensor timer table.
fn timer_index(timer: PeasTimer) -> usize {
    match timer {
        PeasTimer::Wake => 0,
        PeasTimer::ProbeSend => 1,
        PeasTimer::ReplyWindow => 2,
        PeasTimer::ReplyBackoff => 3,
    }
}

/// The single checked `usize → u32` conversion for node indices. Node
/// ids travel as `u32` in event payloads, [`NodeId`]s and CSR rows;
/// [`ScenarioConfig::validate`] bounds `node_count` below the id space
/// (infrastructure included), so a failure here is a construction bug,
/// not a runtime condition.
fn node_u32(idx: usize) -> u32 {
    // peas-lint: allow(r1-unchecked-panic) -- ScenarioConfig::validate rejects node counts beyond the u32 id space
    u32::try_from(idx).expect("node index exceeds the u32 id space")
}

/// [`node_u32`] wrapped as a radio [`NodeId`].
fn node_id(idx: usize) -> NodeId {
    NodeId(node_u32(idx))
}

#[derive(Clone, Copy, Debug)]
enum Payload {
    Peas(PeasMessage),
    Grab(GrabMessage),
}

/// A deferred transmission parked in the [`World::send_jobs`] arena. The
/// heap entry carries only the arena handle, so the ~40-byte payload +
/// range + retry count never ride through the binary heap's sifts.
#[derive(Clone, Copy, Debug)]
struct SendJob {
    node: u32,
    payload: Payload,
    range: f64,
    attempts: u8,
}

#[derive(Clone, Copy, Debug)]
#[allow(clippy::enum_variant_names)] // SensorEvent is the domain term
enum Event {
    /// A PEAS timer fired for a sensor.
    NodeTimer { node: u32, timer: PeasTimer },
    /// Try to put a frame on the air (fresh, carrier-backoff or
    /// GRAB-delayed); the fat [`SendJob`] sits in the arena.
    SendAttempt { job: u32 },
    /// A transmission finished; resolve deliveries.
    TxDone { tx: TxId },
    /// Periodic sink cost-field flood.
    SinkAdv,
    /// Periodic source report generation.
    SourceReport,
    /// Inject one random node failure.
    Failure,
    /// A point event occurs somewhere in the field (event workload).
    SensorEvent,
    /// Periodic metrics snapshot (also the energy-death granularity).
    Sample,
}

/// Flat per-node timer slots: `3 + probe_count` [`EventId`]s per node in
/// one contiguous vector, laid out `[Wake, ReplyWindow, ReplyBackoff,
/// ProbeSend × probe_count]`. The PEAS machine keeps at most one Wake,
/// one ReplyWindow and one ReplyBackoff pending, and at most
/// `probe_count` ProbeSends per wake burst, so the slots almost never
/// overflow; the rare overlap (a stale burst still draining when a new
/// one starts) spills losslessly into a short side list. Replaces four
/// heap-allocated `Vec<EventId>`s per node — 1M nodes would have carried
/// 4M vector headers plus their allocations.
struct TimerTable {
    slots: Vec<EventId>,
    stride: usize,
    /// Overflow `(node, class, id)` entries; order is irrelevant (lazy
    /// cancellation only tombstones ids).
    spill: Vec<(u32, u8, EventId)>,
}

impl TimerTable {
    fn new(nodes: usize, probe_count: usize) -> TimerTable {
        let stride = 3 + probe_count;
        TimerTable {
            slots: vec![EventId::NONE; nodes * stride],
            stride,
            spill: Vec::new(),
        }
    }

    /// The slot range of `class` (a [`timer_index`]) within one node.
    fn class_range(&self, class: usize) -> std::ops::Range<usize> {
        match class {
            0 => 0..1,           // Wake
            2 => 1..2,           // ReplyWindow
            3 => 2..3,           // ReplyBackoff
            _ => 3..self.stride, // ProbeSend
        }
    }

    fn insert(&mut self, node: u32, class: usize, id: EventId) {
        let base = node as usize * self.stride;
        let range = self.class_range(class);
        for s in &mut self.slots[base + range.start..base + range.end] {
            if s.is_none() {
                *s = id;
                return;
            }
        }
        // peas-lint: allow(r3-unchecked-cast) -- timer classes are a fixed handful, far below u8
        self.spill.push((node, class as u8, id));
    }

    /// Clears the slot holding `id` (a timer that just fired).
    fn remove(&mut self, node: u32, class: usize, id: EventId) {
        let base = node as usize * self.stride;
        let range = self.class_range(class);
        for s in &mut self.slots[base + range.start..base + range.end] {
            if *s == id {
                *s = EventId::NONE;
                return;
            }
        }
        if let Some(pos) = self.spill.iter().position(|&(_, _, sid)| sid == id) {
            self.spill.swap_remove(pos);
        }
    }

    /// Takes every pending id of `class`, feeding each to `cancel`.
    fn cancel_class(&mut self, node: u32, class: usize, mut cancel: impl FnMut(EventId)) {
        let base = node as usize * self.stride;
        let range = self.class_range(class);
        for s in &mut self.slots[base + range.start..base + range.end] {
            if !s.is_none() {
                cancel(std::mem::replace(s, EventId::NONE));
            }
        }
        let mut i = 0;
        while i < self.spill.len() {
            let (n, c, id) = self.spill[i];
            if n == node && c as usize == class {
                cancel(id);
                self.spill.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

/// Struct-of-arrays storage for the per-sensor runtime state. One
/// parallel vector per field keeps each event handler's working set
/// dense — a timer fire touches the `alive`/`timers`/`battery` lanes
/// without dragging the whole former `SensorRt` struct (PEAS machine,
/// GRAB relay, ledger, RNG — several cache lines) through the cache.
struct NodeStore {
    peas: Vec<PeasNode>,
    /// GRAB relays: length `node_count` when the workload is enabled
    /// (the config enables it for all sensors or none), else empty.
    grab: Vec<GrabRelay>,
    battery: Vec<Battery>,
    ledger: Vec<EnergyLedger>,
    rng: Vec<SimRng>,
    alive: Vec<bool>,
    /// Start of the not-yet-accounted baseline interval.
    last_account: Vec<SimTime>,
    /// Baseline already covered by tx/rx charges up to this instant.
    baseline_paid_until: Vec<SimTime>,
    /// The node's radio is transmitting until this instant.
    tx_busy_until: Vec<SimTime>,
    /// Pending timer events for every node.
    timers: TimerTable,
}

impl NodeStore {
    fn len(&self) -> usize {
        self.peas.len()
    }

    fn grab_mut(&mut self, idx: usize) -> Option<&mut GrabRelay> {
        self.grab.get_mut(idx)
    }
}

/// The running network simulation.
///
/// # Examples
///
/// ```
/// use peas_sim::{ScenarioConfig, World};
///
/// let report = World::new(ScenarioConfig::small().with_seed(3)).run();
/// assert!(report.total_wakeups() > 0);
/// assert!(report.samples.len() > 10);
/// ```
pub struct World {
    cfg: ScenarioConfig,
    sim: Simulator<Event>,
    medium: Medium,
    positions: Vec<Point>,
    nodes: NodeStore,
    /// Fat payloads of scheduled [`Event::SendAttempt`]s. Send attempts
    /// are never cancelled, so every `alloc` is paired with exactly one
    /// `take` when the event fires.
    send_jobs: Arena<SendJob>,
    source: Option<GrabSource>,
    sink: Option<GrabSink>,
    source_idx: usize,
    sink_idx: usize,
    infra_tx_busy: [SimTime; 2],
    /// In-flight transmissions indexed by [`TxId::slot`].
    in_flight: Vec<Option<(TxId, u32, Payload)>>,
    /// Reused delivery buffer for [`Medium::complete_into`].
    deliveries_buf: Vec<Delivery>,
    coverage: CoverageGrid,
    /// Precomputed sensor→cell coverage rows: one Working transition is a
    /// pure counter walk over the node's row (exactly what rasterizing its
    /// disc would produce — the predicates are shared bitwise).
    coverage_csr: CoverageCsr,
    /// Per-sample-point working-node counts, maintained incrementally via
    /// [`CoverageCsr`] walks on Working transitions (exactly what a full
    /// rasterization of the current working set would produce).
    cov_counts: Vec<u32>,
    /// Scratch buffer for the debug-build full-rasterization cross-check.
    #[cfg(debug_assertions)]
    coverage_buf: Vec<u32>,
    /// Alive Working sensors (arbitrary order, swap-removed on exit) and
    /// their positions, maintained incrementally on mode transitions.
    working_nodes: Vec<u32>,
    working_pos: Vec<Point>,
    /// Per sensor: its index in `working_nodes`, or [`NOT_WORKING`].
    working_slot: Vec<u32>,
    /// Per sensor: `alive && mode.is_awake()`, maintained on every mode
    /// transition. The delivery hot path (~receivers × frames checks per
    /// run) reads this one flat byte instead of chasing the fat
    /// [`SensorRt`] for a mode that rarely changed.
    awake: Vec<bool>,
    /// Alive sensors per mode, indexed by [`mode_rank`].
    census: [usize; 4],
    /// Sum of every sensor's wakeup counter, maintained incrementally.
    total_wakeups: u64,
    samples: Vec<Sample>,
    failures_injected: u64,
    energy_deaths: u64,
    alive_sensors: usize,
    failure_rng: SimRng,
    misc_rng: SimRng,
    event_rng: SimRng,
    /// (events occurred, events detected, next event id).
    event_stats: (u64, u64, u64),
    /// (detector, event id) pairs launched toward the sink. Membership-only
    /// today, but kept deterministic (d1-std-hash) so a future iteration
    /// can never perturb the golden fingerprints.
    event_reports: DetSet<(u32, u64)>,
    events_delivered: u64,
    trace: Option<Box<dyn TraceSink>>,
    finished: bool,
}

impl World {
    /// Builds the network: deploys nodes, boots PEAS, schedules the
    /// workload, failure injector and samplers.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ScenarioConfig::validate`].
    pub fn new(config: ScenarioConfig) -> World {
        if let Err(e) = config.validate() {
            panic!("invalid scenario: {e}");
        }
        let seed = config.seed;
        let mut deploy_rng = SimRng::stream(seed, 1);
        let failure_rng = SimRng::stream(seed, 2);
        let misc_rng = SimRng::stream(seed, 3);
        let mut battery_rng = SimRng::stream(seed, 4);

        let mut positions =
            config
                .deployment
                .generate(config.field, config.node_count, &mut deploy_rng);
        // Infrastructure: source and sink at opposite corners (Section 5.2),
        // nudged inside the field so they sit on the medium's grid.
        let (source_idx, sink_idx) = if config.grab.is_some() {
            positions.push(Point::new(0.5, 0.5));
            positions.push(Point::new(
                config.field.width() - 0.5,
                config.field.height() - 0.5,
            ));
            (config.node_count, config.node_count + 1)
        } else {
            (usize::MAX, usize::MAX)
        };

        // The two transmission ranges the whole run will ever use: PEAS
        // control traffic and (when enabled) GRAB data traffic. Declaring
        // them lets the medium precompute per-sender decode rows.
        let mut range_classes = vec![config.peas.control_tx_range()];
        if let Some(g) = &config.grab {
            if !range_classes.contains(&g.data_range) {
                range_classes.push(g.data_range);
            }
        }
        let medium = Medium::with_range_classes(
            config.field,
            &positions,
            config.propagation.build(),
            config.bitrate_bps,
            config.loss_rate,
            &range_classes,
        );

        let mut sim = Simulator::new();
        let n = config.node_count;
        let mut nodes = NodeStore {
            peas: Vec::with_capacity(n),
            grab: Vec::with_capacity(if config.grab.is_some() { n } else { 0 }),
            battery: Vec::with_capacity(n),
            ledger: vec![EnergyLedger::new(); n],
            rng: Vec::with_capacity(n),
            alive: vec![true; n],
            last_account: vec![SimTime::ZERO; n],
            baseline_paid_until: vec![SimTime::ZERO; n],
            tx_busy_until: vec![SimTime::ZERO; n],
            timers: TimerTable::new(n, config.peas.probe_count as usize),
        };
        for i in 0..n {
            // Same per-node order as ever: battery draw, then the node's
            // own stream — RNG consumption is part of the golden contract.
            let mut peas = PeasNode::new(NodeId(node_u32(i)), config.peas.clone());
            if let Some(g) = &config.grab {
                nodes.grab.push(GrabRelay::new(g.clone()));
            }
            nodes
                .battery
                .push(Battery::new(config.battery.draw(&mut battery_rng)));
            let mut rng = SimRng::stream(seed, 100 + i as u64);
            let actions = peas.start(&mut rng);
            for action in actions {
                if let PeasAction::Schedule { timer, after } = action {
                    let id = sim.schedule_after(
                        after,
                        Event::NodeTimer {
                            node: node_u32(i),
                            timer,
                        },
                    );
                    nodes.timers.insert(node_u32(i), timer_index(timer), id);
                }
            }
            nodes.peas.push(peas);
            nodes.rng.push(rng);
        }

        let (source, sink) = match &config.grab {
            Some(grab_cfg) => {
                for &t in &BOOT_ADV_SECS {
                    sim.schedule_at(SimTime::from_secs(t), Event::SinkAdv);
                }
                sim.schedule_after(grab_cfg.report_period, Event::SourceReport);
                (
                    Some(GrabSource::new(node_id(source_idx), grab_cfg.clone())),
                    Some(GrabSink::new()),
                )
            }
            None => (None, None),
        };

        let mut census = [0usize; 4];
        let mut working_nodes = Vec::new();
        let mut working_pos = Vec::new();
        let mut working_slot = vec![NOT_WORKING; config.node_count];
        let mut awake = vec![false; config.node_count];
        for (i, peas) in nodes.peas.iter().enumerate() {
            let mode = if nodes.alive[i] {
                peas.mode()
            } else {
                Mode::Dead
            };
            census[mode_rank(mode)] += 1;
            awake[i] = nodes.alive[i] && mode.is_awake();
            if nodes.alive[i] && mode == Mode::Working {
                working_slot[i] = node_u32(working_nodes.len());
                working_nodes.push(node_u32(i));
                working_pos.push(positions[i]);
            }
        }
        let total_wakeups = nodes.peas.iter().map(|p| p.stats().wakeups).sum();

        let coverage = CoverageGrid::new(config.field, config.metrics.coverage_resolution);
        // Sensors only: the GRAB infrastructure nodes do not sense.
        let coverage_csr = CoverageCsr::build(
            &coverage,
            &positions[..config.node_count],
            config.sensing_range,
        );
        let mut cov_counts = vec![0u32; coverage.sample_count()];
        for &i in &working_nodes {
            coverage_csr.add_into(i as usize, &mut cov_counts);
        }

        let mut world = World {
            coverage,
            coverage_csr,
            cov_counts,
            awake,
            alive_sensors: config.node_count,
            sim,
            medium,
            positions,
            nodes,
            send_jobs: Arena::new(),
            working_nodes,
            working_pos,
            working_slot,
            census,
            total_wakeups,
            source,
            sink,
            source_idx,
            sink_idx,
            infra_tx_busy: [SimTime::ZERO; 2],
            in_flight: Vec::new(),
            deliveries_buf: Vec::new(),
            #[cfg(debug_assertions)]
            coverage_buf: Vec::new(),
            samples: Vec::new(),
            failures_injected: 0,
            energy_deaths: 0,
            failure_rng,
            misc_rng,
            event_rng: SimRng::stream(seed, 5),
            event_stats: (0, 0, 0),
            event_reports: DetSet::new(),
            events_delivered: 0,
            trace: None,
            finished: false,
            cfg: config,
        };
        if let Some(f) = world.cfg.failure {
            let delay = world.failure_rng.exp_duration(f.per_second());
            world.sim.schedule_after(delay, Event::Failure);
        }
        if let Some(e) = world.cfg.events {
            let delay = world.event_rng.exp_duration(e.per_second());
            world.sim.schedule_after(delay, Event::SensorEvent);
        }
        let sample_period = world.cfg.metrics.sample_period;
        world.sim.schedule_after(sample_period, Event::Sample);
        world
    }

    /// Runs the simulation until the horizon, or until every sensor died.
    pub fn run(mut self) -> RunReport {
        let horizon = self.cfg.horizon;
        self.drain_before(horizon);
        self.into_report()
    }

    /// Runs until the given instant (for incremental inspection in tests
    /// and examples); returns `true` while the network still has alive
    /// sensors and the horizon was not reached.
    pub fn run_until(&mut self, t: SimTime) -> bool {
        let stop = t.min(self.cfg.horizon);
        self.drain_before(stop);
        !self.finished && stop < self.cfg.horizon
    }

    /// The shared event loop: delivers every event before `stop` (or
    /// until `finished` flips). Each iteration is one fused probe of the
    /// queue's sorted bottom rung (`Simulator::next_before` →
    /// `EventQueue::pop_before`), so a drained batch of same-timestamp
    /// events streams straight off the rung's tail — no peek-then-pop
    /// double touch per event. Liveness is still checked per event at
    /// consumption time: a handler may cancel a later event scheduled
    /// for this same instant, so eager batch extraction would be wrong.
    fn drain_before(&mut self, stop: SimTime) {
        while let Some(fired) = self.sim.next_before(stop) {
            self.handle(fired.time, fired.id, fired.payload);
            if self.finished {
                return;
            }
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Positions of currently working sensors (for connectivity analysis).
    pub fn working_positions(&self) -> Vec<Point> {
        self.nodes
            .peas
            .iter()
            .enumerate()
            .filter(|(i, p)| self.nodes.alive[*i] && p.mode() == Mode::Working)
            .map(|(i, _)| self.positions[i])
            .collect()
    }

    /// Attaches a [`TraceSink`] receiving every mode change, death and
    /// frame transmission (see [`crate::trace`]). Replaces any previous
    /// sink. Tracing does not alter the simulation (same seed, same run).
    pub fn set_trace<S: TraceSink + 'static>(&mut self, sink: S) {
        self.trace = Some(Box::new(sink));
    }

    fn emit(&mut self, t: SimTime, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(t, &event);
        }
    }

    /// Renders the field as ASCII art, `cols` characters wide: `#` working,
    /// `.` sleeping/probing, `x` dead, `S`/`K` the GRAB source/sink. When
    /// several nodes share a character cell the most "active" one wins.
    ///
    /// # Panics
    ///
    /// Panics if `cols < 4` (too narrow for the frame).
    pub fn render_ascii(&self, cols: usize) -> String {
        assert!(cols >= 4, "need at least 4 columns");
        let aspect = self.cfg.field.height() / self.cfg.field.width();
        // Terminal cells are ~2x taller than wide.
        let rows = ((cols as f64 * aspect) / 2.0).ceil().max(1.0) as usize;
        let mut canvas = vec![vec![' '; cols]; rows];
        let put = |canvas: &mut Vec<Vec<char>>, p: Point, ch: char, rank: u8| {
            let cx = ((p.x / self.cfg.field.width()) * cols as f64) as usize;
            let cy = ((p.y / self.cfg.field.height()) * rows as f64) as usize;
            let (cx, cy) = (cx.min(cols - 1), cy.min(rows - 1));
            let current = canvas[cy][cx];
            let current_rank = match current {
                'S' | 'K' => 4,
                '#' => 3,
                '.' => 2,
                'x' => 1,
                _ => 0,
            };
            if rank > current_rank {
                canvas[cy][cx] = ch;
            }
        };
        for (i, peas) in self.nodes.peas.iter().enumerate() {
            let p = self.positions[i];
            let (ch, rank) = match (self.nodes.alive[i], peas.mode()) {
                (true, Mode::Working) => ('#', 3),
                (true, _) => ('.', 2),
                (false, _) => ('x', 1),
            };
            put(&mut canvas, p, ch, rank);
        }
        if self.source_idx != usize::MAX {
            put(&mut canvas, self.positions[self.source_idx], 'S', 4);
            put(&mut canvas, self.positions[self.sink_idx], 'K', 4);
        }
        let mut out = String::with_capacity((cols + 3) * (rows + 2));
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        for row in canvas {
            out.push('|');
            out.extend(row);
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        out
    }

    /// Probing rates λ of alive sleeping sensors (diagnostics).
    pub fn sleeper_rates(&self) -> Vec<f64> {
        self.nodes
            .peas
            .iter()
            .zip(&self.nodes.alive)
            .filter(|(p, &alive)| alive && p.mode() == Mode::Sleeping)
            .map(|(p, _)| p.rate())
            .collect()
    }

    /// Current reported estimates λ̂ of alive working sensors (diagnostics):
    /// what a REPLY sent right now would carry.
    pub fn worker_estimates(&self) -> Vec<Option<f64>> {
        let now = self.sim.now();
        let min_elapsed =
            peas_des::time::SimDuration::from_secs_f64(1.0 / self.cfg.peas.desired_rate);
        self.nodes
            .peas
            .iter()
            .zip(&self.nodes.alive)
            .filter(|(p, &alive)| alive && p.mode() == Mode::Working)
            .map(|(p, _)| {
                p.estimator()
                    .current_estimate(now, min_elapsed)
                    .map(|m| m.per_second())
            })
            .collect()
    }

    /// Aggregated GRAB relay counters:
    /// (forwarded, dropped_budget, dropped_gradient, duplicates).
    pub fn grab_relay_totals(&self) -> (u64, u64, u64, u64) {
        let mut totals = (0, 0, 0, 0);
        for g in &self.nodes.grab {
            totals.0 += g.forwarded();
            totals.1 += g.dropped_budget();
            totals.2 += g.dropped_gradient();
            totals.3 += g.duplicates();
        }
        totals
    }

    /// Bytes of precomputed static-topology tables: the medium's per-class
    /// decode rows plus the coverage CSR. These are the O(n · degree)
    /// structures the memory budget at 10⁵–10⁶ nodes is dominated by (see
    /// DESIGN.md's memory model); the scale bench reports this next to
    /// peak RSS.
    pub fn topology_memory_bytes(&self) -> usize {
        self.medium.table_memory_bytes() + self.coverage_csr.memory_bytes()
    }

    /// Largest number of simultaneously pending events the event queue
    /// ever held (tombstones excluded). The scale bench reports this per
    /// tier: pending depth — roughly one timer per probing/working node
    /// plus in-flight frames — is what sizes the queue's working set.
    pub fn queue_high_water(&self) -> usize {
        self.sim.queue_high_water()
    }

    /// Approximate heap bytes currently held by the pending-event queue
    /// (ladder rungs/bottom/top plus the pending bitvector; see
    /// DESIGN.md §8).
    pub fn queue_memory_bytes(&self) -> usize {
        self.sim.queue_memory_bytes()
    }

    /// Current mode census: (working, probing, sleeping, dead).
    pub fn mode_census(&self) -> (usize, usize, usize, usize) {
        let mut census = (0, 0, 0, 0);
        for (peas, &alive) in self.nodes.peas.iter().zip(&self.nodes.alive) {
            match (alive, peas.mode()) {
                (true, Mode::Working) => census.0 += 1,
                (true, Mode::Probing) => census.1 += 1,
                (true, Mode::Sleeping) => census.2 += 1,
                _ => census.3 += 1,
            }
        }
        census
    }

    /// Builds the final report (consumes the world).
    pub fn into_report(mut self) -> RunReport {
        let now = self.sim.now();
        for i in 0..self.nodes.len() {
            self.account(i, now);
        }
        let mut node_stats = peas::NodeStats::default();
        let mut ledger = EnergyLedger::new();
        let mut consumed = 0.0;
        for i in 0..self.nodes.len() {
            node_stats.merge(self.nodes.peas[i].stats());
            ledger.merge(&self.nodes.ledger[i]);
            consumed += self.nodes.battery[i].consumed_j();
        }
        RunReport {
            node_count: self.cfg.node_count,
            seed: self.cfg.seed,
            samples: self.samples,
            node_stats,
            ledger,
            consumed_j: consumed,
            medium: self.medium.stats(),
            failures_injected: self.failures_injected,
            energy_deaths: self.energy_deaths,
            generated_reports: self.source.as_ref().map_or(0, |s| s.generated()),
            delivered_reports: self
                .sink
                .as_ref()
                .map_or(0, |s| s.delivered_count())
                .saturating_sub(self.events_delivered),
            events_total: self.event_stats.0,
            events_detected: self.event_stats.1,
            events_delivered: self.events_delivered,
            end_secs: now.as_secs_f64(),
            events_processed: self.sim.processed(),
        }
    }

    fn handle(&mut self, now: SimTime, fired_id: EventId, event: Event) {
        match event {
            Event::NodeTimer { node, timer } => self.on_node_timer(now, fired_id, node, timer),
            Event::SendAttempt { job } => {
                let SendJob {
                    node,
                    payload,
                    range,
                    attempts,
                } = self.send_jobs.take(job);
                self.try_send(now, node as usize, payload, range, attempts);
            }
            Event::TxDone { tx } => self.on_tx_done(now, tx),
            Event::SinkAdv => self.on_sink_adv(now),
            Event::SourceReport => self.on_source_report(now),
            Event::Failure => self.on_failure(now),
            Event::SensorEvent => self.on_sensor_event(now),
            Event::Sample => self.on_sample(now),
        }
    }

    fn on_node_timer(&mut self, now: SimTime, fired_id: EventId, node: u32, timer: PeasTimer) {
        let idx = node as usize;
        self.nodes.timers.remove(node, timer_index(timer), fired_id);
        if !self.nodes.alive[idx] {
            return;
        }
        self.account(idx, now);
        if !self.nodes.alive[idx] {
            return; // accounting depleted the battery
        }
        let input = match timer {
            PeasTimer::Wake => PeasInput::WakeUp,
            PeasTimer::ProbeSend => PeasInput::ProbeSendTimer,
            PeasTimer::ReplyWindow => PeasInput::ReplyWindowClosed,
            PeasTimer::ReplyBackoff => PeasInput::ReplyBackoff,
        };
        self.drive_peas(now, idx, input);
    }

    /// Feeds one input to a sensor's PEAS machine and applies the actions,
    /// keeping the GRAB relay in sync with Working-mode membership.
    fn drive_peas(&mut self, now: SimTime, idx: usize, input: PeasInput) {
        let mode_before = self.nodes.peas[idx].mode();
        let was_working = mode_before == Mode::Working;
        let wakeups_before = self.nodes.peas[idx].stats().wakeups;
        // Split borrows: the PEAS machines and RNG streams are separate lanes.
        let actions = self.nodes.peas[idx].on_input(now, input, &mut self.nodes.rng[idx]);
        self.total_wakeups += self.nodes.peas[idx].stats().wakeups - wakeups_before;
        let mode_after = self.nodes.peas[idx].mode();
        if mode_after != mode_before {
            self.on_mode_transition(idx, mode_before, mode_after);
            self.emit(
                now,
                TraceEvent::ModeChange {
                    node: node_u32(idx),
                    from: mode_before,
                    to: mode_after,
                },
            );
        }
        let is_working = mode_after == Mode::Working;
        if was_working && !is_working {
            // Turned off (Section 4 rule): drop GRAB state; the node will
            // re-learn its cost on the next epoch if it works again.
            if let Some(grab) = self.nodes.grab_mut(idx) {
                grab.reset();
            }
        }
        self.apply_peas_actions(now, idx, actions);
    }

    fn apply_peas_actions(&mut self, now: SimTime, idx: usize, actions: Vec<PeasAction>) {
        for action in actions {
            match action {
                PeasAction::Schedule { timer, after } => {
                    let id = self.sim.schedule_at(
                        now + after,
                        Event::NodeTimer {
                            node: node_u32(idx),
                            timer,
                        },
                    );
                    self.nodes
                        .timers
                        .insert(node_u32(idx), timer_index(timer), id);
                }
                PeasAction::Cancel(timer) => {
                    let sim = &mut self.sim;
                    self.nodes
                        .timers
                        .cancel_class(node_u32(idx), timer_index(timer), |id| {
                            sim.cancel(id);
                        });
                }
                PeasAction::Broadcast { msg, range } => {
                    self.try_send(now, idx, Payload::Peas(msg), range, 0);
                }
            }
        }
    }

    fn payload_size(&self, payload: &Payload) -> usize {
        match payload {
            Payload::Peas(msg) => msg.size_bytes(),
            Payload::Grab(GrabMessage::Adv { .. }) => {
                self.cfg.grab.as_ref().map_or(25, |g| g.adv_bytes)
            }
            Payload::Grab(GrabMessage::Report(_)) => {
                self.cfg.grab.as_ref().map_or(50, |g| g.report_bytes)
            }
        }
    }

    fn tx_busy_until(&self, idx: usize) -> SimTime {
        if idx == self.source_idx {
            self.infra_tx_busy[0]
        } else if idx == self.sink_idx {
            self.infra_tx_busy[1]
        } else {
            self.nodes.tx_busy_until[idx]
        }
    }

    /// Parks the fat payload in the arena and schedules the attempt.
    fn schedule_send(
        &mut self,
        at: SimTime,
        idx: usize,
        payload: Payload,
        range: f64,
        attempts: u8,
    ) {
        let job = self.send_jobs.alloc(SendJob {
            node: node_u32(idx),
            payload,
            range,
            attempts,
        });
        self.sim.schedule_at(at, Event::SendAttempt { job });
    }

    fn try_send(&mut self, now: SimTime, idx: usize, payload: Payload, range: f64, attempts: u8) {
        let is_infra = idx == self.source_idx || idx == self.sink_idx;
        if !is_infra {
            if !self.awake[idx] {
                return; // node died or went to sleep since scheduling
            }
            // A relay that stopped working must not forward stale GRAB frames.
            if matches!(payload, Payload::Grab(_)) && self.nodes.peas[idx].mode() != Mode::Working {
                return;
            }
        }
        // Radio is half-duplex: wait out our own transmission.
        let busy_until = self.tx_busy_until(idx);
        if now < busy_until {
            if attempts < MAX_SEND_ATTEMPTS {
                let jitter = self
                    .misc_rng
                    .range_duration(SimDuration::from_micros(100), SimDuration::from_millis(2));
                self.schedule_send(busy_until + jitter, idx, payload, range, attempts + 1);
            }
            return;
        }
        // CSMA-lite: back off while the channel is audibly busy, but after
        // MAX attempts transmit anyway (persistence beats starvation).
        if attempts < MAX_SEND_ATTEMPTS && self.medium.carrier_busy(node_id(idx), now) {
            let backoff = self
                .misc_rng
                .range_duration(SimDuration::from_millis(1), SimDuration::from_millis(12));
            self.schedule_send(now + backoff, idx, payload, range, attempts + 1);
            return;
        }

        let size = self.payload_size(&payload);
        let frame_kind = match payload {
            Payload::Peas(PeasMessage::Probe) => FrameKind::Probe,
            Payload::Peas(PeasMessage::Reply(_)) => FrameKind::Reply,
            Payload::Grab(GrabMessage::Adv { .. }) => FrameKind::Adv,
            Payload::Grab(GrabMessage::Report(_)) => FrameKind::Report,
        };
        self.emit(
            now,
            TraceEvent::FrameSent {
                node: node_u32(idx),
                kind: frame_kind,
                range,
            },
        );
        let tx = self
            .medium
            .start_broadcast(now, node_id(idx), range, size, &mut self.misc_rng);
        if is_infra {
            let slot = if idx == self.source_idx { 0 } else { 1 };
            self.infra_tx_busy[slot] = tx.end;
        } else {
            self.account(idx, now);
            let cause = match payload {
                Payload::Peas(_) => EnergyCause::ProtocolTx,
                Payload::Grab(_) => EnergyCause::AppTx,
            };
            if self.nodes.alive[idx] {
                let alive = self.nodes.battery[idx].drain_timed(
                    self.cfg.power.tx_mw,
                    tx.airtime,
                    cause,
                    &mut self.nodes.ledger[idx],
                );
                self.nodes.baseline_paid_until[idx] = tx.end;
                self.nodes.tx_busy_until[idx] = tx.end;
                if !alive {
                    self.kill(now, idx, DeathCause::Energy);
                }
            }
        }
        let slot = tx.id.slot();
        if slot >= self.in_flight.len() {
            self.in_flight.resize(slot + 1, None);
        }
        self.in_flight[slot] = Some((tx.id, node_u32(idx), payload));
        self.sim.schedule_at(tx.end, Event::TxDone { tx: tx.id });
    }

    fn on_tx_done(&mut self, now: SimTime, tx: TxId) {
        let (id, sender, payload) = self.in_flight[tx.slot()]
            .take()
            // peas-lint: allow(r1-unchecked-panic) -- every TxDone is scheduled by try_send right after filling this slot
            .expect("TxDone for unknown transmission");
        assert_eq!(id, tx, "TxDone for unknown transmission");
        let mut deliveries = std::mem::take(&mut self.deliveries_buf);
        self.medium.complete_into(tx, &mut deliveries);
        for d in &deliveries {
            if d.is_ok() {
                self.dispatch_rx(now, d.receiver.index(), sender, payload, d.info);
            }
        }
        self.deliveries_buf = deliveries;
    }

    fn dispatch_rx(
        &mut self,
        now: SimTime,
        rx: usize,
        sender: u32,
        payload: Payload,
        info: RxInfo,
    ) {
        if rx == self.sink_idx {
            if let Payload::Grab(GrabMessage::Report(report)) = payload {
                if let Some(sink) = self.sink.as_mut() {
                    let fresh = sink.on_report(report);
                    if fresh && self.event_reports.contains(&(report.source.0, report.seq)) {
                        self.events_delivered += 1;
                    }
                }
            }
            return;
        }
        if rx == self.source_idx {
            if let Payload::Grab(GrabMessage::Adv { epoch, cost }) = payload {
                if let Some(source) = self.source.as_mut() {
                    source.on_adv(epoch, cost);
                }
            }
            return;
        }
        if !self.awake[rx] {
            return; // radio powered down; the frame fell on deaf ears
        }
        self.account(rx, now);
        if !self.nodes.alive[rx] {
            return;
        }
        // Reattribute one frame-time of baseline as reception energy.
        let airtime = peas_radio::airtime(self.payload_size(&payload), self.cfg.bitrate_bps);
        let rx_cause = match payload {
            Payload::Peas(_) => EnergyCause::ProtocolRx,
            Payload::Grab(_) => EnergyCause::AppRx,
        };
        {
            let alive = self.nodes.battery[rx].drain_timed(
                self.cfg.power.rx_mw,
                airtime,
                rx_cause,
                &mut self.nodes.ledger[rx],
            );
            let paid = now + airtime;
            if paid > self.nodes.baseline_paid_until[rx] {
                self.nodes.baseline_paid_until[rx] = paid;
            }
            if !alive {
                self.kill(now, rx, DeathCause::Energy);
                return;
            }
        }
        match payload {
            Payload::Peas(msg) => {
                self.drive_peas(
                    now,
                    rx,
                    PeasInput::Frame {
                        from: NodeId(sender),
                        msg,
                        info,
                    },
                );
            }
            Payload::Grab(gmsg) => {
                if self.nodes.peas[rx].mode() != Mode::Working {
                    return; // only working nodes relay data
                }
                let outgoing = {
                    // Split borrows: relays and RNG streams are separate lanes.
                    let rng = &mut self.nodes.rng[rx];
                    let Some(relay) = self.nodes.grab.get_mut(rx) else {
                        return;
                    };
                    match gmsg {
                        GrabMessage::Adv { epoch, cost } => relay.on_adv(epoch, cost, rng),
                        GrabMessage::Report(report) => relay.on_report(report, rng),
                    }
                };
                if let Some(out) = outgoing {
                    // peas-lint: allow(r1-unchecked-panic) -- relays only exist when cfg.grab was set at build
                    let range = self.cfg.grab.as_ref().expect("grab enabled").data_range;
                    self.schedule_send(now + out.delay, rx, Payload::Grab(out.msg), range, 0);
                }
            }
        }
    }

    fn on_sink_adv(&mut self, now: SimTime) {
        let Some(grab_cfg) = self.cfg.grab.clone() else {
            return;
        };
        // peas-lint: allow(r1-unchecked-panic) -- sink is constructed with the world whenever cfg.grab is set
        let msg = self.sink.as_mut().expect("sink exists").next_adv();
        self.try_send(
            now,
            self.sink_idx,
            Payload::Grab(msg),
            grab_cfg.data_range,
            0,
        );
        // Chain the periodic refresh only from the last boot flood, so the
        // boot burst doesn't multiply into parallel flood chains.
        if now >= SimTime::from_secs(BOOT_ADV_SECS[BOOT_ADV_SECS.len() - 1]) {
            self.sim
                .schedule_at(now + grab_cfg.adv_period, Event::SinkAdv);
        }
    }

    fn on_source_report(&mut self, now: SimTime) {
        let Some(grab_cfg) = self.cfg.grab.clone() else {
            return;
        };
        // peas-lint: allow(r1-unchecked-panic) -- source is constructed with the world whenever cfg.grab is set
        let report = self.source.as_mut().expect("source exists").generate();
        if let Some(r) = report {
            self.try_send(
                now,
                self.source_idx,
                Payload::Grab(GrabMessage::Report(r)),
                grab_cfg.data_range,
                0,
            );
        }
        self.sim
            .schedule_at(now + grab_cfg.report_period, Event::SourceReport);
    }

    fn on_failure(&mut self, now: SimTime) {
        let Some(f) = self.cfg.failure else { return };
        if self.alive_sensors > 0 {
            // Uniform among alive sensors (failures strike any mode —
            // Section 5.2: "failures are deaths not incurred by energy
            // depletions"): pick the k-th alive sensor in index order.
            let k = self.failure_rng.index(self.alive_sensors);
            let victim = (0..self.nodes.len())
                .filter(|&i| self.nodes.alive[i])
                .nth(k)
                // peas-lint: allow(r1-unchecked-panic) -- alive_sensors is updated on every death; k < alive_sensors by construction
                .expect("alive_sensors count out of sync");
            self.account(victim, now);
            if self.nodes.alive[victim] {
                self.kill(now, victim, DeathCause::Failure);
            }
        }
        let delay = self.failure_rng.exp_duration(f.per_second());
        self.sim.schedule_after(delay, Event::Failure);
    }

    /// One point event: the closest working sensor with the event in
    /// sensing range detects it and launches a GRAB report toward the sink.
    fn on_sensor_event(&mut self, now: SimTime) {
        let Some(e) = self.cfg.events else { return };
        let pos = Point::new(
            self.event_rng.range_f64(0.0, self.cfg.field.width()),
            self.event_rng.range_f64(0.0, self.cfg.field.height()),
        );
        self.event_stats.0 += 1;
        let event_id = self.event_stats.2;
        self.event_stats.2 += 1;

        let detector = self
            .working_nodes
            .iter()
            .map(|&i| (i as usize, self.positions[i as usize].distance_squared(pos)))
            .filter(|&(_, d2)| d2 <= self.cfg.sensing_range * self.cfg.sensing_range)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
        if let Some(det) = detector {
            self.event_stats.1 += 1;
            // The detector needs a route; a relay without a cost cannot
            // send toward the sink (detected but unreportable).
            let cost = self.nodes.grab.get(det).and_then(|g| g.cost());
            if let (Some(cost), Some(grab_cfg)) = (cost, self.cfg.grab.clone()) {
                let report = peas_grab::Report {
                    source: node_id(det),
                    seq: event_id,
                    sender_cost: cost,
                    hops: 1,
                    budget: grab_cfg.hop_budget(cost),
                };
                self.event_reports.insert((node_u32(det), event_id));
                self.try_send(
                    now,
                    det,
                    Payload::Grab(GrabMessage::Report(report)),
                    grab_cfg.data_range,
                    0,
                );
            }
        }
        let delay = self.event_rng.exp_duration(e.per_second());
        self.sim.schedule_after(delay, Event::SensorEvent);
    }

    fn on_sample(&mut self, now: SimTime) {
        // Account everyone first: this is also where idle working nodes
        // discover their battery ran out.
        for i in 0..self.nodes.len() {
            if self.nodes.alive[i] {
                self.account(i, now);
            }
        }
        debug_assert_eq!(
            (
                self.working_nodes.len(),
                self.census[1],
                self.census[2],
                self.census[3]
            ),
            self.mode_census(),
            "incremental census out of sync with a full scan"
        );
        debug_assert_eq!(
            self.total_wakeups,
            self.nodes
                .peas
                .iter()
                .map(|p| p.stats().wakeups)
                .sum::<u64>(),
            "incremental wakeup total out of sync"
        );
        debug_assert!(
            self.nodes
                .peas
                .iter()
                .zip(&self.nodes.alive)
                .zip(&self.awake)
                .all(|((p, &alive), &w)| w == (alive && p.mode().is_awake())),
            "awake bitmap out of sync with sensor modes"
        );
        #[cfg(debug_assertions)]
        {
            let mut fresh = std::mem::take(&mut self.coverage_buf);
            self.coverage.coverage_counts_into(
                &self.working_pos,
                self.cfg.sensing_range,
                &mut fresh,
            );
            debug_assert_eq!(
                fresh, self.cov_counts,
                "incremental coverage counts out of sync with a full rasterization"
            );
            self.coverage_buf = fresh;
        }
        let coverage = self
            .coverage
            .k_coverages_from_counts(&self.cov_counts, self.cfg.metrics.max_k);
        let delivery_ratio = match (&self.source, &self.sink) {
            (Some(src), Some(snk)) if src.generated() > 0 => {
                Some(snk.delivered_count() as f64 / src.generated() as f64)
            }
            _ => None,
        };
        self.samples.push(Sample {
            t_secs: now.as_secs_f64(),
            coverage,
            working: self.working_nodes.len(),
            sleeping: self.census[mode_rank(Mode::Sleeping)],
            alive: self.alive_sensors,
            delivery_ratio,
            total_wakeups: self.total_wakeups,
        });
        if self.alive_sensors == 0 {
            self.finished = true;
            return;
        }
        self.sim
            .schedule_at(now + self.cfg.metrics.sample_period, Event::Sample);
    }

    /// Charges the baseline power for the interval since the node was last
    /// accounted, in its *current* mode. Call before any mode change.
    fn account(&mut self, idx: usize, now: SimTime) {
        let power = self.cfg.power;
        if !self.nodes.alive[idx] {
            self.nodes.last_account[idx] = now;
            return;
        }
        let start = self.nodes.last_account[idx];
        self.nodes.last_account[idx] = now;
        if now <= start {
            return;
        }
        let chargeable_from = start.max(self.nodes.baseline_paid_until[idx]);
        let dur = now.saturating_since(chargeable_from);
        if dur.is_zero() {
            return;
        }
        let (mw, cause) = match self.nodes.peas[idx].mode() {
            Mode::Sleeping => (power.sleep_mw, EnergyCause::Sleep),
            Mode::Probing => (power.idle_mw, EnergyCause::ProtocolIdle),
            Mode::Working => (power.idle_mw, EnergyCause::WorkingIdle),
            Mode::Dead => return,
        };
        let alive =
            self.nodes.battery[idx].drain_timed(mw, dur, cause, &mut self.nodes.ledger[idx]);
        if !alive {
            self.kill(now, idx, DeathCause::Energy);
        }
    }

    /// Keeps the incremental working set and mode census in step with one
    /// sensor's `from -> to` transition (only these two sites change a
    /// sensor's mode: [`World::drive_peas`] and [`World::kill`]).
    fn on_mode_transition(&mut self, idx: usize, from: Mode, to: Mode) {
        if from == to {
            return;
        }
        self.census[mode_rank(from)] -= 1;
        self.census[mode_rank(to)] += 1;
        self.awake[idx] = to.is_awake();
        if from == Mode::Working {
            let slot = self.working_slot[idx] as usize;
            self.working_nodes.swap_remove(slot);
            self.working_pos.swap_remove(slot);
            self.working_slot[idx] = NOT_WORKING;
            if slot < self.working_nodes.len() {
                let moved = self.working_nodes[slot] as usize;
                self.working_slot[moved] = node_u32(slot);
            }
            self.coverage_csr.remove_into(idx, &mut self.cov_counts);
        }
        if to == Mode::Working {
            self.working_slot[idx] = node_u32(self.working_nodes.len());
            self.working_nodes.push(node_u32(idx));
            self.working_pos.push(self.positions[idx]);
            self.coverage_csr.add_into(idx, &mut self.cov_counts);
        }
    }

    fn kill(&mut self, now: SimTime, idx: usize, cause: DeathCause) {
        if !self.nodes.alive[idx] {
            return;
        }
        let mode = self.nodes.peas[idx].mode();
        self.on_mode_transition(idx, mode, Mode::Dead);
        self.emit(
            now,
            TraceEvent::Death {
                node: node_u32(idx),
                cause: match cause {
                    DeathCause::Failure => TraceDeathKind::Failure,
                    DeathCause::Energy => TraceDeathKind::Energy,
                },
            },
        );
        self.nodes.alive[idx] = false;
        self.alive_sensors -= 1;
        match cause {
            DeathCause::Failure => self.failures_injected += 1,
            DeathCause::Energy => self.energy_deaths += 1,
        }
        self.nodes.peas[idx].kill();
        let sim = &mut self.sim;
        for class in 0..4 {
            self.nodes.timers.cancel_class(node_u32(idx), class, |id| {
                sim.cancel(id);
            });
        }
        if let Some(grab) = self.nodes.grab_mut(idx) {
            grab.reset();
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeathCause {
    Failure,
    Energy,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatterySpec, ScenarioConfig};

    fn quick_config(n: usize, seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::small().with_seed(seed);
        c.node_count = n;
        c
    }

    #[test]
    fn working_set_forms_during_boot() {
        let mut world = World::new(quick_config(60, 1));
        world.run_until(SimTime::from_secs(120));
        let (working, _probing, sleeping, dead) = world.mode_census();
        assert!(working > 5, "expected a working set, got {working}");
        assert!(sleeping > 10, "most nodes should sleep, got {sleeping}");
        assert_eq!(dead, 0, "nobody should die during boot");
    }

    #[test]
    fn working_set_is_mostly_rp_separated() {
        // The probing rule plus the Section 4 turn-off rule keep working
        // nodes roughly Rp apart. Collisions and simultaneous probes into
        // freshly opened gaps continually manufacture redundant workers
        // (the paper acknowledges this); the turn-off rule cycles them
        // back to sleep, so the *average* paired fraction stays bounded.
        let mut world = World::new(quick_config(80, 7));
        let rp = world.cfg.peas.probing_range;
        let mut paired_total = 0usize;
        let mut workers_total = 0usize;
        for t in [600u64, 1200, 1800, 2400, 3000] {
            world.run_until(SimTime::from_secs(t));
            let working = world.working_positions();
            let mut paired: std::collections::HashSet<usize> = std::collections::HashSet::new();
            for i in 0..working.len() {
                for j in (i + 1)..working.len() {
                    if working[i].distance(working[j]) < rp {
                        paired.insert(i);
                        paired.insert(j);
                    }
                }
            }
            paired_total += paired.len();
            workers_total += working.len();
        }
        assert!(
            paired_total * 2 <= workers_total,
            "{paired_total} paired worker observations out of {workers_total}"
        );
        // And the turn-off machinery must actually be cycling them out.
        let report = world.into_report();
        assert!(report.node_stats.turnoffs > 0, "turn-off rule never fired");
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = quick_config(40, seed);
            c.horizon = SimTime::from_secs(600);
            World::new(c).run()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.total_wakeups(), b.total_wakeups());
        assert_eq!(a.medium, b.medium);
        assert_eq!(a.samples.len(), b.samples.len());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa, sb);
        }
        let c = run(6);
        assert_ne!(a.total_wakeups(), c.total_wakeups());
    }

    #[test]
    fn coverage_rises_then_collapses_when_batteries_die() {
        let mut c = quick_config(50, 3);
        c.battery = BatterySpec::Fixed(6.0); // ~500 s of working time
        c.horizon = SimTime::from_secs(4_000);
        let report = World::new(c).run();
        let cov1 = report.coverage_series(1);
        let peak = cov1.max_value().unwrap();
        assert!(peak > 0.9, "peak 1-coverage {peak}");
        let (_, final_cov) = cov1.last().unwrap();
        assert!(final_cov < 0.5, "coverage should collapse, got {final_cov}");
        assert!(report.energy_deaths > 0);
    }

    #[test]
    fn failures_are_injected_at_the_configured_rate() {
        let mut c = quick_config(80, 9);
        // Very aggressive: ~40 failures per 1000 s.
        c.failure = Some(crate::config::FailureConfig {
            rate_per_5000s: 200.0,
        });
        c.horizon = SimTime::from_secs(1_000);
        let report = World::new(c).run();
        assert!(
            (20..=60).contains(&(report.failures_injected as usize)),
            "failures {}",
            report.failures_injected
        );
    }

    #[test]
    fn energy_ledger_matches_battery_consumption() {
        let mut c = quick_config(30, 11);
        c.horizon = SimTime::from_secs(500);
        let report = World::new(c).run();
        assert!(
            (report.ledger.total_j() - report.consumed_j).abs() < 1e-6,
            "ledger {} vs battery {}",
            report.ledger.total_j(),
            report.consumed_j
        );
        assert!(report.ledger.total_j() > 0.0);
    }

    #[test]
    fn overhead_ratio_is_small() {
        let mut c = quick_config(60, 13);
        c.horizon = SimTime::from_secs(1_500);
        let report = World::new(c).run();
        let ratio = report.overhead_ratio();
        assert!(
            ratio < 0.05,
            "PEAS overhead should be tiny, got {:.4}",
            ratio
        );
        assert!(report.overhead_j() > 0.0, "probing must cost something");
    }

    #[test]
    fn grab_delivers_reports_end_to_end() {
        let mut c = ScenarioConfig::paper(200).with_seed(17);
        c.failure = None;
        c.horizon = SimTime::from_secs(900);
        let report = World::new(c).run();
        assert!(
            report.generated_reports >= 80,
            "{}",
            report.generated_reports
        );
        let ratio = report.final_delivery_ratio().unwrap();
        assert!(
            ratio > 0.8,
            "delivery ratio {ratio} ({} of {})",
            report.delivered_reports,
            report.generated_reports
        );
    }

    #[test]
    fn wakeups_accumulate_over_time() {
        let mut c = quick_config(50, 19);
        c.horizon = SimTime::from_secs(400);
        let short = World::new(c.clone()).run();
        c.horizon = SimTime::from_secs(1_600);
        let long = World::new(c).run();
        assert!(long.total_wakeups() > short.total_wakeups());
    }

    #[test]
    fn ascii_rendering_shows_the_field() {
        let mut c = ScenarioConfig::paper(80).with_seed(2);
        c.horizon = SimTime::from_secs(200);
        let mut world = World::new(c);
        world.run_until(SimTime::from_secs(100));
        let art = world.render_ascii(40);
        assert!(art.contains('#'), "no working nodes drawn:\n{art}");
        assert!(art.contains('.'), "no sleeping nodes drawn:\n{art}");
        assert!(
            art.contains('S') && art.contains('K'),
            "infra missing:\n{art}"
        );
        // Framed: first and last lines are borders of the right width.
        let first = art.lines().next().unwrap();
        assert_eq!(first.len(), 42);
        assert!(first.starts_with('+') && first.ends_with('+'));
    }

    #[test]
    fn event_workload_counts_are_consistent() {
        let mut c = ScenarioConfig::paper(200).with_seed(8);
        c.failure = None;
        c.events = Some(crate::config::EventWorkload {
            rate_per_100s: 40.0,
        });
        c.horizon = SimTime::from_secs(800);
        let report = World::new(c).run();
        assert!(report.events_total > 100, "{}", report.events_total);
        assert!(report.events_detected <= report.events_total);
        assert!(report.events_delivered <= report.events_detected);
        // A healthy 200-node network sees and reports nearly everything.
        assert!(report.event_detection_ratio().unwrap() > 0.9);
        assert!(report.event_delivery_ratio().unwrap() > 0.7);
    }

    #[test]
    fn diagnostics_expose_rates_and_estimates() {
        let mut c = quick_config(60, 4);
        c.horizon = SimTime::from_secs(600);
        let mut world = World::new(c);
        world.run_until(SimTime::from_secs(500));
        let sleepers = world.sleeper_rates();
        assert!(!sleepers.is_empty());
        assert!(sleepers.iter().all(|&r| r > 0.0 && r.is_finite()));
        let estimates = world.worker_estimates();
        assert!(!estimates.is_empty());
        for e in estimates.into_iter().flatten() {
            assert!(e > 0.0 && e.is_finite());
        }
    }

    #[test]
    fn tracing_observes_the_protocol_without_perturbing_it() {
        use crate::trace::TraceCounts;
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut c = quick_config(50, 6);
        c.horizon = SimTime::from_secs(500);
        // Baseline run, untraced.
        let untraced = World::new(c.clone()).run();

        let counts = Rc::new(RefCell::new(TraceCounts::default()));
        let sink_counts = Rc::clone(&counts);
        let first_changes: Rc<RefCell<std::collections::HashMap<u32, (Mode, Mode)>>> =
            Rc::new(RefCell::new(std::collections::HashMap::new()));
        let sink_changes = Rc::clone(&first_changes);
        let mut world = World::new(c);
        world.set_trace(move |t: SimTime, e: &TraceEvent| {
            sink_counts.borrow_mut().record(t, e);
            if let TraceEvent::ModeChange { node, from, to } = *e {
                sink_changes.borrow_mut().entry(node).or_insert((from, to));
            }
        });
        let traced = world.run();

        // Tracing must not change the run.
        assert_eq!(traced.samples, untraced.samples);
        assert_eq!(traced.medium, untraced.medium);

        let counts = counts.borrow();
        // Every frame the medium saw was announced to the sink.
        assert_eq!(counts.frames.iter().sum::<u64>(), traced.medium.frames_sent);
        // Probes dominate replies in a boot phase.
        assert!(counts.frames[0] > 0 && counts.frames[1] > 0);
        assert!(counts.mode_changes > 0);
        // Every node's first transition leaves Sleeping for Probing.
        for (&node, &(from, to)) in first_changes.borrow().iter() {
            assert_eq!(from, Mode::Sleeping, "node {node}");
            assert_eq!(to, Mode::Probing, "node {node}");
        }
    }

    #[test]
    fn all_dead_network_stops_early() {
        let mut c = quick_config(10, 23);
        c.battery = BatterySpec::Fixed(0.5); // ~40 s of awake time
        c.horizon = SimTime::from_secs(50_000);
        let report = World::new(c).run();
        assert!(report.end_secs < 10_000.0, "ended at {}", report.end_secs);
        let last = report.samples.last().unwrap();
        assert_eq!(last.alive, 0);
    }
}
