//! # peas-sim — the integrated sensor-network simulator
//!
//! Binds every substrate of the PEAS (ICDCS 2003) reproduction into one
//! deterministic simulation (the role PARSEC played for the authors):
//!
//! * sensors run the [`peas`] state machine over the [`peas_radio`] medium;
//! * working nodes additionally relay data with [`peas_grab`];
//! * a Poisson failure injector kills random alive nodes (Section 5.2);
//! * batteries drain by mode and per-frame, with every joule attributed to
//!   an [`peas_radio::EnergyCause`] for Table 1;
//! * periodic samplers record K-coverage, the cumulative data success
//!   ratio, mode censuses and wakeup counts — the raw material for all
//!   figures of Section 5.
//!
//! ## Quick start
//!
//! ```
//! use peas_sim::{ScenarioConfig, World};
//!
//! // A small failure-free network, fast enough for a doctest.
//! let report = World::new(ScenarioConfig::small().with_seed(1)).run();
//! // PEAS kept a working set alive and most nodes asleep.
//! assert!(report.samples.iter().any(|s| s.working > 5 && s.sleeping > 10));
//! ```
//!
//! For the paper's exact evaluation setting use
//! [`ScenarioConfig::paper`]`(node_count)` and the experiment binaries in
//! `peas-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod job;
pub mod metrics;
pub mod report_json;
pub mod runner;
pub mod session;
pub mod trace;
pub mod world;

pub use cache::{CacheRecord, CacheScan, CacheWriter, ResultCache, SweepPlan};
pub use config::{BatterySpec, EventWorkload, FailureConfig, MetricsConfig, ScenarioConfig};
pub use job::{JobOutcome, JobProgress, JobSource, JobSpec, JOB_SCHEMA};
pub use metrics::{RunReport, Sample};
pub use report_json::{decode_report, encode_report, REPORT_SCHEMA};
pub use runner::{average_metric, AveragedPoint, Runner};
pub use session::{
    config_fingerprint, enumerate_shards, fnv1a, SessionError, Shard, ShardKey, SweepSession,
};
pub use trace::{DeathKind, FrameKind, TraceCounts, TraceEvent, TraceSink};
pub use world::World;
