//! Scenario configuration: everything one simulated run needs.

use peas::PeasConfig;
use peas_des::time::{SimDuration, SimTime};
use peas_geom::{Deployment, Field};
use peas_grab::GrabConfig;
use peas_radio::{PowerProfile, PropagationSpec};

/// How node batteries are initialized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatterySpec {
    /// Uniform in `[lo, hi]` joules — the paper draws 54–60 J (Section 5.1).
    Uniform {
        /// Lower bound, joules.
        lo: f64,
        /// Upper bound, joules.
        hi: f64,
    },
    /// Every node gets exactly this many joules.
    Fixed(f64),
}

impl BatterySpec {
    /// The paper's 54–60 J battery (Section 5.1).
    pub fn paper() -> BatterySpec {
        BatterySpec::Uniform { lo: 54.0, hi: 60.0 }
    }

    /// Draws one battery capacity.
    pub fn draw(&self, rng: &mut peas_des::rng::SimRng) -> f64 {
        match *self {
            BatterySpec::Uniform { lo, hi } => rng.range_f64(lo, hi),
            BatterySpec::Fixed(j) => j,
        }
    }
}

/// Artificial failure injection (Section 5.2: "we artificially inject node
/// failures which are randomly distributed over time").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureConfig {
    /// Average failures per 5000 simulated seconds (the paper's unit).
    pub rate_per_5000s: f64,
}

impl FailureConfig {
    /// The failure rate used for the Figure 9–11 runs: 10.66 per 5000 s.
    pub fn paper_base() -> FailureConfig {
        FailureConfig {
            rate_per_5000s: 10.66,
        }
    }

    /// Failures per second.
    pub fn per_second(&self) -> f64 {
        self.rate_per_5000s / 5000.0
    }
}

/// An event-detection workload: point events appear in the field as a
/// Poisson process; any working node with the event in sensing range
/// detects it, and the closest detector reports it to the sink over GRAB
/// (requires the GRAB workload to be enabled). This exercises the paper's
/// motivating application — "interested events are monitored and reported
/// properly" (Section 5.2) — end to end, with reports originating
/// anywhere in the field rather than only at the corner source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventWorkload {
    /// Mean events per 100 seconds.
    pub rate_per_100s: f64,
}

impl EventWorkload {
    /// Events per second.
    pub fn per_second(&self) -> f64 {
        self.rate_per_100s / 100.0
    }
}

/// Metric-sampling knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricsConfig {
    /// How often coverage/delivery snapshots are taken (also the energy
    /// accounting and battery-death granularity).
    pub sample_period: SimDuration,
    /// Lattice spacing for K-coverage, meters.
    pub coverage_resolution: f64,
    /// Highest K to record (the paper plots 3-, 4- and 5-coverage).
    pub max_k: u32,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            sample_period: SimDuration::from_secs(25),
            coverage_resolution: 1.0,
            max_k: 5,
        }
    }
}

/// A complete simulation scenario.
///
/// [`ScenarioConfig::paper`] reproduces Section 5.2: a 50 × 50 m field,
/// uniform deployment, 10 m sensing and maximum transmission ranges,
/// 20 kbps radios, Motes power profile, 54–60 J batteries, a corner source
/// reporting every 10 s to a corner sink over GRAB, and PEAS at
/// `Rp` = 3 m / λ₀ = 0.1 / λd = 0.02.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioConfig {
    /// The deployment field.
    pub field: Field,
    /// Number of sensor nodes (excluding source and sink).
    pub node_count: usize,
    /// How sensors are placed.
    pub deployment: Deployment,
    /// PEAS protocol parameters.
    pub peas: PeasConfig,
    /// Data workload; `None` disables GRAB (pure coverage experiments).
    pub grab: Option<GrabConfig>,
    /// Event-detection workload; requires `grab` to be enabled.
    pub events: Option<EventWorkload>,
    /// Propagation model recipe; built into a
    /// [`PropagationModel`](peas_radio::PropagationModel) at world
    /// construction.
    pub propagation: PropagationSpec,
    /// Radio bitrate, bits/second.
    pub bitrate_bps: u64,
    /// Uniform frame loss probability.
    pub loss_rate: f64,
    /// Per-mode power draws.
    pub power: PowerProfile,
    /// Battery initialization.
    pub battery: BatterySpec,
    /// Sensing range for coverage, meters (10 m in Section 5.1).
    pub sensing_range: f64,
    /// Failure injection; `None` for failure-free runs.
    pub failure: Option<FailureConfig>,
    /// Metric sampling.
    pub metrics: MetricsConfig,
    /// Hard stop for the simulation clock.
    pub horizon: SimTime,
    /// Master seed; every node and subsystem derives a decoupled stream.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's evaluation scenario with `node_count` deployed sensors.
    pub fn paper(node_count: usize) -> ScenarioConfig {
        ScenarioConfig {
            field: Field::paper(),
            node_count,
            deployment: Deployment::Uniform,
            peas: PeasConfig::paper(),
            grab: Some(GrabConfig::paper()),
            events: None,
            propagation: PropagationSpec::Disc,
            bitrate_bps: 20_000,
            loss_rate: 0.0,
            power: PowerProfile::motes(),
            battery: BatterySpec::paper(),
            sensing_range: 10.0,
            failure: Some(FailureConfig::paper_base()),
            metrics: MetricsConfig::default(),
            horizon: SimTime::from_secs(60_000),
            seed: 1,
        }
    }

    /// A small, fast scenario for tests and examples: a 25 × 25 m field
    /// without failures or data traffic, 60-node deployment.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            field: Field::new(25.0, 25.0),
            node_count: 60,
            grab: None,
            events: None,
            failure: None,
            horizon: SimTime::from_secs(2_000),
            ..ScenarioConfig::paper(60)
        }
    }

    /// Overrides the master seed (builder-style convenience).
    pub fn with_seed(mut self, seed: u64) -> ScenarioConfig {
        self.seed = seed;
        self
    }

    /// Overrides the failure rate (per 5000 s), builder-style.
    pub fn with_failure_rate(mut self, rate_per_5000s: f64) -> ScenarioConfig {
        self.failure = if rate_per_5000s > 0.0 {
            Some(FailureConfig { rate_per_5000s })
        } else {
            None
        };
        self
    }

    /// Validates cross-cutting constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.peas.validate().map_err(|e| e.to_string())?;
        if let Some(grab) = &self.grab {
            grab.validate().map_err(str::to_owned)?;
        }
        if self.node_count == 0 {
            return Err("node_count must be at least 1".into());
        }
        // Node indices travel as u32 (NodeId, event payloads, CSR rows);
        // reserve two ids above the sensors for the GRAB infrastructure.
        if self.node_count > (u32::MAX - 2) as usize {
            return Err(format!(
                "node_count {} exceeds the u32 node-id space (max {})",
                self.node_count,
                u32::MAX - 2
            ));
        }
        if !(self.sensing_range.is_finite() && self.sensing_range > 0.0) {
            return Err("sensing_range must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err("loss_rate must be in [0, 1]".into());
        }
        if self.bitrate_bps == 0 {
            return Err("bitrate_bps must be positive".into());
        }
        self.propagation.validate()?;
        if let PropagationSpec::Terrain(t) = &self.propagation {
            let w = (t.cols - 1) as f64 * t.cell_size;
            let h = (t.rows - 1) as f64 * t.cell_size;
            if w + 1e-9 < self.field.width() || h + 1e-9 < self.field.height() {
                return Err(format!(
                    "terrain raster spans {w} x {h} m but the field is {} x {} m; \
                     every node must sit on the raster",
                    self.field.width(),
                    self.field.height()
                ));
            }
        }
        if self.metrics.sample_period.is_zero() {
            return Err("sample_period must be positive".into());
        }
        if let Some(f) = self.failure {
            if !(f.rate_per_5000s.is_finite() && f.rate_per_5000s > 0.0) {
                return Err("failure rate must be positive".into());
            }
        }
        if let Some(e) = self.events {
            if !(e.rate_per_100s.is_finite() && e.rate_per_100s > 0.0) {
                return Err("event rate must be positive".into());
            }
            if self.grab.is_none() {
                return Err("the event workload requires GRAB to be enabled".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::rng::SimRng;

    #[test]
    fn paper_scenario_matches_section_5() {
        let c = ScenarioConfig::paper(480);
        assert_eq!(c.node_count, 480);
        assert_eq!(c.field.area(), 2500.0);
        assert_eq!(c.sensing_range, 10.0);
        assert_eq!(c.bitrate_bps, 20_000);
        assert_eq!(c.peas.probing_range, 3.0);
        assert_eq!(
            c.failure,
            Some(FailureConfig {
                rate_per_5000s: 10.66
            })
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn failure_rate_conversion() {
        let f = FailureConfig::paper_base();
        assert!((f.per_second() - 10.66 / 5000.0).abs() < 1e-15);
    }

    #[test]
    fn battery_spec_draws_in_range() {
        let mut rng = SimRng::new(1);
        let spec = BatterySpec::paper();
        for _ in 0..50 {
            let j = spec.draw(&mut rng);
            assert!((54.0..60.0).contains(&j));
        }
        assert_eq!(BatterySpec::Fixed(10.0).draw(&mut rng), 10.0);
    }

    #[test]
    fn builder_style_overrides() {
        let c = ScenarioConfig::paper(160)
            .with_seed(9)
            .with_failure_rate(48.0);
        assert_eq!(c.seed, 9);
        assert_eq!(c.failure.unwrap().rate_per_5000s, 48.0);
        let no_fail = ScenarioConfig::paper(160).with_failure_rate(0.0);
        assert!(no_fail.failure.is_none());
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let mut c = ScenarioConfig::paper(0);
        assert!(c.validate().is_err());
        c = ScenarioConfig::paper(10);
        c.loss_rate = 1.5;
        assert!(c.validate().is_err());
        c = ScenarioConfig::paper(10);
        c.sensing_range = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_scenario_is_valid() {
        assert!(ScenarioConfig::small().validate().is_ok());
    }

    #[test]
    fn node_count_beyond_u32_id_space_is_rejected() {
        let mut c = ScenarioConfig::paper(10);
        c.node_count = u32::MAX as usize; // leaves no room for source/sink ids
        let err = c.validate().expect_err("must reject");
        assert!(err.contains("u32 node-id space"), "{err}");
        c.node_count = (u32::MAX - 2) as usize;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn terrain_raster_must_cover_the_field() {
        use peas_radio::TerrainSpec;

        let mut c = ScenarioConfig::paper(60);
        // 11 x 11 lattice at 5 m pitch spans the 50 x 50 m paper field.
        c.propagation = PropagationSpec::Terrain(TerrainSpec::generated(11, 11, 5.0, 3));
        assert!(c.validate().is_ok());
        // 6 x 6 at the same pitch only spans 25 m: nodes would fall off it.
        c.propagation = PropagationSpec::Terrain(TerrainSpec::generated(6, 6, 5.0, 3));
        let err = c.validate().expect_err("must reject");
        assert!(err.contains("terrain raster spans"), "{err}");
        // An invalid spec is caught before the coverage check.
        let mut bad = TerrainSpec::generated(11, 11, 5.0, 3);
        bad.cell_size = 0.0;
        c.propagation = PropagationSpec::Terrain(bad);
        assert!(c.validate().is_err());
    }

    #[test]
    fn event_workload_requires_grab() {
        let mut c = ScenarioConfig::paper(60);
        c.events = Some(EventWorkload { rate_per_100s: 5.0 });
        assert!(c.validate().is_ok());
        c.grab = None;
        assert!(c.validate().is_err());
        c.grab = Some(peas_grab::GrabConfig::paper());
        c.events = Some(EventWorkload { rate_per_100s: 0.0 });
        assert!(c.validate().is_err());
        assert!((EventWorkload { rate_per_100s: 5.0 }).per_second() - 0.05 < 1e-12);
    }
}
