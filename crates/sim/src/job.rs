//! The sweep service's job wire forms (`schema = 1`).
//!
//! A *job* is one client submission to the `peas-bench serve` spool: a
//! JSON file naming a `.peas` scenario (by corpus stem or path) or
//! carrying an inline scenario source. The service answers with two
//! response artifacts per job:
//!
//! * `<job>.reports.jsonl` — the merged reports, one canonical schema-1
//!   line per shard in enumeration order. This file is **byte-identical**
//!   no matter how the job was served (cold run, warm cache, resumed
//!   after a crash) — the cache-equivalence guarantee.
//! * `<job>.response.json` — the accounting ([`JobOutcome`]): shard
//!   totals, dedup counts and a fingerprint of the reports file.
//!
//! While a job runs, the service maintains `<job>.progress.json`
//! ([`JobProgress`]) so clients can poll live completion counts.
//!
//! Everything here is plain data + encode/decode over the dependency-free
//! JSON layer in [`crate::report_json`]; the compilation of a job to
//! concrete runs lives in `peas-scenario` (`compile_job`), and the
//! scheduling in the `serve` binary.

use crate::report_json::{json_escape, parse_json, Json};

/// Version tag of the job/submission wire form. Bump on any change to
/// field names or meaning; decoders reject mismatching versions.
pub const JOB_SCHEMA: u64 = 1;

/// What a job asks the service to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSource {
    /// A `.peas` scenario: a corpus stem (`"sweep-smoke"`) or a path
    /// ending in `.peas`, resolved against the service's scenario dir.
    Scenario(String),
    /// An inline scenario source (the full `.peas` text; `extends` is
    /// not available — an inline job must be self-contained).
    Inline(String),
}

/// One parsed job submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The job name: identifies the submission in the spool and names
    /// its response artifacts. Restricted to `[A-Za-z0-9._-]` (it
    /// becomes file names), must not start with a dot.
    pub name: String,
    /// What to run.
    pub source: JobSource,
}

/// Validates a job name for use as a spool file stem.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_job_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err(format!(
            "job name must be 1..=64 characters, got {}",
            name.len()
        ));
    }
    if name.starts_with('.') {
        return Err("job name must not start with `.`".to_string());
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "job name contains `{bad}`; allowed characters are [A-Za-z0-9._-]"
        ));
    }
    Ok(())
}

/// Encodes a job submission in its canonical single-line form.
pub fn encode_job(spec: &JobSpec) -> String {
    let (key, value) = match &spec.source {
        JobSource::Scenario(s) => ("scenario", s),
        JobSource::Inline(s) => ("inline", s),
    };
    format!(
        "{{\"schema\":{JOB_SCHEMA},\"job\":\"{}\",\"{key}\":\"{}\"}}",
        json_escape(&spec.name),
        json_escape(value)
    )
}

/// Decodes and validates a job submission.
///
/// # Errors
///
/// Returns a description of the first syntax error, schema mismatch,
/// invalid name, or missing/conflicting source field.
pub fn decode_job(src: &str) -> Result<JobSpec, String> {
    let v = parse_json(src)?;
    let schema = match v.get("schema") {
        Some(Json::Num(raw)) => raw
            .parse::<u64>()
            .map_err(|_| format!("field `schema`: `{raw}` is not a u64"))?,
        _ => return Err("missing numeric field `schema`".to_string()),
    };
    if schema != JOB_SCHEMA {
        return Err(format!(
            "unsupported job schema {schema} (this build reads schema {JOB_SCHEMA})"
        ));
    }
    let name = match v.get("job") {
        Some(Json::Str(name)) => name.clone(),
        _ => return Err("missing string field `job`".to_string()),
    };
    validate_job_name(&name).map_err(|e| format!("field `job`: {e}"))?;
    let source = match (v.get("scenario"), v.get("inline")) {
        (Some(Json::Str(s)), None) => JobSource::Scenario(s.clone()),
        (None, Some(Json::Str(s))) => JobSource::Inline(s.clone()),
        (Some(_), Some(_)) => {
            return Err("job declares both `scenario` and `inline`; pick one".to_string())
        }
        _ => return Err("job needs a string field `scenario` or `inline`".to_string()),
    };
    Ok(JobSpec { name, source })
}

/// The final accounting of one served job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job name.
    pub name: String,
    /// Shards in the job's enumeration (including in-job duplicates).
    pub total: usize,
    /// Shards served straight from the cache at schedule time.
    pub cached: usize,
    /// Novel shards actually executed for this job.
    pub executed: usize,
    /// FNV-1a over the bytes of `<job>.reports.jsonl` — one number that
    /// pins the whole merged result (0 for failed jobs).
    pub result_fingerprint: u64,
    /// The failure message of a job that could not be served.
    pub error: Option<String>,
}

impl JobOutcome {
    /// True when the job was served to completion.
    pub fn is_done(&self) -> bool {
        self.error.is_none()
    }
}

/// Encodes an outcome in its canonical single-line form.
pub fn encode_outcome(outcome: &JobOutcome) -> String {
    let state = if outcome.is_done() { "done" } else { "failed" };
    let mut out = format!(
        "{{\"schema\":{JOB_SCHEMA},\"job\":\"{}\",\"state\":\"{state}\",\"total\":{},\
         \"cached\":{},\"executed\":{},\"result_fingerprint\":\"{:#018X}\"",
        json_escape(&outcome.name),
        outcome.total,
        outcome.cached,
        outcome.executed,
        outcome.result_fingerprint
    );
    if let Some(error) = &outcome.error {
        out.push_str(&format!(",\"error\":\"{}\"", json_escape(error)));
    }
    out.push('}');
    out
}

/// Decodes an outcome.
///
/// # Errors
///
/// Returns a description of the first syntax error, schema mismatch or
/// missing field.
pub fn decode_outcome(src: &str) -> Result<JobOutcome, String> {
    let v = parse_json(src)?;
    let get_usize = |key: &str| -> Result<usize, String> {
        match v.get(key) {
            Some(Json::Num(raw)) => raw
                .parse::<usize>()
                .map_err(|_| format!("field `{key}`: `{raw}` is not a usize")),
            _ => Err(format!("missing numeric field `{key}`")),
        }
    };
    let schema = get_usize("schema")?;
    if schema as u64 != JOB_SCHEMA {
        return Err(format!("unsupported outcome schema {schema}"));
    }
    let name = match v.get("job") {
        Some(Json::Str(name)) => name.clone(),
        _ => return Err("missing string field `job`".to_string()),
    };
    let result_fingerprint = match v.get("result_fingerprint") {
        Some(Json::Str(hex)) => hex
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("field `result_fingerprint`: bad hex `{hex}`"))?,
        _ => return Err("missing string field `result_fingerprint`".to_string()),
    };
    let error = match v.get("error") {
        Some(Json::Str(e)) => Some(e.clone()),
        None => None,
        Some(other) => return Err(format!("field `error`: expected string, got {other:?}")),
    };
    Ok(JobOutcome {
        name,
        total: get_usize("total")?,
        cached: get_usize("cached")?,
        executed: get_usize("executed")?,
        result_fingerprint,
        error,
    })
}

/// A live progress snapshot of a running job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobProgress {
    /// The job name.
    pub name: String,
    /// Shards already servable (cached + executed so far).
    pub done: usize,
    /// Shards in the job's enumeration.
    pub total: usize,
}

/// Encodes a progress snapshot in its canonical single-line form.
pub fn encode_progress(progress: &JobProgress) -> String {
    format!(
        "{{\"schema\":{JOB_SCHEMA},\"job\":\"{}\",\"state\":\"running\",\"done\":{},\"total\":{}}}",
        json_escape(&progress.name),
        progress.done,
        progress.total
    )
}

/// Decodes a progress snapshot.
///
/// # Errors
///
/// Returns a description of the first syntax error or missing field.
pub fn decode_progress(src: &str) -> Result<JobProgress, String> {
    let v = parse_json(src)?;
    let get_usize = |key: &str| -> Result<usize, String> {
        match v.get(key) {
            Some(Json::Num(raw)) => raw
                .parse::<usize>()
                .map_err(|_| format!("field `{key}`: `{raw}` is not a usize")),
            _ => Err(format!("missing numeric field `{key}`")),
        }
    };
    let name = match v.get("job") {
        Some(Json::Str(name)) => name.clone(),
        _ => return Err("missing string field `job`".to_string()),
    };
    Ok(JobProgress {
        name,
        done: get_usize("done")?,
        total: get_usize("total")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_both_sources() {
        for spec in [
            JobSpec {
                name: "night-1".to_string(),
                source: JobSource::Scenario("sweep-smoke".to_string()),
            },
            JobSpec {
                name: "adhoc.2".to_string(),
                source: JobSource::Inline("[deployment]\ncount = 30\n".to_string()),
            },
        ] {
            let encoded = encode_job(&spec);
            assert_eq!(decode_job(&encoded).expect("decodes"), spec);
        }
    }

    #[test]
    fn job_decode_rejects_bad_submissions() {
        for (src, needle) in [
            ("{}", "schema"),
            (r#"{"schema":2,"job":"a","scenario":"x"}"#, "unsupported"),
            (r#"{"schema":1,"scenario":"x"}"#, "field `job`"),
            (r#"{"schema":1,"job":"a"}"#, "scenario"),
            (
                r#"{"schema":1,"job":"a","scenario":"x","inline":"y"}"#,
                "pick one",
            ),
            (r#"{"schema":1,"job":"a b","scenario":"x"}"#, "allowed"),
            (r#"{"schema":1,"job":".hidden","scenario":"x"}"#, "start"),
        ] {
            let err = decode_job(src).expect_err(src);
            assert!(err.contains(needle), "`{src}` -> `{err}`");
        }
    }

    #[test]
    fn outcome_round_trips_with_and_without_error() {
        for outcome in [
            JobOutcome {
                name: "a".to_string(),
                total: 8,
                cached: 6,
                executed: 2,
                result_fingerprint: 0x0123_4567_89AB_CDEF,
                error: None,
            },
            JobOutcome {
                name: "b".to_string(),
                total: 0,
                cached: 0,
                executed: 0,
                result_fingerprint: 0,
                error: Some("no such scenario \"x\"".to_string()),
            },
        ] {
            let encoded = encode_outcome(&outcome);
            assert_eq!(decode_outcome(&encoded).expect("decodes"), outcome);
        }
    }

    #[test]
    fn progress_round_trips() {
        let p = JobProgress {
            name: "a".to_string(),
            done: 3,
            total: 8,
        };
        assert_eq!(decode_progress(&encode_progress(&p)).expect("decodes"), p);
    }
}
