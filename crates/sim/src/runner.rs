//! The [`Runner`] facade: one builder for every way the repo executes
//! simulations.
//!
//! The paper averages every data point over 5 simulation runs
//! (Section 5.2); `Runner::new(cfg).seeds(&SEEDS).run()` reproduces that:
//! one [`World`] per (config, seed) job, executed on a bounded worker
//! pool, reports returned in job order.

use peas_analysis::Summary;

use crate::config::ScenarioConfig;
use crate::metrics::RunReport;
use crate::world::World;

/// Builder-style facade over every execution mode: single runs, multi-seed
/// replication, heterogeneous config sweeps, serial or bounded-parallel.
///
/// The job list is always expanded eagerly and executed in a deterministic
/// order: [`Runner::run`] returns reports in *job order* no matter which
/// worker finished first, so downstream consumers (sweep points, golden
/// fingerprints, the [`crate::session::SweepSession`] journal) can index
/// results positionally.
///
/// ```
/// use peas_sim::{Runner, ScenarioConfig};
///
/// let reports = Runner::new(ScenarioConfig::small())
///     .seeds(&[1, 2])
///     .parallelism(2)
///     .run();
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].seed, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Runner {
    /// The expanded job list, in execution (and result) order.
    jobs: Vec<ScenarioConfig>,
    /// Worker-thread cap; `None` means `available_parallelism`.
    parallelism: Option<usize>,
}

impl Runner {
    /// A runner with a single job: `config` as-is.
    pub fn new(config: ScenarioConfig) -> Runner {
        Runner {
            jobs: vec![config],
            parallelism: None,
        }
    }

    /// A runner over an explicit job list (a heterogeneous sweep). The
    /// list may be empty, in which case [`Runner::run`] returns no
    /// reports.
    pub fn configs(configs: Vec<ScenarioConfig>) -> Runner {
        Runner {
            jobs: configs,
            parallelism: None,
        }
    }

    /// Replicates every current job once per seed, in values-major order
    /// (for each job, each seed) — the same flattening the `.peas`
    /// `[sweeps]` expansion uses.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> Runner {
        assert!(!seeds.is_empty(), "need at least one seed");
        self.jobs = self
            .jobs
            .iter()
            .flat_map(|job| seeds.iter().map(|&seed| job.clone().with_seed(seed)))
            .collect();
        self
    }

    /// Caps the worker pool at `workers` OS threads (default:
    /// [`std::thread::available_parallelism`]). `parallelism(1)` forces
    /// fully serial execution on the caller's thread.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Runner {
        assert!(workers >= 1, "parallelism must be at least 1");
        self.parallelism = Some(workers);
        self
    }

    /// Number of jobs the runner will execute.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The expanded job list, in execution order.
    pub fn job_configs(&self) -> &[ScenarioConfig] {
        &self.jobs
    }

    /// Executes every job and returns the reports **in job order**,
    /// regardless of which worker finished first.
    ///
    /// At most `min(parallelism, jobs)` worker threads are spawned;
    /// workers pull the next un-started job from a shared counter, so a
    /// slow run never leaves cores idle while work remains. With a single
    /// worker (or a single job) the jobs simply run on the caller's
    /// thread. Each run is fully independent (its own world, RNG streams
    /// and medium), so the reports are identical to a serial run's — only
    /// wall time changes.
    ///
    /// # Panics
    ///
    /// Panics if any individual run panics (worker panics propagate
    /// through [`std::thread::scope`]) — e.g. when a config fails
    /// validation.
    pub fn run(self) -> Vec<RunReport> {
        let workers = self
            .parallelism
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .min(self.jobs.len());
        if workers <= 1 {
            return self
                .jobs
                .into_iter()
                .map(|config| World::new(config).run())
                .collect();
        }
        let jobs = self.jobs;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::OnceLock<RunReport>> = (0..jobs.len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(config) = jobs.get(i) else { break };
                    let filled = slots[i].set(World::new(config.clone()).run());
                    debug_assert!(filled.is_ok(), "job {i} claimed twice");
                });
            }
        });
        slots
            .into_iter()
            // peas-lint: allow(r1-unchecked-panic) -- scope join guarantees every claimed slot was filled; the shared counter claims each exactly once
            .map(|slot| slot.into_inner().expect("worker pool dropped a job"))
            .collect()
    }

    /// Executes a single-job runner and returns its one report.
    ///
    /// # Panics
    ///
    /// Panics if the job list does not hold exactly one config (use
    /// [`Runner::run`] for multi-job runners), or if the run itself
    /// panics.
    pub fn run_single(self) -> RunReport {
        assert_eq!(
            self.jobs.len(),
            1,
            "run_single needs exactly one job, got {}",
            self.jobs.len()
        );
        let mut reports = self.run();
        // peas-lint: allow(r1-unchecked-panic) -- the assert above pins the job list to length 1
        reports.pop().expect("one job yields one report")
    }
}

/// One averaged figure point.
#[derive(Clone, Debug)]
pub struct AveragedPoint {
    /// The x-value of the figure (deployment number, failure rate, …).
    pub x: f64,
    /// Summary of the metric across seeds.
    pub summary: Summary,
}

impl AveragedPoint {
    /// Builds a point from per-seed metric values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(x: f64, values: &[f64]) -> AveragedPoint {
        AveragedPoint {
            x,
            summary: Summary::from_slice(values),
        }
    }
}

/// Extracts a metric from every report and averages it.
pub fn average_metric<F>(x: f64, reports: &[RunReport], metric: F) -> AveragedPoint
where
    F: Fn(&RunReport) -> f64,
{
    let values: Vec<f64> = reports.iter().map(metric).collect();
    AveragedPoint::new(x, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::time::SimTime;

    fn tiny() -> ScenarioConfig {
        let mut c = ScenarioConfig::small();
        c.node_count = 25;
        c.horizon = SimTime::from_secs(300);
        c
    }

    #[test]
    fn runner_produces_one_report_per_seed() {
        let reports = Runner::new(tiny()).seeds(&[1, 2, 3]).parallelism(1).run();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].seed, 1);
        assert_eq!(reports[2].seed, 3);
        // Different seeds, different randomness.
        assert_ne!(reports[0].total_wakeups(), reports[1].total_wakeups());
    }

    #[test]
    fn average_metric_summarizes() {
        let reports = Runner::new(tiny()).seeds(&[4, 5]).run();
        let point = average_metric(25.0, &reports, |r| r.total_wakeups() as f64);
        assert_eq!(point.x, 25.0);
        assert_eq!(point.summary.n, 2);
        assert!(point.summary.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let _ = Runner::new(tiny()).seeds(&[]);
    }

    #[test]
    #[should_panic(expected = "parallelism must be at least 1")]
    fn zero_parallelism_rejected() {
        let _ = Runner::new(tiny()).parallelism(0);
    }

    #[test]
    #[should_panic(expected = "exactly one job")]
    fn run_single_requires_one_job() {
        let _ = Runner::new(tiny()).seeds(&[1, 2]).run_single();
    }

    #[test]
    fn empty_config_list_runs_to_empty_report_list() {
        assert!(Runner::configs(Vec::new()).run().is_empty());
    }

    #[test]
    fn configs_cross_seeds_expand_values_major() {
        let runner = Runner::configs(vec![tiny().with_seed(0), {
            let mut c = tiny();
            c.node_count = 30;
            c
        }])
        .seeds(&[7, 8]);
        let jobs = runner.job_configs();
        assert_eq!(jobs.len(), 4);
        assert_eq!(
            jobs.iter()
                .map(|c| (c.node_count, c.seed))
                .collect::<Vec<_>>(),
            vec![(25, 7), (25, 8), (30, 7), (30, 8)]
        );
    }

    #[test]
    fn bounded_pool_preserves_job_order_with_more_jobs_than_cores() {
        let configs: Vec<ScenarioConfig> = (1..=9).map(|seed| tiny().with_seed(seed)).collect();
        let reports = Runner::configs(configs).run();
        assert_eq!(reports.len(), 9);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.seed, i as u64 + 1);
        }
    }

    /// Regression test for result ordering under adversarial completion
    /// order: the first job is much heavier than the rest, so with 2+
    /// workers every later job *completes* before job 0 does. The returned
    /// reports must still be in input order (the sweep journal replays
    /// reports positionally).
    #[test]
    fn job_order_preserved_when_completion_order_differs() {
        let mut heavy = tiny().with_seed(1);
        heavy.horizon = SimTime::from_secs(2_000);
        let mut configs = vec![heavy.clone()];
        for seed in 2..=6 {
            let mut light = tiny().with_seed(seed);
            light.horizon = SimTime::from_secs(150);
            configs.push(light);
        }
        let reports = Runner::configs(configs).parallelism(3).run();
        assert_eq!(reports.len(), 6);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.seed, i as u64 + 1, "report {i} out of input order");
        }
        // The heavy job really was the long one (sanity check on the setup).
        assert!(reports[0].end_secs > reports[1].end_secs);
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let config = tiny();
        let serial = Runner::new(config.clone())
            .seeds(&[7, 8, 9])
            .parallelism(1)
            .run();
        let parallel = Runner::new(config).seeds(&[7, 8, 9]).run();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.node_stats, b.node_stats);
            assert_eq!(a.medium, b.medium);
        }
    }
}
