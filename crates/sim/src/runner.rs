//! Multi-seed experiment running and averaging.
//!
//! The paper averages every data point over 5 simulation runs
//! (Section 5.2); [`run_seeds`] reproduces that: one [`World`] per seed,
//! plus [`AveragedPoint`] summaries for the figures.

use peas_analysis::Summary;

use crate::config::ScenarioConfig;
use crate::metrics::RunReport;
use crate::world::World;

/// Runs the scenario once.
pub fn run_one(config: ScenarioConfig) -> RunReport {
    World::new(config).run()
}

/// Runs the scenario once per seed (the paper uses 5 seeds per point).
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_seeds(config: &ScenarioConfig, seeds: &[u64]) -> Vec<RunReport> {
    assert!(!seeds.is_empty(), "need at least one seed");
    seeds
        .iter()
        .map(|&seed| run_one(config.clone().with_seed(seed)))
        .collect()
}

/// Like [`run_seeds`], but distributes the seeds over a bounded pool of
/// OS threads (see [`run_configs_parallel`]). Each run is fully independent
/// (its own world, RNG streams and medium), so the reports are identical to
/// the serial version's — only wall time changes.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_seeds_parallel(config: &ScenarioConfig, seeds: &[u64]) -> Vec<RunReport> {
    assert!(!seeds.is_empty(), "need at least one seed");
    run_configs_parallel(
        seeds
            .iter()
            .map(|&seed| config.clone().with_seed(seed))
            .collect(),
    )
}

/// Runs every scenario on a bounded worker pool, returning the reports in
/// input order.
///
/// At most [`std::thread::available_parallelism`] worker threads are
/// spawned, however many jobs there are; workers pull the next un-started
/// job from a shared counter, so a slow run never leaves cores idle while
/// work remains. With a single core (or a single job) the jobs simply run
/// on the caller's thread.
///
/// # Panics
///
/// Panics if any individual run panics (worker panics propagate through
/// [`std::thread::scope`]) — e.g. when a config fails validation.
pub fn run_configs_parallel(configs: Vec<ScenarioConfig>) -> Vec<RunReport> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(configs.len());
    if workers <= 1 {
        return configs.into_iter().map(run_one).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::OnceLock<RunReport>> = (0..configs.len())
        .map(|_| std::sync::OnceLock::new())
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(config) = configs.get(i) else { break };
                let filled = slots[i].set(run_one(config.clone()));
                debug_assert!(filled.is_ok(), "job {i} claimed twice");
            });
        }
    });
    slots
        .into_iter()
        // peas-lint: allow(r1-unchecked-panic) -- scope join guarantees every claimed slot was filled; the shared counter claims each exactly once
        .map(|slot| slot.into_inner().expect("worker pool dropped a job"))
        .collect()
}

/// One averaged figure point.
#[derive(Clone, Debug)]
pub struct AveragedPoint {
    /// The x-value of the figure (deployment number, failure rate, …).
    pub x: f64,
    /// Summary of the metric across seeds.
    pub summary: Summary,
}

impl AveragedPoint {
    /// Builds a point from per-seed metric values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(x: f64, values: &[f64]) -> AveragedPoint {
        AveragedPoint {
            x,
            summary: Summary::from_slice(values),
        }
    }
}

/// Extracts a metric from every report and averages it.
pub fn average_metric<F>(x: f64, reports: &[RunReport], metric: F) -> AveragedPoint
where
    F: Fn(&RunReport) -> f64,
{
    let values: Vec<f64> = reports.iter().map(metric).collect();
    AveragedPoint::new(x, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::time::SimTime;

    fn tiny() -> ScenarioConfig {
        let mut c = ScenarioConfig::small();
        c.node_count = 25;
        c.horizon = SimTime::from_secs(300);
        c
    }

    #[test]
    fn run_seeds_produces_one_report_per_seed() {
        let reports = run_seeds(&tiny(), &[1, 2, 3]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].seed, 1);
        assert_eq!(reports[2].seed, 3);
        // Different seeds, different randomness.
        assert_ne!(reports[0].total_wakeups(), reports[1].total_wakeups());
    }

    #[test]
    fn average_metric_summarizes() {
        let reports = run_seeds(&tiny(), &[4, 5]);
        let point = average_metric(25.0, &reports, |r| r.total_wakeups() as f64);
        assert_eq!(point.x, 25.0);
        assert_eq!(point.summary.n, 2);
        assert!(point.summary.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let _ = run_seeds(&tiny(), &[]);
    }

    #[test]
    fn bounded_pool_preserves_job_order_with_more_jobs_than_cores() {
        let configs: Vec<ScenarioConfig> = (1..=9).map(|seed| tiny().with_seed(seed)).collect();
        let reports = run_configs_parallel(configs);
        assert_eq!(reports.len(), 9);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.seed, i as u64 + 1);
        }
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let config = tiny();
        let serial = run_seeds(&config, &[7, 8, 9]);
        let parallel = run_seeds_parallel(&config, &[7, 8, 9]);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.node_stats, b.node_stats);
            assert_eq!(a.medium, b.medium);
        }
    }
}
