//! The versioned, stable serialized form of a [`RunReport`]
//! (`schema = 1`), shared by the sweep checkpoint journal
//! ([`crate::session`]) and the `peas-bench` drivers.
//!
//! The encoding is one JSON object per report with a pinned key set and
//! key order (see the contract test in `crates/sim/tests/report_schema.rs`
//! — renaming or reordering a field is a schema break and must bump
//! [`REPORT_SCHEMA`]). Floating-point values are rendered with Rust's
//! shortest-round-trip formatting, so `decode(encode(r)) == r` is exact
//! down to the last bit — the property the resume path's "byte-identical
//! merged report" guarantee rests on.
//!
//! The parser is a dependency-free recursive-descent JSON reader. Numbers
//! are kept as raw text until a typed field decode requests `u64`/`f64`,
//! so integers never round-trip through floating point.

use peas::NodeStats;
use peas_radio::{EnergyCause, EnergyLedger, MediumStats};

use crate::metrics::{RunReport, Sample};

/// Version tag embedded in every encoded report (`"schema": 1`). Bump on
/// any change to field names, order or meaning; [`decode_report`] rejects
/// mismatching versions.
pub const REPORT_SCHEMA: u64 = 1;

/// The `(cause, json key)` pairs of the energy ledger object, in encoding
/// order.
const LEDGER_KEYS: [(EnergyCause, &str); 7] = [
    (EnergyCause::ProtocolTx, "protocol_tx"),
    (EnergyCause::ProtocolRx, "protocol_rx"),
    (EnergyCause::ProtocolIdle, "protocol_idle"),
    (EnergyCause::AppTx, "app_tx"),
    (EnergyCause::AppRx, "app_rx"),
    (EnergyCause::WorkingIdle, "working_idle"),
    (EnergyCause::Sleep, "sleep"),
];

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Escapes `s` as the *contents* of a JSON string literal (no surrounding
/// quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// Renders `v` in the shortest form that parses back to the identical
/// bits (Rust's `{:?}` float formatting).
///
/// # Panics
///
/// Panics if `v` is NaN or infinite — reports only ever hold finite
/// values, and JSON has no encoding for the rest.
fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "cannot encode non-finite float {v}");
    format!("{v:?}")
}

fn encode_sample(out: &mut String, s: &Sample) {
    out.push_str(&format!("{{\"t_secs\":{}", fmt_f64(s.t_secs)));
    out.push_str(",\"coverage\":[");
    for (i, c) in s.coverage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(*c));
    }
    out.push_str(&format!(
        "],\"working\":{},\"sleeping\":{},\"alive\":{}",
        s.working, s.sleeping, s.alive
    ));
    match s.delivery_ratio {
        Some(r) => out.push_str(&format!(",\"delivery_ratio\":{}", fmt_f64(r))),
        None => out.push_str(",\"delivery_ratio\":null"),
    }
    out.push_str(&format!(",\"total_wakeups\":{}}}", s.total_wakeups));
}

fn encode_node_stats(out: &mut String, n: &NodeStats) {
    out.push_str(&format!(
        "{{\"wakeups\":{},\"probes_sent\":{},\"replies_sent\":{},\"probes_heard\":{},\
         \"replies_heard\":{},\"measurements\":{},\"window_with_reply\":{},\
         \"window_silent\":{},\"turnoffs\":{},\"replies_overheard\":{}}}",
        n.wakeups,
        n.probes_sent,
        n.replies_sent,
        n.probes_heard,
        n.replies_heard,
        n.measurements,
        n.window_with_reply,
        n.window_silent,
        n.turnoffs,
        n.replies_overheard
    ));
}

fn encode_ledger(out: &mut String, ledger: &EnergyLedger) {
    out.push('{');
    for (i, (cause, key)) in LEDGER_KEYS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{}", fmt_f64(ledger.for_cause(*cause))));
    }
    out.push('}');
}

fn encode_medium(out: &mut String, m: &MediumStats) {
    out.push_str(&format!(
        "{{\"frames_sent\":{},\"deliveries_ok\":{},\"collisions\":{},\"random_losses\":{}}}",
        m.frames_sent, m.deliveries_ok, m.collisions, m.random_losses
    ));
}

/// Encodes a report in its canonical schema-1 form: a single-line JSON
/// object with a pinned key order. Two equal reports encode to identical
/// bytes, and `decode_report(encode_report(r))` reproduces `r` exactly.
///
/// # Panics
///
/// Panics if the report holds a non-finite float (cannot happen for
/// reports produced by [`crate::World::run`]).
pub fn encode_report(report: &RunReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"schema\":{REPORT_SCHEMA},\"node_count\":{},\"seed\":{}",
        report.node_count, report.seed
    ));
    out.push_str(",\"samples\":[");
    for (i, s) in report.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_sample(&mut out, s);
    }
    out.push_str("],\"node_stats\":");
    encode_node_stats(&mut out, &report.node_stats);
    out.push_str(",\"ledger_j\":");
    encode_ledger(&mut out, &report.ledger);
    out.push_str(&format!(",\"consumed_j\":{}", fmt_f64(report.consumed_j)));
    out.push_str(",\"medium\":");
    encode_medium(&mut out, &report.medium);
    out.push_str(&format!(
        ",\"failures_injected\":{},\"energy_deaths\":{},\"generated_reports\":{},\
         \"delivered_reports\":{},\"events_total\":{},\"events_detected\":{},\
         \"events_delivered\":{}",
        report.failures_injected,
        report.energy_deaths,
        report.generated_reports,
        report.delivered_reports,
        report.events_total,
        report.events_detected,
        report.events_delivered
    ));
    out.push_str(&format!(
        ",\"end_secs\":{},\"events_processed\":{}}}",
        fmt_f64(report.end_secs),
        report.events_processed
    ));
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers stay as raw source text so typed decodes
/// can parse them losslessly (`u64` never detours through `f64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses one JSON document (with nothing but whitespace after it).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == want {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", want as char))
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'{' => parse_object(src, bytes, pos),
        b'[' => parse_array(src, bytes, pos),
        b'"' => Ok(Json::Str(parse_string(src, bytes, pos)?)),
        b'n' => parse_keyword(bytes, pos, "null", Json::Null),
        b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        b'-' | b'0'..=b'9' => parse_number(src, bytes, pos),
        other => Err(format!("unexpected `{}` at byte {pos}", other as char)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed keyword at byte {pos}"))
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at byte {start}"));
    }
    Ok(Json::Num(src[start..*pos].to_string()))
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = src
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code}"))?,
                        );
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Consume one full UTF-8 scalar, not one byte.
                let rest = &src[*pos..];
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "invalid UTF-8".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(src, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(src, bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(src, bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Typed decoding
// ---------------------------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn as_u64(v: &Json, key: &str) -> Result<u64, String> {
    match v {
        Json::Num(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("field `{key}`: `{raw}` is not a u64")),
        other => Err(format!(
            "field `{key}`: expected number, got {}",
            other.type_name()
        )),
    }
}

fn as_usize(v: &Json, key: &str) -> Result<usize, String> {
    as_u64(v, key)
        .and_then(|n| usize::try_from(n).map_err(|_| format!("field `{key}`: {n} exceeds usize")))
}

fn as_f64(v: &Json, key: &str) -> Result<f64, String> {
    match v {
        Json::Num(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("field `{key}`: `{raw}` is not a float")),
        other => Err(format!(
            "field `{key}`: expected number, got {}",
            other.type_name()
        )),
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    as_u64(field(obj, key)?, key)
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, String> {
    as_usize(field(obj, key)?, key)
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, String> {
    as_f64(field(obj, key)?, key)
}

fn decode_sample(v: &Json) -> Result<Sample, String> {
    let coverage = match field(v, "coverage")? {
        Json::Arr(items) => items
            .iter()
            .map(|c| as_f64(c, "coverage"))
            .collect::<Result<Vec<f64>, String>>()?,
        other => {
            return Err(format!(
                "field `coverage`: expected array, got {}",
                other.type_name()
            ))
        }
    };
    let delivery_ratio = match field(v, "delivery_ratio")? {
        Json::Null => None,
        num => Some(as_f64(num, "delivery_ratio")?),
    };
    Ok(Sample {
        t_secs: get_f64(v, "t_secs")?,
        coverage,
        working: get_usize(v, "working")?,
        sleeping: get_usize(v, "sleeping")?,
        alive: get_usize(v, "alive")?,
        delivery_ratio,
        total_wakeups: get_u64(v, "total_wakeups")?,
    })
}

fn decode_node_stats(v: &Json) -> Result<NodeStats, String> {
    Ok(NodeStats {
        wakeups: get_u64(v, "wakeups")?,
        probes_sent: get_u64(v, "probes_sent")?,
        replies_sent: get_u64(v, "replies_sent")?,
        probes_heard: get_u64(v, "probes_heard")?,
        replies_heard: get_u64(v, "replies_heard")?,
        measurements: get_u64(v, "measurements")?,
        window_with_reply: get_u64(v, "window_with_reply")?,
        window_silent: get_u64(v, "window_silent")?,
        turnoffs: get_u64(v, "turnoffs")?,
        replies_overheard: get_u64(v, "replies_overheard")?,
    })
}

fn decode_ledger(v: &Json) -> Result<EnergyLedger, String> {
    let mut ledger = EnergyLedger::new();
    for (cause, key) in LEDGER_KEYS {
        let joules = get_f64(v, key)?;
        if !(joules.is_finite() && joules >= 0.0) {
            return Err(format!("field `{key}`: energy {joules} out of range"));
        }
        ledger.add(cause, joules);
    }
    Ok(ledger)
}

fn decode_medium(v: &Json) -> Result<MediumStats, String> {
    Ok(MediumStats {
        frames_sent: get_u64(v, "frames_sent")?,
        deliveries_ok: get_u64(v, "deliveries_ok")?,
        collisions: get_u64(v, "collisions")?,
        random_losses: get_u64(v, "random_losses")?,
    })
}

/// Decodes a report from its canonical schema-1 form (see
/// [`encode_report`]).
///
/// # Errors
///
/// Returns a description of the first syntax error, missing field, type
/// mismatch, or schema-version mismatch.
pub fn decode_report(src: &str) -> Result<RunReport, String> {
    decode_report_value(&parse_json(src)?)
}

/// Decodes a report from an already-parsed JSON object.
///
/// # Errors
///
/// As [`decode_report`], minus syntax errors.
pub fn decode_report_value(v: &Json) -> Result<RunReport, String> {
    let schema = get_u64(v, "schema")?;
    if schema != REPORT_SCHEMA {
        return Err(format!(
            "unsupported report schema {schema} (this build reads schema {REPORT_SCHEMA})"
        ));
    }
    let samples = match field(v, "samples")? {
        Json::Arr(items) => items
            .iter()
            .map(decode_sample)
            .collect::<Result<Vec<Sample>, String>>()?,
        other => {
            return Err(format!(
                "field `samples`: expected array, got {}",
                other.type_name()
            ))
        }
    };
    Ok(RunReport {
        node_count: get_usize(v, "node_count")?,
        seed: get_u64(v, "seed")?,
        samples,
        node_stats: decode_node_stats(field(v, "node_stats")?)?,
        ledger: decode_ledger(field(v, "ledger_j")?)?,
        consumed_j: get_f64(v, "consumed_j")?,
        medium: decode_medium(field(v, "medium")?)?,
        failures_injected: get_u64(v, "failures_injected")?,
        energy_deaths: get_u64(v, "energy_deaths")?,
        generated_reports: get_u64(v, "generated_reports")?,
        delivered_reports: get_u64(v, "delivered_reports")?,
        events_total: get_u64(v, "events_total")?,
        events_detected: get_u64(v, "events_detected")?,
        events_delivered: get_u64(v, "events_delivered")?,
        end_secs: get_f64(v, "end_secs")?,
        events_processed: get_u64(v, "events_processed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_and_nesting() {
        let v = parse_json(r#"{"a":[1,-2.5e3,null,true,"x\"y"],"b":{}}"#).expect("parses");
        let a = v.get("a").expect("a");
        match a {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num("1".to_string()));
                assert_eq!(items[1], Json::Num("-2.5e3".to_string()));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3], Json::Bool(true));
                assert_eq!(items[4], Json::Str("x\"y".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("b"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{}x").is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", json_escape(nasty));
        assert_eq!(
            parse_json(&doc).expect("parses"),
            Json::Str(nasty.to_string())
        );
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &v in &[
            0.0,
            1.0,
            0.1,
            1e-12,
            123456.789,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
        ] {
            let text = fmt_f64(v);
            let back: f64 = text.parse().expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{text} did not round-trip");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_rejected_at_encode() {
        let _ = fmt_f64(f64::NAN);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let err = decode_report(r#"{"schema":2}"#).expect_err("must reject");
        assert!(err.contains("unsupported report schema 2"), "{err}");
    }
}
