//! The content-addressed result cache behind the sweep service:
//! [`ResultCache`] + [`SweepPlan`].
//!
//! PR 5's sweep journal already keys every completed run by **config
//! fingerprint + seed** ([`ShardKey`]); this module promotes that embryo
//! into a *global*, long-lived store that many sweeps (and many clients)
//! share. A submitted sweep is expanded to a [`SweepPlan`], every shard
//! is looked up in the cache, and only the **novel** keys are executed —
//! a re-submitted sweep runs zero shards, an overlapping sweep runs only
//! its new grid points. Deterministic replay is what makes this sound: a
//! cache hit is provably byte-identical to a cold re-run of the same
//! shard (pinned by `crates/sim/tests/cache_equiv.rs`).
//!
//! ## Record format
//!
//! The store is a directory of append-only `cache-<writer>.jsonl`
//! segments reusing the schema-1 wire form and the torn-tail append rule
//! from [`crate::session`] (DESIGN.md §7), with one addition: every
//! record carries a checksum of its own body, so *any* corruption — a
//! flipped bit, a truncated write, a fused line — is detected instead of
//! served:
//!
//! ```text
//! {"check":"0x…","fingerprint":"0x…","seed":N,"label":"…","report":{"schema":1,…}}
//! ```
//!
//! `check` is FNV-1a over the raw bytes between `"check":"…",` and the
//! closing `}` — exactly the bytes that carry the record's meaning. A
//! plain journal tolerates torn tails because they fail to *parse*; a
//! shared cache must also survive records that still parse but no longer
//! mean what was written (bit rot, partial overwrites). The checksum
//! closes that gap.
//!
//! ## Quarantine
//!
//! [`ResultCache::scan`] classifies every damaged line: a newline-less
//! final line is a **torn tail** (the expected artifact of a killed
//! writer — silently dropped, exactly like the journal), while any other
//! unreadable or checksum-mismatched record is **quarantined**: logged
//! once to `quarantine.jsonl` (with its segment, line number, reason and
//! a hash of the raw bytes) and excluded from the scan. Either way the
//! affected shard simply stops being cached and re-runs; the store never
//! serves garbage. Corruption handling is pinned by the proptests in
//! `crates/sim/tests/cache_store.rs`.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use peas_des::{DetMap, DetSet};

use crate::config::ScenarioConfig;
use crate::metrics::RunReport;
use crate::report_json::{decode_report_value, encode_report, json_escape, parse_json, Json};
use crate::runner::Runner;
use crate::session::{
    enumerate_shards, fnv1a, open_segment_for_append, SessionError, Shard, ShardKey,
};

/// The leading frame of every cache record: `{"check":"0x` + 16 hex
/// digits + `",` + body + `}`.
const CHECK_PREFIX: &str = "{\"check\":\"0x";
/// Hex digits in the checksum field (`{:#018X}` minus the `0x` prefix).
const CHECK_HEX_LEN: usize = 16;

/// Renders one cache record (newline-terminated): the journal's schema-1
/// body prefixed with a checksum over the body's exact bytes.
pub fn encode_cache_line(key: ShardKey, label: &str, report: &RunReport) -> String {
    let body = format!(
        "\"fingerprint\":\"{:#018X}\",\"seed\":{},\"label\":\"{}\",\"report\":{}",
        key.fingerprint,
        key.seed,
        json_escape(label),
        encode_report(report)
    );
    format!(
        "{{\"check\":\"{:#018X}\",{body}}}\n",
        fnv1a(body.as_bytes())
    )
}

/// The outcome of decoding one cache line.
#[derive(Debug)]
pub enum CacheRecord {
    /// A verified record: checksum and schema both check out.
    Entry {
        /// The record's content address.
        key: ShardKey,
        /// The human-readable label carried at append time.
        label: String,
        /// The cached report (boxed: a report is ~300 bytes of inline
        /// fields, a damage reason is one `String`).
        report: Box<RunReport>,
    },
    /// The line is unreadable or fails its checksum; the reason is a
    /// stable human-readable message (logged to the quarantine file).
    Damaged {
        /// Why the record was rejected.
        reason: String,
    },
}

fn damaged(reason: impl Into<String>) -> CacheRecord {
    CacheRecord::Damaged {
        reason: reason.into(),
    }
}

/// Decodes one cache line, verifying the checksum over the body's raw
/// bytes before trusting any field. Never panics on arbitrary input —
/// any malformation comes back as [`CacheRecord::Damaged`].
pub fn decode_cache_line(line: &str) -> CacheRecord {
    let Some(rest) = line.strip_prefix(CHECK_PREFIX) else {
        return damaged("missing checksum frame");
    };
    let (Some(hex), Some(after_hex)) = (rest.get(..CHECK_HEX_LEN), rest.get(CHECK_HEX_LEN..))
    else {
        return damaged("truncated checksum frame");
    };
    let Ok(check) = u64::from_str_radix(hex, 16) else {
        return damaged("malformed checksum hex");
    };
    let Some(with_brace) = after_hex.strip_prefix("\",") else {
        return damaged("missing body separator");
    };
    let Some(body) = with_brace.strip_suffix('}') else {
        return damaged("missing closing brace");
    };
    let got = fnv1a(body.as_bytes());
    if got != check {
        return damaged(format!(
            "checksum mismatch: recorded {check:#018X}, computed {got:#018X}"
        ));
    }
    // The checksum matched, so the body is exactly what a writer
    // flushed; parse it with the same rules as a journal line.
    let Ok(value) = parse_json(&format!("{{{body}}}")) else {
        return damaged("checksummed body fails to parse");
    };
    let fingerprint = match value.get("fingerprint") {
        Some(Json::Str(hex)) => match hex.strip_prefix("0x").map(|h| u64::from_str_radix(h, 16)) {
            Some(Ok(f)) => f,
            _ => return damaged("malformed fingerprint"),
        },
        _ => return damaged("missing fingerprint"),
    };
    let seed = match value.get("seed") {
        Some(Json::Num(raw)) => match raw.parse::<u64>() {
            Ok(s) => s,
            Err(_) => return damaged("malformed seed"),
        },
        _ => return damaged("missing seed"),
    };
    let label = match value.get("label") {
        Some(Json::Str(label)) => label.clone(),
        _ => return damaged("missing label"),
    };
    let report = match value.get("report").map(decode_report_value) {
        Some(Ok(report)) => report,
        Some(Err(e)) => return damaged(format!("report decode failed: {e}")),
        None => return damaged("missing report"),
    };
    CacheRecord::Entry {
        key: ShardKey { fingerprint, seed },
        label,
        report: Box::new(report),
    }
}

/// A point-in-time view of the whole store: every verified entry plus
/// the damage accounting of the scan that produced it.
#[derive(Debug)]
pub struct CacheScan {
    /// Every verified record, keyed by content address (first valid
    /// occurrence in sorted-segment order wins; runs are deterministic,
    /// so duplicates are byte-identical anyway).
    pub entries: DetMap<ShardKey, RunReport>,
    /// Segment files scanned.
    pub segments: usize,
    /// Verified records seen (including key duplicates).
    pub records: usize,
    /// Damaged interior records quarantined (this scan's count, whether
    /// or not they were already in the quarantine log).
    pub quarantined: usize,
    /// Newline-less torn tails skipped (killed-writer artifacts; not
    /// quarantined).
    pub torn: usize,
}

impl Default for CacheScan {
    fn default() -> CacheScan {
        CacheScan {
            entries: DetMap::new(),
            segments: 0,
            records: 0,
            quarantined: 0,
            torn: 0,
        }
    }
}

impl CacheScan {
    /// Looks up the cached report for `key`.
    pub fn get(&self, key: &ShardKey) -> Option<&RunReport> {
        self.entries.get(key)
    }

    /// Number of distinct cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no verified entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A directory-backed content-addressed store of completed
/// `ShardKey → RunReport` entries. See the module docs for the record
/// format and damage rules.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The segment file writer slot `writer` appends to.
    pub fn segment_path(&self, writer: usize) -> PathBuf {
        self.dir.join(format!("cache-{writer}.jsonl"))
    }

    /// The quarantine log (damaged records, one JSON line each).
    pub fn quarantine_path(&self) -> PathBuf {
        self.dir.join("quarantine.jsonl")
    }

    /// Opens an append handle for writer slot `writer`, truncating any
    /// torn tail first (the journal's append-after-tear rule).
    ///
    /// # Errors
    ///
    /// Propagates segment open/seek failures.
    pub fn writer(&self, writer: usize) -> io::Result<CacheWriter> {
        Ok(CacheWriter {
            file: open_segment_for_append(&self.segment_path(writer))?,
        })
    }

    /// Scans every segment, verifying each record's checksum, and
    /// returns the store's verified contents. Damaged interior records
    /// are appended to the quarantine log (once per distinct raw line);
    /// torn tails are skipped silently, exactly like the sweep journal.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading segments or appending to the
    /// quarantine log.
    pub fn scan(&self) -> io::Result<CacheScan> {
        let mut segments: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.extension().is_some_and(|ext| ext == "jsonl")
                    && p.file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with("cache-"))
            })
            .collect();
        segments.sort();

        let mut scan = CacheScan {
            segments: segments.len(),
            ..CacheScan::default()
        };
        let mut logged = self.quarantined_hashes()?;
        let mut quarantine: Option<fs::File> = None;
        for segment in &segments {
            // Read raw bytes, not a String: corruption can produce
            // invalid UTF-8, and one rotten record must not make the
            // whole store unreadable. Each line is converted lossily;
            // any replacement character changes the body's bytes, so
            // the checksum rejects it like any other damage.
            let bytes = fs::read(segment)?;
            if bytes.is_empty() {
                continue;
            }
            let ends_clean = bytes.last() == Some(&b'\n');
            let mut raw_lines: Vec<&[u8]> = bytes.split(|b| *b == b'\n').collect();
            if ends_clean {
                raw_lines.pop();
            }
            let lines = raw_lines;
            for (lineno, raw) in lines.iter().enumerate() {
                let line: &str = &String::from_utf8_lossy(raw);
                match decode_cache_line(line) {
                    CacheRecord::Entry { key, report, .. } => {
                        scan.records += 1;
                        if scan.entries.get(&key).is_none() {
                            scan.entries.insert(key, *report);
                        }
                    }
                    CacheRecord::Damaged { reason } => {
                        let is_torn_tail = lineno + 1 == lines.len() && !ends_clean;
                        if is_torn_tail {
                            scan.torn += 1;
                            continue;
                        }
                        scan.quarantined += 1;
                        let raw_hash = fnv1a(raw);
                        if logged.insert(raw_hash) {
                            let out = match &mut quarantine {
                                Some(f) => f,
                                None => quarantine
                                    .insert(open_segment_for_append(&self.quarantine_path())?),
                            };
                            let name = segment
                                .file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_default();
                            writeln!(
                                out,
                                "{{\"segment\":\"{}\",\"line\":{},\"reason\":\"{}\",\
                                 \"raw_hash\":\"{raw_hash:#018X}\",\"raw\":\"{}\"}}",
                                json_escape(&name),
                                lineno + 1,
                                json_escape(&reason),
                                json_escape(line)
                            )?;
                            out.flush()?;
                        }
                    }
                }
            }
        }
        Ok(scan)
    }

    /// Raw-line hashes already present in the quarantine log (so a
    /// damaged record is logged once, not once per scan).
    fn quarantined_hashes(&self) -> io::Result<DetSet<u64>> {
        let mut hashes = DetSet::new();
        let text = match fs::read_to_string(self.quarantine_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(hashes),
            Err(e) => return Err(e),
        };
        for line in text.lines() {
            if let Ok(value) = parse_json(line) {
                if let Some(Json::Str(hex)) = value.get("raw_hash") {
                    if let Some(Ok(h)) = hex.strip_prefix("0x").map(|h| u64::from_str_radix(h, 16))
                    {
                        hashes.insert(h);
                    }
                }
            }
        }
        Ok(hashes)
    }

    /// Executes `shards` on a bounded pool of `workers` threads, each
    /// appending verified records to its own segment (writer slot =
    /// thread index) and flushing after every shard — a SIGKILL at any
    /// moment leaves at most one torn tail per writer. Workers pull the
    /// next un-started shard from a shared counter. Returns the number
    /// of shards executed (always `shards.len()` on success).
    ///
    /// The caller decides *which* shards to run — typically
    /// [`SweepPlan::novel`] — so this function is also the fault-
    /// injection point: passing a prefix of the novel list and then
    /// killing the process models a service dying mid-sweep.
    ///
    /// # Errors
    ///
    /// Propagates the first segment-append failure.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0, or if a simulation run itself panics.
    pub fn execute(&self, shards: &[Shard], workers: usize) -> io::Result<usize> {
        assert!(workers >= 1, "need at least one worker thread");
        if shards.is_empty() {
            return Ok(0);
        }
        let workers = workers.min(shards.len());
        if workers == 1 {
            let mut writer = self.writer(0)?;
            for shard in shards {
                let report = Runner::new(shard.config.clone()).run_single();
                writer.append(shard.key, &shard.label, &report)?;
            }
            return Ok(shards.len());
        }
        let next = AtomicUsize::new(0);
        let first_err: Mutex<Option<io::Error>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for wi in 0..workers {
                let (next, first_err) = (&next, &first_err);
                scope.spawn(move || {
                    let mut writer: Option<CacheWriter> = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(i) else {
                            return;
                        };
                        let report = Runner::new(shard.config.clone()).run_single();
                        let step = (|| -> io::Result<()> {
                            let out = match &mut writer {
                                Some(w) => w,
                                None => writer.insert(self.writer(wi)?),
                            };
                            out.append(shard.key, &shard.label, &report)
                        })();
                        if let Err(e) = step {
                            let mut slot = first_err
                                .lock()
                                .unwrap_or_else(|poison| poison.into_inner());
                            slot.get_or_insert(e);
                            return;
                        }
                    }
                });
            }
        });
        match first_err
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
        {
            Some(e) => Err(e),
            None => Ok(shards.len()),
        }
    }
}

/// An append handle to one cache segment. Dropping it is always safe:
/// every append flushes, so the worst crash artifact is one torn tail.
#[derive(Debug)]
pub struct CacheWriter {
    file: fs::File,
}

impl CacheWriter {
    /// Appends one verified record and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures.
    pub fn append(&mut self, key: ShardKey, label: &str, report: &RunReport) -> io::Result<()> {
        self.file
            .write_all(encode_cache_line(key, label, report).as_bytes())?;
        self.file.flush()
    }
}

/// A sweep expanded against the cache: the full shard enumeration of a
/// submission, with cache-aware views (novel shards, merged reports).
/// Shard numbering is identical to [`crate::session::SweepSession`]'s —
/// the two stores are interchangeable descriptions of the same runs.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    shards: Vec<Shard>,
}

impl SweepPlan {
    /// Enumerates `(label, config)` runs as shards in input order.
    pub fn new(runs: Vec<(String, ScenarioConfig)>) -> SweepPlan {
        SweepPlan {
            shards: enumerate_shards(runs),
        }
    }

    /// The plan's shards, in enumeration (= merge) order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards in the plan.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True for an empty plan.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shards `scan` cannot serve, deduplicated by key (first
    /// occurrence wins), in enumeration order — exactly the set a
    /// scheduler must execute to complete this plan. A plan fully
    /// covered by the cache returns an empty list: re-submitting an
    /// already-completed sweep runs zero shards.
    pub fn novel(&self, scan: &CacheScan) -> Vec<Shard> {
        let mut seen: DetSet<ShardKey> = DetSet::new();
        self.shards
            .iter()
            .filter(|shard| scan.get(&shard.key).is_none() && seen.insert(shard.key))
            .cloned()
            .collect()
    }

    /// Shards `scan` can already serve (the dedup hits), counted over
    /// the full enumeration (a key cached once satisfies every shard
    /// that carries it).
    pub fn cached(&self, scan: &CacheScan) -> usize {
        self.shards
            .iter()
            .filter(|shard| scan.get(&shard.key).is_some())
            .count()
    }

    /// Merges the cache into this plan's reports, in shard-enumeration
    /// order — the exact `Vec<RunReport>` an uninterrupted
    /// `Runner::configs(..).run()` over the same enumeration returns.
    ///
    /// # Errors
    ///
    /// [`SessionError::Incomplete`] when keys are missing from the scan
    /// (their enumeration indices are listed).
    pub fn merged(&self, scan: &CacheScan) -> Result<Vec<RunReport>, SessionError> {
        let mut missing = Vec::new();
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            match scan.get(&shard.key) {
                Some(report) => reports.push(report.clone()),
                None => missing.push(shard.index),
            }
        }
        if missing.is_empty() {
            Ok(reports)
        } else {
            Err(SessionError::Incomplete { missing })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::time::SimTime;

    fn tiny(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::small();
        c.node_count = 25;
        c.horizon = SimTime::from_secs(300);
        c.with_seed(seed)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("peas-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_line_round_trips_and_rejects_any_flip() {
        let report = Runner::new(tiny(1)).run_single();
        let key = ShardKey {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            seed: 1,
        };
        let line = encode_cache_line(key, "n=25 \"quoted\"", &report);
        let trimmed = line.trim_end();
        match decode_cache_line(trimmed) {
            CacheRecord::Entry {
                key: k,
                label,
                report: back,
            } => {
                assert_eq!(k, key);
                assert_eq!(label, "n=25 \"quoted\"");
                assert_eq!(*back, report);
            }
            CacheRecord::Damaged { reason } => panic!("pristine line rejected: {reason}"),
        }
        // Flip one bit somewhere in the middle of the body: must be
        // detected by the checksum, not decoded into a wrong report.
        let mut bytes = trimmed.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        assert!(
            matches!(decode_cache_line(&corrupted), CacheRecord::Damaged { .. }),
            "flipped record must be rejected"
        );
        // Truncations at any point are rejected too.
        for cut in [1, CHECK_PREFIX.len() + 4, trimmed.len() / 2] {
            assert!(matches!(
                decode_cache_line(&trimmed[..cut]),
                CacheRecord::Damaged { .. }
            ));
        }
    }

    #[test]
    fn plan_dedups_and_merges_against_the_store() {
        let dir = temp_dir("plan");
        let cache = ResultCache::open(&dir).expect("open");
        let plan = SweepPlan::new(vec![
            ("s1".to_string(), tiny(1)),
            ("s2".to_string(), tiny(2)),
            // An exact duplicate of shard 0: same key, must not run twice.
            ("s1-dup".to_string(), tiny(1)),
        ]);
        let scan = cache.scan().expect("scan empty");
        assert!(scan.is_empty());
        let novel = plan.novel(&scan);
        assert_eq!(novel.len(), 2, "duplicate key deduped within the plan");
        assert_eq!(cache.execute(&novel, 2).expect("execute"), 2);

        let scan = cache.scan().expect("rescan");
        assert_eq!(scan.len(), 2);
        assert_eq!(plan.cached(&scan), 3);
        assert!(plan.novel(&scan).is_empty(), "resubmission runs nothing");
        let merged = plan.merged(&scan).expect("complete");
        assert_eq!(merged.len(), 3);
        assert_eq!(
            encode_report(&merged[0]),
            encode_report(&merged[2]),
            "duplicate shards share one cached report"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_but_interior_damage_is_quarantined() {
        let dir = temp_dir("damage");
        let cache = ResultCache::open(&dir).expect("open");
        let plan = SweepPlan::new(vec![
            ("s1".to_string(), tiny(1)),
            ("s2".to_string(), tiny(2)),
        ]);
        let scan = cache.scan().expect("scan");
        cache.execute(&plan.novel(&scan), 1).expect("execute");

        // Corrupt record 1 (interior) and tear record 2 (tail).
        let segment = cache.segment_path(0);
        let text = fs::read_to_string(&segment).expect("read segment");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let mut first = lines[0].to_string();
        // Swap a digit inside the first record's body.
        let flip = first.len() - 10;
        first.replace_range(flip..=flip, "~");
        let torn = &lines[1][..lines[1].len() / 2];
        fs::write(&segment, format!("{first}\n{torn}")).expect("rewrite");

        let scan = cache.scan().expect("scan damaged");
        assert_eq!(scan.len(), 0, "neither record is served");
        assert_eq!(scan.quarantined, 1, "interior damage quarantined");
        assert_eq!(scan.torn, 1, "torn tail skipped silently");
        let qlog = fs::read_to_string(cache.quarantine_path()).expect("quarantine log");
        assert_eq!(qlog.lines().count(), 1);
        assert!(qlog.contains("checksum mismatch") || qlog.contains("missing"));

        // A rescan does not double-log the same damaged line.
        let again = cache.scan().expect("rescan");
        assert_eq!(again.quarantined, 1);
        assert_eq!(
            fs::read_to_string(cache.quarantine_path())
                .expect("quarantine log")
                .lines()
                .count(),
            1
        );

        // Both shards re-run (the torn append truncates the tail first)
        // and the store converges to a fully-served plan.
        let novel = plan.novel(&again);
        assert_eq!(novel.len(), 2);
        cache.execute(&novel, 1).expect("re-execute");
        let scan = cache.scan().expect("final scan");
        assert!(plan.novel(&scan).is_empty());
        assert!(plan.merged(&scan).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
