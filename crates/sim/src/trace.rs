//! Protocol tracing: observe what every node does, as it happens.
//!
//! Debugging a sleep-scheduling protocol means asking questions like "why
//! did this pair of neighbors both work for 600 s?" — which requires the
//! sequence of mode changes, frames and deaths, not just periodic
//! aggregates. A [`TraceSink`] receives every such event; attach one with
//! [`crate::World::set_trace`]. The `peas-simulate` binary exposes this as
//! `--trace FILE` (CSV).

use peas::Mode;
use peas_des::time::SimTime;

/// Why a node died.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeathKind {
    /// Injected failure (Section 5.2's failure model).
    Failure,
    /// Battery depletion.
    Energy,
}

/// What kind of frame a node put on the air.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A PEAS PROBE.
    Probe,
    /// A PEAS REPLY.
    Reply,
    /// A GRAB cost-field advertisement.
    Adv,
    /// A GRAB data report.
    Report,
}

/// One observable occurrence in the simulated network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A sensor changed operation mode.
    ModeChange {
        /// The sensor.
        node: u32,
        /// Previous mode.
        from: Mode,
        /// New mode.
        to: Mode,
    },
    /// A sensor died.
    Death {
        /// The sensor.
        node: u32,
        /// Failure injection or battery depletion.
        cause: DeathKind,
    },
    /// A node (sensor or infrastructure) started a broadcast.
    FrameSent {
        /// The transmitting node (sensor index, or source/sink index).
        node: u32,
        /// What was sent.
        kind: FrameKind,
        /// Intended transmission range, meters.
        range: f64,
    },
}

impl TraceEvent {
    /// A stable one-line CSV rendering: `t_secs,event,node,detail`.
    pub fn to_csv_row(&self, t: SimTime) -> String {
        let t = t.as_secs_f64();
        match *self {
            TraceEvent::ModeChange { node, from, to } => {
                format!("{t:.6},mode,{node},{from:?}->{to:?}")
            }
            TraceEvent::Death { node, cause } => {
                format!("{t:.6},death,{node},{cause:?}")
            }
            TraceEvent::FrameSent { node, kind, range } => {
                format!("{t:.6},frame,{node},{kind:?}@{range}")
            }
        }
    }
}

/// Receives trace events in simulation order.
pub trait TraceSink {
    /// Called once per event, in nondecreasing `t` order.
    fn record(&mut self, t: SimTime, event: &TraceEvent);
}

/// Every closure of the right shape is a sink.
impl<F: FnMut(SimTime, &TraceEvent)> TraceSink for F {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        self(t, event)
    }
}

/// A sink that counts events by kind — cheap enough to leave attached.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceCounts {
    /// Mode changes observed.
    pub mode_changes: u64,
    /// Deaths observed.
    pub deaths: u64,
    /// Frames observed, by kind: probe, reply, adv, report.
    pub frames: [u64; 4],
}

impl TraceSink for TraceCounts {
    fn record(&mut self, _t: SimTime, event: &TraceEvent) {
        match event {
            TraceEvent::ModeChange { .. } => self.mode_changes += 1,
            TraceEvent::Death { .. } => self.deaths += 1,
            TraceEvent::FrameSent { kind, .. } => {
                let idx = match kind {
                    FrameKind::Probe => 0,
                    FrameKind::Reply => 1,
                    FrameKind::Adv => 2,
                    FrameKind::Report => 3,
                };
                self.frames[idx] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rows_are_stable() {
        let t = SimTime::from_secs(2);
        let row = TraceEvent::ModeChange {
            node: 7,
            from: Mode::Sleeping,
            to: Mode::Probing,
        }
        .to_csv_row(t);
        assert_eq!(row, "2.000000,mode,7,Sleeping->Probing");
        let row = TraceEvent::Death {
            node: 3,
            cause: DeathKind::Energy,
        }
        .to_csv_row(t);
        assert_eq!(row, "2.000000,death,3,Energy");
        let row = TraceEvent::FrameSent {
            node: 1,
            kind: FrameKind::Probe,
            range: 3.0,
        }
        .to_csv_row(t);
        assert_eq!(row, "2.000000,frame,1,Probe@3");
    }

    #[test]
    fn counting_sink_tallies() {
        let mut counts = TraceCounts::default();
        let t = SimTime::ZERO;
        counts.record(
            t,
            &TraceEvent::FrameSent {
                node: 0,
                kind: FrameKind::Reply,
                range: 3.0,
            },
        );
        counts.record(
            t,
            &TraceEvent::Death {
                node: 0,
                cause: DeathKind::Failure,
            },
        );
        counts.record(
            t,
            &TraceEvent::ModeChange {
                node: 0,
                from: Mode::Probing,
                to: Mode::Working,
            },
        );
        assert_eq!(counts.frames, [0, 1, 0, 0]);
        assert_eq!(counts.deaths, 1);
        assert_eq!(counts.mode_changes, 1);
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0u32;
        {
            let mut sink = |_t: SimTime, _e: &TraceEvent| seen += 1;
            sink.record(
                SimTime::ZERO,
                &TraceEvent::Death {
                    node: 0,
                    cause: DeathKind::Energy,
                },
            );
        }
        assert_eq!(seen, 1);
    }
}
