//! Sharded, checkpointed sweep execution: [`SweepSession`].
//!
//! A session deterministically enumerates the (config, seed) runs of a
//! sweep as numbered *shards* and journals every completed [`RunReport`]
//! to an append-only JSON-lines checkpoint, keyed by **config
//! fingerprint + seed**. A restarted session re-reads the journal and
//! skips every
//! already-journaled shard, so a sweep that dies at 90% loses one
//! in-flight run, not the whole grid — the same robustness-under-failure
//! stance PEAS itself takes for sensor nodes (Section 3.3).
//!
//! Layout: the journal is a directory of `worker-<i>.jsonl` segment
//! files, one per worker slot. Each line is
//!
//! ```text
//! {"fingerprint":"0x…","seed":N,"label":"…","report":{"schema":1,…}}
//! ```
//!
//! with the report in the canonical [`crate::report_json`] form. Workers
//! only ever append to their own segment and flush after every shard, so
//! concurrent worker *processes* never interleave bytes, and a worker
//! killed mid-write leaves at most one torn final line — which the
//! journal scan detects (it fails to parse) and ignores, causing exactly
//! that shard to be re-run on resume.
//!
//! Merging is positional and deterministic: [`SweepSession::merged`]
//! returns reports in shard-enumeration order, deduplicating journal
//! entries by key (first occurrence in sorted-segment order wins; runs
//! are deterministic, so duplicates are byte-identical anyway). A merged
//! resumed sweep is therefore byte-identical to an uninterrupted run —
//! pinned by `tests/sweep_resume.rs` and the `sweep-resume` CI job.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use peas_des::DetMap;

use crate::config::ScenarioConfig;
use crate::metrics::RunReport;
use crate::report_json::{decode_report_value, encode_report, json_escape, parse_json, Json};
use crate::runner::Runner;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over an arbitrary byte string — the workspace's one
/// non-cryptographic content hash, shared by [`config_fingerprint`] and
/// the result cache's record checksums ([`crate::cache`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The checkpoint identity of a sweep run: the fingerprint of its config
/// (seed excluded) plus the seed. Two shards with equal keys are the same
/// deterministic run and may share a journal entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardKey {
    /// [`config_fingerprint`] of the shard's config.
    pub fingerprint: u64,
    /// The run's master seed.
    pub seed: u64,
}

/// One unit of sweep work: a fully-resolved config plus its stable
/// position in the sweep enumeration.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Position in the sweep enumeration (also the merge order).
    pub index: usize,
    /// Human-readable label (carried into the journal for debuggability).
    pub label: String,
    /// The fully-resolved configuration.
    pub config: ScenarioConfig,
    /// The checkpoint key.
    pub key: ShardKey,
}

/// A stable fingerprint of a scenario config **excluding its seed** (the
/// seed is tracked separately in the [`ShardKey`]). Computed as FNV-1a
/// over the config's canonical debug rendering, so any parameter change —
/// field size, ranges, rates, horizon — yields a new fingerprint and
/// stale journal entries simply stop matching (their shards re-run).
pub fn config_fingerprint(config: &ScenarioConfig) -> u64 {
    let canonical = format!("{:?}", config.clone().with_seed(0));
    fnv1a(canonical.as_bytes())
}

/// Enumerates `(label, config)` runs as [`Shard`]s in input order — the
/// single shard-numbering rule shared by [`SweepSession`] journals and
/// the content-addressed result cache ([`crate::cache::SweepPlan`]).
pub fn enumerate_shards(runs: Vec<(String, ScenarioConfig)>) -> Vec<Shard> {
    runs.into_iter()
        .enumerate()
        .map(|(index, (label, config))| {
            let key = ShardKey {
                fingerprint: config_fingerprint(&config),
                seed: config.seed,
            };
            Shard {
                index,
                label,
                config,
                key,
            }
        })
        .collect()
}

/// Why a session operation failed.
#[derive(Debug)]
pub enum SessionError {
    /// The journal directory or a segment file could not be read/written.
    Io(io::Error),
    /// A merge was requested while shards are still missing from the
    /// journal (their enumeration indices, in order).
    Incomplete {
        /// Enumeration indices of the shards not yet journaled.
        missing: Vec<usize>,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "journal I/O error: {e}"),
            SessionError::Incomplete { missing } => write!(
                f,
                "sweep incomplete: {} shard(s) not journaled (indices {missing:?})",
                missing.len()
            ),
        }
    }
}

impl From<io::Error> for SessionError {
    fn from(e: io::Error) -> SessionError {
        SessionError::Io(e)
    }
}

/// A sharded, resumable sweep over a fixed, deterministically-enumerated
/// run list, checkpointed to a journal directory.
///
/// ```no_run
/// use peas_sim::{ScenarioConfig, SweepSession};
///
/// let runs = vec![
///     ("n=30".to_string(), ScenarioConfig::small().with_seed(1)),
///     ("n=30 s2".to_string(), ScenarioConfig::small().with_seed(2)),
/// ];
/// let session = SweepSession::create("target/sweep-journal", runs)?;
/// session.run_worker(0, 1, None)?; // runs only what the journal lacks
/// let reports = session.merged().expect("complete");
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct SweepSession {
    dir: PathBuf,
    shards: Vec<Shard>,
}

impl SweepSession {
    /// Opens (creating if needed) the journal directory `dir` for the
    /// given `(label, config)` runs, enumerated as shards in input order.
    /// An existing journal is *kept* — that is the resume path; pass a
    /// fresh directory for a from-scratch sweep.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(
        dir: impl Into<PathBuf>,
        runs: Vec<(String, ScenarioConfig)>,
    ) -> io::Result<SweepSession> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let shards = enumerate_shards(runs);
        Ok(SweepSession { dir, shards })
    }

    /// The journal directory.
    pub fn journal_dir(&self) -> &Path {
        &self.dir
    }

    /// The sweep's shards, in enumeration (= merge) order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The segment file worker slot `worker` appends to.
    pub fn segment_path(&self, worker: usize) -> PathBuf {
        self.dir.join(format!("worker-{worker}.jsonl"))
    }

    /// Scans every journal segment and returns the completed runs, keyed
    /// by [`ShardKey`]. Lines that fail to parse (torn tails of a killed
    /// worker) and entries keyed to no current shard (stale configs) are
    /// ignored; duplicate keys keep the first occurrence in sorted
    /// segment-file order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading the journal directory.
    pub fn completed(&self) -> io::Result<DetMap<ShardKey, RunReport>> {
        let mut segments: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        segments.sort();
        let mut done: DetMap<ShardKey, RunReport> = DetMap::new();
        for segment in segments {
            let text = fs::read_to_string(&segment)?;
            for line in text.lines() {
                let Some((key, report)) = decode_journal_line(line) else {
                    // A torn or stale line: the shard it would have
                    // journaled simply stays pending and re-runs.
                    continue;
                };
                if done.get(&key).is_none() {
                    done.insert(key, report);
                }
            }
        }
        Ok(done)
    }

    /// Enumeration indices of the shards the journal does not yet cover.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the journal scan.
    pub fn pending(&self) -> io::Result<Vec<usize>> {
        let done = self.completed()?;
        Ok(self
            .shards
            .iter()
            .filter(|s| done.get(&s.key).is_none())
            .map(|s| s.index)
            .collect())
    }

    /// `(journaled, total)` shard counts — the progress a supervisor
    /// polls.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the journal scan.
    pub fn progress(&self) -> io::Result<(usize, usize)> {
        Ok((self.completed()?.len(), self.shards.len()))
    }

    /// Runs this worker slot's share of the pending shards — those with
    /// `index % workers == worker` and no journal entry — serially (one
    /// process per worker slot *is* the parallelism), appending each
    /// completed report to `worker-<worker>.jsonl` and flushing after
    /// every shard. Returns how many shards this call ran.
    ///
    /// `cap` optionally bounds how many shards to run before returning
    /// (used by supervision tests to simulate a worker dying mid-sweep).
    ///
    /// Each shard executes through the [`Runner`] facade, so a sharded
    /// run is the same computation as `Runner::configs(..).run()` — only
    /// checkpointed.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers` or `workers == 0`, or if a
    /// simulation run itself panics.
    pub fn run_worker(
        &self,
        worker: usize,
        workers: usize,
        cap: Option<usize>,
    ) -> io::Result<usize> {
        assert!(workers >= 1, "need at least one worker slot");
        assert!(
            worker < workers,
            "worker {worker} out of range 0..{workers}"
        );
        let done = self.completed()?;
        let mut file: Option<fs::File> = None;
        let mut ran = 0usize;
        for shard in &self.shards {
            if shard.index % workers != worker || done.get(&shard.key).is_some() {
                continue;
            }
            if cap.is_some_and(|limit| ran >= limit) {
                break;
            }
            let report = Runner::new(shard.config.clone()).run_single();
            let out = match &mut file {
                Some(f) => f,
                None => file.insert(open_segment_for_append(&self.segment_path(worker))?),
            };
            out.write_all(encode_journal_line(shard, &report).as_bytes())?;
            out.flush()?;
            ran += 1;
        }
        Ok(ran)
    }

    /// Merges the journal into the sweep's reports, in shard-enumeration
    /// order — the exact `Vec<RunReport>` an uninterrupted
    /// `Runner::configs(..).run()` over the same enumeration returns.
    ///
    /// # Errors
    ///
    /// [`SessionError::Incomplete`] when shards are missing from the
    /// journal (their indices are listed), or [`SessionError::Io`] on
    /// journal read failures.
    pub fn merged(&self) -> Result<Vec<RunReport>, SessionError> {
        let done = self.completed()?;
        let mut missing = Vec::new();
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            match done.get(&shard.key) {
                Some(report) => reports.push(report.clone()),
                None => missing.push(shard.index),
            }
        }
        if missing.is_empty() {
            Ok(reports)
        } else {
            Err(SessionError::Incomplete { missing })
        }
    }
}

/// Opens a worker segment for appending, first truncating any torn
/// (newline-less) tail a killed worker left behind. Appending directly
/// after such a tail would fuse the new record onto the half-line,
/// leaving *both* unreadable — the journal would never converge for that
/// shard. Dropping the tail loses nothing: a torn line was never a
/// complete record, and its shard is exactly what the resume re-runs.
pub(crate) fn open_segment_for_append(path: &Path) -> io::Result<fs::File> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let keep = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |pos| pos + 1);
    if keep < bytes.len() {
        file.set_len(keep as u64)?;
    }
    file.seek(SeekFrom::Start(keep as u64))?;
    Ok(file)
}

/// Renders one journal line (newline-terminated) for a completed shard.
fn encode_journal_line(shard: &Shard, report: &RunReport) -> String {
    format!(
        "{{\"fingerprint\":\"{:#018X}\",\"seed\":{},\"label\":\"{}\",\"report\":{}}}\n",
        shard.key.fingerprint,
        shard.key.seed,
        json_escape(&shard.label),
        encode_report(report)
    )
}

/// Parses one journal line; `None` for torn/malformed lines.
fn decode_journal_line(line: &str) -> Option<(ShardKey, RunReport)> {
    let value = parse_json(line).ok()?;
    let fingerprint = match value.get("fingerprint")? {
        Json::Str(hex) => u64::from_str_radix(hex.strip_prefix("0x")?, 16).ok()?,
        _ => return None,
    };
    let seed = match value.get("seed")? {
        Json::Num(raw) => raw.parse::<u64>().ok()?,
        _ => return None,
    };
    let report = decode_report_value(value.get("report")?).ok()?;
    Some((ShardKey { fingerprint, seed }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::time::SimTime;

    fn tiny(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::small();
        c.node_count = 25;
        c.horizon = SimTime::from_secs(300);
        c.with_seed(seed)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("peas-session-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_ignores_seed_but_not_parameters() {
        let a = tiny(1);
        let b = tiny(2);
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        let mut c = tiny(1);
        c.node_count = 26;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
    }

    #[test]
    fn journal_line_round_trips() {
        let shard = Shard {
            index: 0,
            label: "n=25 \"quoted\" seed=1".to_string(),
            config: tiny(1),
            key: ShardKey {
                fingerprint: config_fingerprint(&tiny(1)),
                seed: 1,
            },
        };
        let report = Runner::new(tiny(1)).run_single();
        let line = encode_journal_line(&shard, &report);
        let (key, back) = decode_journal_line(line.trim_end()).expect("decodes");
        assert_eq!(key, shard.key);
        assert_eq!(back, report);
        assert!(
            decode_journal_line(&line[..line.len() / 2]).is_none(),
            "torn line ignored"
        );
    }

    #[test]
    fn worker_skips_journaled_shards_and_merge_orders_positionally() {
        let dir = temp_dir("skip");
        let runs = vec![
            ("s1".to_string(), tiny(1)),
            ("s2".to_string(), tiny(2)),
            ("s3".to_string(), tiny(3)),
        ];
        let session = SweepSession::create(&dir, runs.clone()).expect("create");
        assert_eq!(session.run_worker(0, 1, None).expect("run"), 3);
        // Everything is journaled now; a second pass runs nothing.
        assert_eq!(session.run_worker(0, 1, None).expect("rerun"), 0);
        assert_eq!(session.pending().expect("pending"), Vec::<usize>::new());
        let merged = session.merged().expect("complete");
        let direct = Runner::configs(runs.into_iter().map(|(_, c)| c).collect()).run();
        assert_eq!(merged, direct);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_worker_stops_early_and_resume_completes() {
        let dir = temp_dir("cap");
        let runs: Vec<(String, ScenarioConfig)> =
            (1..=4).map(|s| (format!("s{s}"), tiny(s))).collect();
        let session = SweepSession::create(&dir, runs).expect("create");
        assert_eq!(session.run_worker(0, 2, Some(1)).expect("capped"), 1);
        assert_eq!(session.progress().expect("progress"), (1, 4));
        assert!(matches!(
            session.merged(),
            Err(SessionError::Incomplete { .. })
        ));
        // Resume with a different worker topology: still converges.
        assert_eq!(session.run_worker(0, 1, None).expect("resume"), 3);
        assert!(session.merged().is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
