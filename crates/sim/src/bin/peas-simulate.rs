//! Standalone PEAS network simulator.
//!
//! ```text
//! peas-simulate [options]
//!
//!   --nodes N            deployed sensors              [default 160]
//!   --seed S             master seed                   [default 1]
//!   --failure-rate R     failures per 5000 s (0 = off) [default 10.66]
//!   --loss P             uniform frame loss in [0,1]   [default 0]
//!   --horizon SECS       hard stop                     [default 60000]
//!   --rp METERS          probing range Rp              [default 3]
//!   --lambda0 RATE       initial probing rate          [default 0.1]
//!   --lambdad RATE       desired aggregate rate        [default 0.02]
//!   --no-grab            disable the data workload
//!   --fixed-power RT     fixed transmission range (m)
//!   --shadowed           log-normal shadowed channel
//!   --csv FILE           write the sample series as CSV
//!   --trace FILE         write a per-event protocol trace as CSV
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use peas::PeasConfig;
use peas_des::time::SimTime;
use peas_radio::PropagationSpec;
use peas_sim::ScenarioConfig;

struct Args {
    nodes: usize,
    seed: u64,
    failure_rate: f64,
    loss: f64,
    horizon: f64,
    rp: f64,
    lambda0: f64,
    lambdad: f64,
    grab: bool,
    fixed_power: Option<f64>,
    shadowed: bool,
    csv: Option<String>,
    trace: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            nodes: 160,
            seed: 1,
            failure_rate: 10.66,
            loss: 0.0,
            horizon: 60_000.0,
            rp: 3.0,
            lambda0: 0.1,
            lambdad: 0.02,
            grab: true,
            fixed_power: None,
            shadowed: false,
            csv: None,
            trace: None,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--failure-rate" => {
                    args.failure_rate = value("--failure-rate")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--loss" => args.loss = value("--loss")?.parse().map_err(|e| format!("{e}"))?,
                "--horizon" => {
                    args.horizon = value("--horizon")?.parse().map_err(|e| format!("{e}"))?
                }
                "--rp" => args.rp = value("--rp")?.parse().map_err(|e| format!("{e}"))?,
                "--lambda0" => {
                    args.lambda0 = value("--lambda0")?.parse().map_err(|e| format!("{e}"))?
                }
                "--lambdad" => {
                    args.lambdad = value("--lambdad")?.parse().map_err(|e| format!("{e}"))?
                }
                "--no-grab" => args.grab = false,
                "--fixed-power" => {
                    args.fixed_power = Some(
                        value("--fixed-power")?
                            .parse()
                            .map_err(|e| format!("{e}"))?,
                    )
                }
                "--shadowed" => args.shadowed = true,
                "--csv" => args.csv = Some(value("--csv")?),
                "--trace" => args.trace = Some(value("--trace")?),
                "--help" | "-h" => return Err("help".into()),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(args)
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: peas-simulate [--nodes N] [--seed S] [--failure-rate R] [--loss P] \
                 [--horizon SECS] [--rp M] [--lambda0 R] [--lambdad R] [--no-grab] \
                 [--fixed-power RT] [--shadowed] [--csv FILE] [--trace FILE]"
            );
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let mut peas_builder = PeasConfig::builder()
        .probing_range(args.rp)
        .initial_rate(args.lambda0)
        .desired_rate(args.lambdad);
    if let Some(rt) = args.fixed_power {
        peas_builder = peas_builder.fixed_power(rt);
    }
    let peas_config = match peas_builder.try_build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = ScenarioConfig::paper(args.nodes)
        .with_seed(args.seed)
        .with_failure_rate(args.failure_rate);
    config.peas = peas_config;
    config.loss_rate = args.loss;
    config.horizon = SimTime::from_secs_f64(args.horizon);
    if !args.grab {
        config.grab = None;
    }
    if args.shadowed {
        config.propagation = PropagationSpec::shadowed(args.seed);
    }
    if let Err(e) = config.validate() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let started = std::time::Instant::now();
    let mut world = peas_sim::World::new(config);
    let trace_buffer = std::rc::Rc::new(std::cell::RefCell::new(String::new()));
    if args.trace.is_some() {
        let buffer = std::rc::Rc::clone(&trace_buffer);
        world.set_trace(
            move |t: peas_des::time::SimTime, e: &peas_sim::TraceEvent| {
                let mut b = buffer.borrow_mut();
                b.push_str(&e.to_csv_row(t));
                b.push('\n');
            },
        );
    }
    let report = world.run();
    eprintln!("[peas-simulate] finished in {:.1?}", started.elapsed());

    println!("nodes            : {}", report.node_count);
    println!("seed             : {}", report.seed);
    println!("simulated        : {:.0} s", report.end_secs);
    println!("wakeups          : {}", report.total_wakeups());
    println!(
        "coverage lifetime: k=3 {:.0} s | k=4 {:.0} s | k=5 {:.0} s",
        report.coverage_lifetime(3, 0.9),
        report.coverage_lifetime(4, 0.9),
        report.coverage_lifetime(5, 0.9)
    );
    if report.generated_reports > 0 {
        println!(
            "data delivery    : lifetime {:.0} s, {}/{} reports",
            report.delivery_lifetime(0.9),
            report.delivered_reports,
            report.generated_reports
        );
    }
    println!(
        "energy           : {:.0} J consumed, overhead {:.2} J ({:.3}%)",
        report.consumed_j,
        report.overhead_j(),
        report.overhead_ratio() * 100.0
    );
    println!(
        "deaths           : {} failures, {} battery",
        report.failures_injected, report.energy_deaths
    );
    println!(
        "medium           : {} frames, {} ok, {} collided, {} lost",
        report.medium.frames_sent,
        report.medium.deliveries_ok,
        report.medium.collisions,
        report.medium.random_losses
    );

    if let Some(path) = args.trace {
        let header = "t_secs,event,node,detail\n";
        let body = trace_buffer.borrow();
        if let Err(e) = std::fs::write(&path, format!("{header}{body}")) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[peas-simulate] wrote {} trace events to {path}",
            body.lines().count()
        );
    }
    if let Some(path) = args.csv {
        match File::create(&path).map(BufWriter::new) {
            Ok(mut w) => {
                if let Err(e) = report.write_csv(&mut w) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "[peas-simulate] wrote {} samples to {path}",
                    report.samples.len()
                );
            }
            Err(e) => {
                eprintln!("error creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
