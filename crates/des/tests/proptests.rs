//! Property-based tests for the DES engine: ordering, cancellation,
//! determinism, and distributional sanity of the RNG.

use proptest::prelude::*;

use peas_des::event::EventQueue;
use peas_des::rng::SimRng;
use peas_des::sim::Simulator;
use peas_des::time::{SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, and events that share
    /// a timestamp pop in insertion order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(f) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(f.time >= lt);
                if f.time == lt {
                    prop_assert!(f.payload > li, "FIFO violated at equal times");
                }
            }
            last = Some((f.time, f.payload));
        }
        prop_assert!(q.is_empty());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect_kept: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*id));
            } else {
                expect_kept.push(*i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some(f) = q.pop() {
            popped.push(f.payload);
        }
        popped.sort_unstable();
        expect_kept.sort_unstable();
        prop_assert_eq!(popped, expect_kept);
    }

    /// A simulator run over a random schedule is a pure function of its
    /// inputs (replaying produces the identical trace).
    #[test]
    fn simulator_replay_is_identical(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let run = |times: &[u64]| {
            let mut sim = Simulator::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), i);
            }
            let mut trace = Vec::new();
            while let Some(f) = sim.next() {
                trace.push((f.time, f.payload));
            }
            trace
        };
        prop_assert_eq!(run(&times), run(&times));
    }

    /// Two RNG streams from the same seed never produce identical prefixes.
    #[test]
    fn rng_streams_are_decoupled(seed in any::<u64>(), s1 in 0u64..64, s2 in 0u64..64) {
        prop_assume!(s1 != s2);
        let mut a = SimRng::stream(seed, s1);
        let mut b = SimRng::stream(seed, s2);
        let equal = (0..32).all(|_| a.next_u64() == b.next_u64());
        prop_assert!(!equal);
    }

    /// `below(n)` is always within range.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Exponential samples are non-negative and finite for any positive rate.
    #[test]
    fn exp_samples_well_formed(seed in any::<u64>(), rate in 1e-6f64..1e6) {
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            let x = rng.exp_secs(rate);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// range_duration stays within its bounds.
    #[test]
    fn range_duration_in_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 1u64..1_000) {
        let mut rng = SimRng::new(seed);
        let lo_d = SimDuration::from_nanos(lo);
        let hi_d = SimDuration::from_nanos(lo + span);
        for _ in 0..20 {
            let d = rng.range_duration(lo_d, hi_d);
            prop_assert!(d >= lo_d && d < hi_d);
        }
    }
}
