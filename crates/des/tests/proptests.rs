//! Property-based tests for the DES engine: ordering, cancellation,
//! determinism, backend equivalence, and distributional sanity of the RNG.

use proptest::prelude::*;

use peas_des::event::{EventQueue, HeapEventQueue, LadderEventQueue, QueueCore};
use peas_des::rng::SimRng;
use peas_des::sim::Simulator;
use peas_des::time::{SimDuration, SimTime};

/// One step of the differential queue exerciser: a schedule at a raw
/// nanosecond timestamp, a pop, a bounded pop, a cancel of the i-th
/// still-known id, or a peek. Times are drawn from a lumpy menu so the
/// ladder's structures all get traffic: a dense near band (hits the
/// bottom rung and spawned child rungs), a far-future band (hits the
/// unsorted top), exact collisions (same-time ties broken by seq), the
/// epoch (pushes *behind* everything pending after progress has been
/// made), and `u64::MAX` (saturating bucket math).
#[derive(Clone, Debug)]
enum QueueOp {
    Schedule(u64),
    Pop,
    PopBefore(u64),
    Cancel(usize),
    PeekTime,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    // The vendored proptest stub's `prop_oneof!` is uniform, so weights
    // are expressed by listing a variant more than once: near-band
    // schedules and pops dominate, as in a real simulation.
    prop_oneof![
        (0u64..5_000).prop_map(QueueOp::Schedule),
        (0u64..5_000).prop_map(QueueOp::Schedule),
        (0u64..5_000).prop_map(QueueOp::Schedule),
        (0u64..5_000).prop_map(QueueOp::Schedule),
        (1_000_000_000u64..1_000_005_000).prop_map(QueueOp::Schedule),
        Just(QueueOp::Schedule(0)),
        Just(QueueOp::Schedule(42)),
        Just(QueueOp::Schedule(u64::MAX)),
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
        (0u64..6_000).prop_map(QueueOp::PopBefore),
        (0usize..64).prop_map(QueueOp::Cancel),
        (0usize..64).prop_map(QueueOp::Cancel),
        Just(QueueOp::PeekTime),
    ]
}

/// Replays `ops` against a queue and records every observable outcome:
/// the full `Fired` stream (time, id, payload) plus cancel/peek/len
/// results. Two backends agree iff their transcripts are identical.
fn transcript<C: QueueCore<u32> + Default>(ops: &[QueueOp]) -> Vec<String> {
    let mut q: EventQueue<u32, C> = EventQueue::new();
    let mut ids = Vec::new();
    let mut out = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match op {
            QueueOp::Schedule(t) => {
                let id = q.schedule(SimTime::from_nanos(*t), step as u32);
                ids.push(id);
                out.push(format!("schedule {t} -> {id:?}"));
            }
            QueueOp::Pop => match q.pop() {
                Some(f) => out.push(format!(
                    "pop -> {} {:?} {}",
                    f.time.as_nanos(),
                    f.id,
                    f.payload
                )),
                None => out.push("pop -> none".into()),
            },
            QueueOp::PopBefore(h) => match q.pop_before(SimTime::from_nanos(*h)) {
                Some(f) => out.push(format!(
                    "pop_before {h} -> {} {:?} {}",
                    f.time.as_nanos(),
                    f.id,
                    f.payload
                )),
                None => out.push(format!("pop_before {h} -> none")),
            },
            QueueOp::Cancel(i) => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[i % ids.len()];
                out.push(format!("cancel {id:?} -> {}", q.cancel(id)));
            }
            QueueOp::PeekTime => {
                out.push(format!(
                    "peek -> {:?}",
                    q.peek_time().map(SimTime::as_nanos)
                ));
            }
        }
        out.push(format!("len {} hw {}", q.len(), q.high_water()));
    }
    // Drain the remainder: total order must hold to the last entry.
    while let Some(f) = q.pop() {
        out.push(format!(
            "drain -> {} {:?} {}",
            f.time.as_nanos(),
            f.id,
            f.payload
        ));
    }
    out
}

proptest! {
    /// Events always pop in non-decreasing time order, and events that share
    /// a timestamp pop in insertion order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(f) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(f.time >= lt);
                if f.time == lt {
                    prop_assert!(f.payload > li, "FIFO violated at equal times");
                }
            }
            last = Some((f.time, f.payload));
        }
        prop_assert!(q.is_empty());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect_kept: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*id));
            } else {
                expect_kept.push(*i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some(f) = q.pop() {
            popped.push(f.payload);
        }
        popped.sort_unstable();
        expect_kept.sort_unstable();
        prop_assert_eq!(popped, expect_kept);
    }

    /// Differential: the ladder queue and the binary-heap reference
    /// produce identical observable transcripts — the same `Fired`
    /// stream (same-time ties broken by seq), the same cancel/peek/len
    /// results — under arbitrary interleaved push/pop/cancel sequences
    /// including far-future and past-epoch pushes.
    #[test]
    fn ladder_matches_heap_reference(ops in prop::collection::vec(queue_op(), 1..400)) {
        let heap = transcript::<peas_des::heap_ref::HeapCore<u32>>(&ops);
        let ladder = transcript::<peas_des::ladder::LadderCore<u32>>(&ops);
        prop_assert_eq!(heap, ladder);
    }

    /// A simulator run over a random schedule is a pure function of its
    /// inputs (replaying produces the identical trace).
    #[test]
    fn simulator_replay_is_identical(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let run = |times: &[u64]| {
            let mut sim = Simulator::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), i);
            }
            let mut trace = Vec::new();
            while let Some(f) = sim.next() {
                trace.push((f.time, f.payload));
            }
            trace
        };
        prop_assert_eq!(run(&times), run(&times));
    }

    /// Two RNG streams from the same seed never produce identical prefixes.
    #[test]
    fn rng_streams_are_decoupled(seed in any::<u64>(), s1 in 0u64..64, s2 in 0u64..64) {
        prop_assume!(s1 != s2);
        let mut a = SimRng::stream(seed, s1);
        let mut b = SimRng::stream(seed, s2);
        let equal = (0..32).all(|_| a.next_u64() == b.next_u64());
        prop_assert!(!equal);
    }

    /// `below(n)` is always within range.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Exponential samples are non-negative and finite for any positive rate.
    #[test]
    fn exp_samples_well_formed(seed in any::<u64>(), rate in 1e-6f64..1e6) {
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            let x = rng.exp_secs(rate);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// range_duration stays within its bounds.
    #[test]
    fn range_duration_in_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 1u64..1_000) {
        let mut rng = SimRng::new(seed);
        let lo_d = SimDuration::from_nanos(lo);
        let hi_d = SimDuration::from_nanos(lo + span);
        for _ in 0..20 {
            let d = rng.range_duration(lo_d, hi_d);
            prop_assert!(d >= lo_d && d < hi_d);
        }
    }
}

/// A deterministic heavyweight differential run: simulates a timer-heavy
/// workload (exponential reschedules, frequent cancels) at a depth the
/// proptest's short op sequences never reach, so rung spawning and the
/// top-flush path are both exercised against the reference.
#[test]
fn ladder_matches_heap_on_deep_timer_workload() {
    fn drive<C: QueueCore<u32> + Default>() -> Vec<(u64, u64)> {
        let mut q: EventQueue<u32, C> = EventQueue::new();
        let mut rng = SimRng::new(0xD1FF);
        let mut live = Vec::new();
        // Load phase: 50k pending timers spread over ~an hour.
        for i in 0..50_000u32 {
            let t = rng.below(3_600_000_000_000);
            live.push(q.schedule(SimTime::from_nanos(t), i));
        }
        let mut out = Vec::new();
        // Churn phase: pop, then reschedule ahead of the popped time and
        // occasionally cancel a random live id.
        for i in 0..50_000u32 {
            let f = q.pop().expect("queue drained early");
            out.push((f.time.as_nanos(), f.payload as u64));
            let ahead = f.time + SimDuration::from_nanos(1 + rng.below(10_000_000_000));
            live.push(q.schedule(ahead, 50_000 + i));
            if i % 3 == 0 {
                let idx = rng.below(live.len() as u64) as usize;
                q.cancel(live[idx]);
            }
        }
        while let Some(f) = q.pop() {
            out.push((f.time.as_nanos(), f.payload as u64));
        }
        out
    }
    let heap = drive::<peas_des::heap_ref::HeapCore<u32>>();
    let ladder = drive::<peas_des::ladder::LadderCore<u32>>();
    assert_eq!(heap.len(), ladder.len());
    assert_eq!(heap, ladder);
}

/// The pinned type aliases resolve to distinct backends even when the
/// `heap-queue` feature flips the default.
#[test]
fn pinned_aliases_ignore_feature_flags() {
    let mut h: HeapEventQueue<u8> = EventQueue::new();
    let mut l: LadderEventQueue<u8> = EventQueue::new();
    h.schedule(SimTime::from_secs(1), 1);
    l.schedule(SimTime::from_secs(1), 1);
    assert_eq!(h.pop().unwrap().payload, l.pop().unwrap().payload);
}
