//! Deterministic pseudo-random number generation.
//!
//! The simulator needs (a) bit-reproducible runs given a seed, and (b) many
//! *decoupled* streams — one per node and per subsystem — so that adding a
//! node or reordering events never perturbs the random choices of unrelated
//! entities. We implement xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, the standard recipe, in ~60 lines rather than depending on an
//! external RNG crate in the hot path (see DESIGN.md §1).
//!
//! # Examples
//!
//! ```
//! use peas_des::rng::SimRng;
//!
//! let mut a = SimRng::stream(42, 7);
//! let mut b = SimRng::stream(42, 7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed+stream => same values
//! ```

use crate::time::SimDuration;

/// SplitMix64 step; used to expand seeds into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Streams created with different `(seed, stream)` pairs are statistically
/// independent for simulation purposes. All sampling helpers consume a fixed
/// number of raw outputs per call, keeping streams reproducible across
/// refactorings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a master seed (stream 0).
    pub fn new(seed: u64) -> SimRng {
        SimRng::stream(seed, 0)
    }

    /// Creates the `stream`-th decoupled generator for a master seed.
    ///
    /// Use one stream per node / subsystem so entities do not share state.
    pub fn stream(seed: u64, stream: u64) -> SimRng {
        // Mix the stream id in via a second SplitMix64 pass so that
        // (seed, 1) and (seed + 1, 0) do not collide.
        let mut sm = seed ^ splitmix64(&mut { stream.wrapping_mul(0xA076_1D64_78BD_642F) });
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x1,
                0x9E3779B97F4A7C15,
                0xBF58476D1CE4E5B9,
                0x94D049BB133111EB,
            ];
        }
        SimRng { s }
    }

    /// Derives a child generator, advancing `self` once.
    ///
    /// Useful when a component owns a generator and wants to hand
    /// reproducible sub-streams to dynamically created entities.
    pub fn split(&mut self) -> SimRng {
        let seed = self.next_u64();
        SimRng::stream(seed, 0x5EED_5EED)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` by Lemire rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's widening-multiply method: accept iff the low half clears
        // `2^64 mod n`, which removes the modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given `rate` (events/sec),
    /// in seconds. This is the PEAS sleeping-time distribution
    /// `f(ts) = λ e^{-λ ts}` from Section 2.1 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp_secs(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive and finite, got {rate}"
        );
        // 1 - U is in (0, 1], so ln never sees zero.
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Exponentially distributed [`SimDuration`] with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp_duration(&mut self, rate: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.exp_secs(rate))
    }

    /// Uniform [`SimDuration`] in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "invalid duration range");
        let span = hi.as_nanos() - lo.as_nanos();
        if span == 0 {
            return lo;
        }
        SimDuration::from_nanos(lo.as_nanos() + self.below(span))
    }

    /// Standard-normal sample via Box–Muller (consumes two raw outputs).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64(); // (0, 1]
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let mut a = SimRng::stream(123, 4);
        let mut b = SimRng::stream(123, 4);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::stream(123, 0);
        let mut b = SimRng::stream(123, 1);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0, "streams should be decoupled");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SimRng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::new(11);
        let rate = 0.02; // PEAS λd
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exp_secs(rate)).sum::<f64>() / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn exponential_is_memoryless_in_distribution() {
        // P(X > s + t | X > s) == P(X > t): compare empirical tails.
        let mut rng = SimRng::new(13);
        let rate = 0.1;
        let samples: Vec<f64> = (0..200_000).map(|_| rng.exp_secs(rate)).collect();
        let tail = |t: f64| samples.iter().filter(|&&x| x > t).count() as f64;
        let p_gt_10 = tail(10.0) / samples.len() as f64;
        let p_gt_15_given_5 = tail(15.0) / tail(5.0);
        assert!(
            (p_gt_10 - p_gt_15_given_5).abs() < 0.02,
            "memorylessness violated: {p_gt_10} vs {p_gt_15_given_5}"
        );
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(19);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.1)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn split_produces_decoupled_child() {
        let mut parent = SimRng::new(31);
        let mut child = parent.split();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn range_duration_bounds() {
        let mut rng = SimRng::new(37);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = rng.range_duration(lo, hi);
            assert!(d >= lo && d < hi);
        }
        assert_eq!(rng.range_duration(lo, lo), lo);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn exp_rejects_zero_rate() {
        let _ = SimRng::new(1).exp_secs(0.0);
    }
}
