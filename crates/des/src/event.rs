//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)` gives deterministic FIFO
//! ordering among events scheduled for the same instant — whichever was
//! scheduled first fires first. Cancellation is lazy: cancelled ids go into a
//! tombstone set and are skipped on pop, which keeps both `schedule` and
//! `cancel` O(log n) / O(1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Ids are unique within one [`EventQueue`] and never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// A sentinel id no queue ever issues (sequence numbers are dense from
    /// zero, so `u64::MAX` is unreachable). Lets flat timer tables mark an
    /// empty slot without the niche cost of `Option<EventId>` per entry;
    /// cancelling it is a no-op (`EventQueue::cancel` returns `false`).
    pub const NONE: EventId = EventId(u64::MAX);

    /// Whether this is the [`EventId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == EventId::NONE
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventId({})", self.0)
    }
}

// An entry's id is always `EventId(seq)`; it is not stored separately.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Order entries so that the heap (a max-heap) pops the earliest time first,
// breaking ties by insertion order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest (time, seq) is the "greatest" for BinaryHeap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A fired event as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<E> {
    /// The instant the event was scheduled for.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The event payload.
    pub payload: E,
}

/// Priority queue of timestamped events with stable FIFO tie-breaking and
/// O(1) cancellation.
///
/// # Examples
///
/// ```
/// use peas_des::event::EventQueue;
/// use peas_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().payload, "sooner");
/// assert_eq!(q.pop().unwrap().payload, "later");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids of scheduled events that have neither fired nor been cancelled.
    pending: PendingBits,
    next_seq: u64,
}

/// Pending-membership set over the dense, monotonically issued event ids:
/// one bit per id ever issued, so insert/remove/contains are branch-light
/// word operations instead of hashing. Memory grows by one bit per
/// scheduled event and is never reclaimed until [`EventQueue::clear`].
#[derive(Default)]
struct PendingBits {
    words: Vec<u64>,
    live: usize,
}

impl PendingBits {
    fn insert(&mut self, id: u64) {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        debug_assert_eq!(self.words[w] & mask, 0, "event id issued twice");
        self.words[w] |= mask;
        self.live += 1;
    }

    /// Clears the bit; `true` if it was set.
    fn remove(&mut self, id: u64) -> bool {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        match self.words.get_mut(w) {
            Some(word) if *word & mask != 0 => {
                *word &= !mask;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    fn contains(&self, id: u64) -> bool {
        self.words
            .get((id / 64) as usize)
            .is_some_and(|word| word & (1 << (id % 64)) != 0)
    }

    fn clear(&mut self) {
        self.words.clear();
        self.live = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: PendingBits::default(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`, returning a cancellable handle.
    ///
    /// Events for equal times fire in the order they were scheduled.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry { time, seq, payload });
        self.pending.insert(seq);
        id
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending, `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Removing from `pending` is the single source of truth; the heap
        // entry becomes a tombstone that `pop`/`peek_time` skip lazily.
        self.pending.remove(id.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(entry.seq) {
                return Some(Fired {
                    time: entry.time,
                    id: EventId(entry.seq),
                    payload: entry.payload,
                });
            }
            // else: cancelled tombstone, skip
        }
        None
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones off the top so peek reflects a live event.
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(top.seq) {
                return Some(top.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.live == 0
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.live)
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
        let _ = b;
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let mut other = EventQueue::new();
        let foreign = other.schedule(t(1), ());
        // `foreign` has seq 0 which this queue never issued.
        assert!(!q.cancel(foreign));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn fired_reports_schedule_time_and_id() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(7), 42);
        let fired = q.pop().unwrap();
        assert_eq!(fired.time, t(7));
        assert_eq!(fired.id, id);
        assert_eq!(fired.payload, 42);
    }
}
