//! The pending-event set.
//!
//! [`EventQueue`] is a facade over a pluggable storage backend
//! ([`QueueCore`]): by default the ladder queue ([`crate::ladder`],
//! amortized O(1) enqueue/dequeue at million-entry depth), or the
//! original binary heap ([`crate::heap_ref`]) when `peas-des` is built
//! with `--features heap-queue`. Both backends honor the same total
//! order — strictly ascending `(time, sequence)`, so events scheduled
//! for the same instant fire in schedule order — which is why swapping
//! them cannot perturb a simulation: every pop is uniquely determined.
//!
//! Cancellation is lazy and lives in the facade, not the backend: a
//! cancelled id is cleared from the pending bitvector and its entry
//! rides through the backend as a tombstone, skipped on pop. That keeps
//! `cancel` O(1) and backends oblivious to liveness.

use std::fmt;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Ids are unique within one [`EventQueue`] and never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// A sentinel id no queue ever issues (sequence numbers are dense from
    /// zero, so `u64::MAX` is unreachable). Lets flat timer tables mark an
    /// empty slot without the niche cost of `Option<EventId>` per entry;
    /// cancelling it is a no-op (`EventQueue::cancel` returns `false`).
    pub const NONE: EventId = EventId(u64::MAX);

    /// Whether this is the [`EventId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == EventId::NONE
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventId({})", self.0)
    }
}

/// Storage backend for [`EventQueue`]: a multiset of `(time, seq,
/// payload)` entries popped in strictly ascending `(time, seq)` order.
///
/// Keys are raw nanosecond timestamps plus the facade-issued dense
/// sequence number, so `(time, seq)` is unique — the pop order is a
/// *total* order and every conforming implementation yields the
/// identical stream. Backends never see cancellation: the facade skips
/// tombstoned entries after popping them.
pub trait QueueCore<E> {
    /// Stores one entry. `seq` values arrive dense and monotonically
    /// increasing across the queue's lifetime.
    fn push(&mut self, time: u64, seq: u64, payload: E);
    /// Removes and returns the entry with the smallest `(time, seq)`.
    fn pop(&mut self) -> Option<(u64, u64, E)>;
    /// The smallest `(time, seq)` key without removing it. Takes `&mut`
    /// because bucketed backends may need to restructure to find it.
    fn peek_key(&mut self) -> Option<(u64, u64)>;
    /// Drops all entries.
    fn clear(&mut self);
    /// Approximate heap bytes owned by the backend's storage.
    fn memory_bytes(&self) -> usize;
}

/// The backend selected at compile time: the ladder queue by default,
/// or the binary-heap reference under `--features heap-queue` (the
/// escape hatch for bisecting a suspected ladder bug against golden
/// fingerprints).
#[cfg(not(feature = "heap-queue"))]
pub type DefaultCore<E> = crate::ladder::LadderCore<E>;
/// The backend selected at compile time (heap reference: the
/// `heap-queue` feature is enabled).
#[cfg(feature = "heap-queue")]
pub type DefaultCore<E> = crate::heap_ref::HeapCore<E>;

/// [`EventQueue`] pinned to the binary-heap reference backend,
/// regardless of feature flags. Used by the differential proptests.
pub type HeapEventQueue<E> = EventQueue<E, crate::heap_ref::HeapCore<E>>;
/// [`EventQueue`] pinned to the ladder backend, regardless of feature
/// flags. Used by the differential proptests.
pub type LadderEventQueue<E> = EventQueue<E, crate::ladder::LadderCore<E>>;

/// A fired event as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<E> {
    /// The instant the event was scheduled for.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The event payload.
    pub payload: E,
}

/// Priority queue of timestamped events with stable FIFO tie-breaking and
/// O(1) cancellation.
///
/// # Examples
///
/// ```
/// use peas_des::event::EventQueue;
/// use peas_des::time::SimTime;
///
/// let mut q: EventQueue<_> = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().payload, "sooner");
/// assert_eq!(q.pop().unwrap().payload, "later");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E, C: QueueCore<E> = DefaultCore<E>> {
    core: C,
    /// Ids of scheduled events that have neither fired nor been cancelled.
    pending: PendingBits,
    next_seq: u64,
    /// Largest live pending count ever observed (queue-depth telemetry).
    high_water: usize,
    _payload: std::marker::PhantomData<E>,
}

/// Pending-membership set over the dense, monotonically issued event ids:
/// one bit per id ever issued, so insert/remove/contains are branch-light
/// word operations instead of hashing. Memory grows by one bit per
/// scheduled event and is never reclaimed until [`EventQueue::clear`].
#[derive(Default)]
struct PendingBits {
    words: Vec<u64>,
    live: usize,
}

impl PendingBits {
    fn insert(&mut self, id: u64) {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        debug_assert_eq!(self.words[w] & mask, 0, "event id issued twice");
        self.words[w] |= mask;
        self.live += 1;
    }

    /// Clears the bit; `true` if it was set.
    fn remove(&mut self, id: u64) -> bool {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        match self.words.get_mut(w) {
            Some(word) if *word & mask != 0 => {
                *word &= !mask;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    fn contains(&self, id: u64) -> bool {
        self.words
            .get((id / 64) as usize)
            .is_some_and(|word| word & (1 << (id % 64)) != 0)
    }

    fn clear(&mut self) {
        self.words.clear();
        self.live = 0;
    }
}

impl<E, C: QueueCore<E> + Default> Default for EventQueue<E, C> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E, C: QueueCore<E> + Default> EventQueue<E, C> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E, C> {
        EventQueue {
            core: C::default(),
            pending: PendingBits::default(),
            next_seq: 0,
            high_water: 0,
            _payload: std::marker::PhantomData,
        }
    }
}

impl<E, C: QueueCore<E>> EventQueue<E, C> {
    /// Schedules `payload` to fire at `time`, returning a cancellable handle.
    ///
    /// Events for equal times fire in the order they were scheduled.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.core.push(time.as_nanos(), seq, payload);
        self.pending.insert(seq);
        self.high_water = self.high_water.max(self.pending.live);
        id
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending, `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Removing from `pending` is the single source of truth; the
        // backend entry becomes a tombstone that pops skip lazily.
        self.pending.remove(id.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        while let Some((time, seq, payload)) = self.core.pop() {
            if self.pending.remove(seq) {
                return Some(Fired {
                    time: SimTime::from_nanos(time),
                    id: EventId(seq),
                    payload,
                });
            }
            // else: cancelled tombstone, skip
        }
        None
    }

    /// Removes and returns the earliest pending event if it fires
    /// strictly before `horizon`; `None` otherwise (queue untouched
    /// except for tombstones drained off the front).
    ///
    /// One backend probe per delivered event, versus the two a
    /// peek-then-pop loop costs — this is the simulator's hot path.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<Fired<E>> {
        loop {
            let (time, seq) = self.core.peek_key()?;
            if !self.pending.contains(seq) {
                // Tombstone: discard and look again.
                self.core.pop();
                continue;
            }
            if time >= horizon.as_nanos() {
                return None;
            }
            let (time, seq, payload) = self.core.pop()?;
            self.pending.remove(seq);
            return Some(Fired {
                time: SimTime::from_nanos(time),
                id: EventId(seq),
                payload,
            });
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones off the top so peek reflects a live event.
        while let Some((time, seq)) = self.core.peek_key() {
            if self.pending.contains(seq) {
                return Some(SimTime::from_nanos(time));
            }
            self.core.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.live == 0
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of simultaneously live pending events ever
    /// observed. Monotone; survives pops but not [`EventQueue::clear`].
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Approximate heap bytes held by the queue: backend storage plus
    /// the pending bitvector.
    pub fn memory_bytes(&self) -> usize {
        self.core.memory_bytes() + self.pending.words.capacity() * 8
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.core.clear();
        self.pending.clear();
        self.high_water = 0;
    }
}

impl<E, C: QueueCore<E>> fmt::Debug for EventQueue<E, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.live)
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<_> = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q: EventQueue<_> = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q: EventQueue<_> = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
        let _ = b;
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q: EventQueue<_> = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q: EventQueue<_> = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let mut other: EventQueue<_> = EventQueue::new();
        let foreign = other.schedule(t(1), ());
        // `foreign` has seq 0 which this queue never issued.
        assert!(!q.cancel(foreign));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q: EventQueue<_> = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q: EventQueue<_> = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q: EventQueue<_> = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn fired_reports_schedule_time_and_id() {
        let mut q: EventQueue<_> = EventQueue::new();
        let id = q.schedule(t(7), 42);
        let fired = q.pop().unwrap();
        assert_eq!(fired.time, t(7));
        assert_eq!(fired.id, id);
        assert_eq!(fired.payload, 42);
    }

    #[test]
    fn pop_before_delivers_only_earlier_events() {
        let mut q: EventQueue<_> = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(5), 5);
        assert_eq!(q.pop_before(t(5)).unwrap().payload, 1);
        // Event exactly at the horizon does not fire.
        assert!(q.pop_before(t(5)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(t(6)).unwrap().payload, 5);
        assert!(q.pop_before(t(100)).is_none());
    }

    #[test]
    fn pop_before_skips_cancelled_tombstones() {
        let mut q: EventQueue<_> = EventQueue::new();
        let a = q.schedule(t(1), "cancelled");
        q.schedule(t(2), "kept");
        q.cancel(a);
        assert_eq!(q.pop_before(t(10)).unwrap().payload, "kept");
        assert!(q.pop_before(t(10)).is_none());
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q: EventQueue<_> = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        for i in 0..10 {
            q.schedule(t(i), ());
        }
        for _ in 0..10 {
            q.pop();
        }
        assert_eq!(q.high_water(), 10);
        q.schedule(t(50), ());
        // A later, shallower refill does not lower the mark.
        assert_eq!(q.high_water(), 10);
    }

    #[test]
    fn memory_bytes_is_nonzero_when_loaded() {
        let mut q: EventQueue<_> = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos(i * 17), i);
        }
        assert!(q.memory_bytes() > 0);
    }

    #[test]
    fn heap_and_ladder_queues_agree_on_a_mixed_run() {
        // A quick inline differential check; the heavyweight version with
        // arbitrary interleavings lives in tests/proptests.rs.
        fn drive<C: QueueCore<u64> + Default>() -> Vec<(SimTime, u64)> {
            let mut q: EventQueue<u64, C> = EventQueue::new();
            let mut cancel_me = Vec::new();
            for i in 0..500u64 {
                let id = q.schedule(SimTime::from_nanos((i * 131) % 977), i);
                if i % 7 == 0 {
                    cancel_me.push(id);
                }
            }
            for id in cancel_me {
                q.cancel(id);
            }
            let mut out = Vec::new();
            while let Some(f) = q.pop() {
                out.push((f.time, f.payload));
            }
            out
        }
        assert_eq!(
            drive::<crate::heap_ref::HeapCore<u64>>(),
            drive::<crate::ladder::LadderCore<u64>>()
        );
    }
}
