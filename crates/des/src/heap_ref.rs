//! The binary-heap reference backend for the event queue.
//!
//! This is the pre-ladder `EventQueue` storage, retained verbatim as the
//! trusted oracle: the differential proptest in `tests/proptests.rs`
//! replays arbitrary push/pop/cancel interleavings against both backends
//! and requires identical `Fired` streams, and `--features heap-queue`
//! swaps it back in as the default so any suspected ladder bug can be
//! bisected against golden fingerprints in one rebuild. It is *not* a
//! performance path — O(log n) sifts over hundreds of thousands of
//! pending entries are exactly what [`crate::ladder`] exists to avoid.

use std::cmp::Ordering;
// peas-lint: allow(d5-heap-event-queue) -- this module IS the heap reference implementation
use std::collections::BinaryHeap;

use crate::event::QueueCore;

// An entry's id is always `EventId(seq)`; it is not stored separately.
struct Entry<E> {
    time: u64,
    seq: u64,
    payload: E,
}

// Order entries so that the heap (a max-heap) pops the earliest time first,
// breaking ties by insertion order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest (time, seq) is the "greatest" for BinaryHeap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Binary-heap storage backend for the [`crate::event::EventQueue`]
/// facade; the reference implementation the ladder queue is verified
/// against.
pub struct HeapCore<E> {
    // peas-lint: allow(d5-heap-event-queue) -- this field IS the heap reference implementation
    heap: BinaryHeap<Entry<E>>,
}

impl<E> Default for HeapCore<E> {
    fn default() -> Self {
        HeapCore {
            // peas-lint: allow(d5-heap-event-queue) -- this constructor IS the heap reference implementation
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> QueueCore<E> for HeapCore<E> {
    fn push(&mut self, time: u64, seq: u64, payload: E) {
        self.heap.push(Entry { time, seq, payload });
    }

    fn pop(&mut self) -> Option<(u64, u64, E)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.payload))
    }

    fn peek_key(&mut self) -> Option<(u64, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    fn clear(&mut self) {
        self.heap.clear();
    }

    fn memory_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<Entry<E>>()
    }
}
