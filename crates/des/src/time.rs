//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation. Integer time makes event ordering exact and runs
//! bit-reproducible: two events scheduled from the same floating-point
//! expression always compare the same way on every platform.
//!
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span. The usual
//! arithmetic is provided (`SimTime + SimDuration`, `SimTime - SimTime`, …)
//! and saturates rather than wrapping on overflow, since a saturated
//! simulation horizon (≈584 years) is far beyond any experiment here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second, the resolution of the simulated clock.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant of simulated time, in nanoseconds since time zero.
///
/// # Examples
///
/// ```
/// use peas_des::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(5);
/// assert_eq!(t.as_secs_f64(), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use peas_des::time::SimDuration;
///
/// let d = SimDuration::from_millis(100);
/// assert_eq!(d * 3, SimDuration::from_millis(300));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `secs` seconds after time zero.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime(secs_to_nanos(secs))
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// This instant expressed in seconds (lossy above 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Raw nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self` if `earlier <= self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Returns the later of the two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of the two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration(secs_to_nanos(secs))
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// This span expressed in seconds (lossy above 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whether the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a dimensionless factor, saturating.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0,
            "duration factor must be non-negative, got {factor}"
        );
        let nanos = (self.0 as f64) * factor;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time in seconds must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants, saturating at zero when `rhs > self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(12.5);
        assert_eq!(t.as_nanos(), 12_500_000_000);
        assert!((t.as_secs_f64() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 10_250_000_000);
    }

    #[test]
    fn time_difference_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b - a, SimDuration::from_secs(2));
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_micros(25_000));
        assert_eq!(d + d, SimDuration::from_millis(200));
        assert_eq!(
            d - SimDuration::from_millis(40),
            SimDuration::from_millis(60)
        );
        assert_eq!(
            SimDuration::from_millis(40).saturating_sub(d),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimTime::from_secs_f64(f64::NAN);
    }

    #[test]
    fn saturating_add_at_horizon() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ordering_is_by_nanos() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(6);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(
            format!("{}", SimTime::from_millis_for_test(1500)),
            "1.500000s"
        );
        assert_eq!(format!("{}", SimDuration::from_millis(25)), "0.025000s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> SimTime {
            SimTime::from_nanos(ms * 1_000_000)
        }
    }
}
