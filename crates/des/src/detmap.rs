//! Deterministic associative containers for simulation state.
//!
//! `std::collections::HashMap`/`HashSet` iterate in an order that depends
//! on a per-process random hasher seed, so any protocol logic that walks
//! one — or even folds over `.len()`-adjacent iteration — can change
//! behavior run-to-run and break the golden fingerprints. `peas-lint`
//! (rule `d1-std-hash`) bans them from sim-logic crates; [`DetMap`] and
//! [`DetSet`] are the drop-in replacements.
//!
//! Both are thin newtypes over the `BTree` collections: iteration order is
//! the key order, fully determined by the data, never by process state.
//! The API is the subset the simulator needs; extend it as call sites
//! appear rather than re-exposing the whole `BTreeMap` surface, so every
//! operation in sim code stays auditable.
//!
//! # Examples
//!
//! ```
//! use peas_des::{DetMap, DetSet};
//!
//! let mut seen: DetSet<(u32, u64)> = DetSet::new();
//! assert!(seen.insert((3, 1)));
//! assert!(!seen.insert((3, 1)), "duplicate");
//! assert!(seen.contains(&(3, 1)));
//!
//! let mut leaders: DetMap<u32, &str> = DetMap::new();
//! leaders.insert(2, "b");
//! leaders.insert(1, "a");
//! // Iteration is key-ordered, independent of insertion order or any
//! // per-process hasher seed.
//! let order: Vec<u32> = leaders.iter().map(|(&k, _)| k).collect();
//! assert_eq!(order, vec![1, 2]);
//! ```

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};

/// A map with deterministic, key-ordered iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DetMap<K: Ord, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// An empty map.
    pub fn new() -> DetMap<K, V> {
        DetMap {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutable access to the value at `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Key-ordered iteration (deterministic by construction).
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Key-ordered iteration over values.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> DetMap<K, V> {
        DetMap {
            inner: BTreeMap::from_iter(iter),
        }
    }
}

/// A set with deterministic, value-ordered iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DetSet<T: Ord> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// An empty set.
    pub fn new() -> DetSet<T> {
        DetSet {
            inner: BTreeSet::new(),
        }
    }

    /// Inserts `value`; `true` if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Removes `value`; `true` if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drops every element.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Value-ordered iteration (deterministic by construction).
    pub fn iter(&self) -> btree_set::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> DetSet<T> {
        DetSet {
            inner: BTreeSet::from_iter(iter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_contains_remove() {
        let mut s = DetSet::new();
        assert!(s.is_empty());
        assert!(s.insert((2u32, 9u64)));
        assert!(!s.insert((2, 9)));
        assert!(s.contains(&(2, 9)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&(2, 9)));
        assert!(!s.remove(&(2, 9)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_iteration_is_sorted_regardless_of_insertion_order() {
        let mut a = DetSet::new();
        for v in [5u32, 1, 3, 2, 4] {
            a.insert(v);
        }
        let mut b = DetSet::new();
        for v in [4u32, 2, 5, 3, 1] {
            b.insert(v);
        }
        assert_eq!(a, b);
        let order: Vec<u32> = a.iter().copied().collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn map_basic_ops_and_sorted_iteration() {
        let mut m = DetMap::new();
        assert_eq!(m.insert(7u32, "seven"), None);
        assert_eq!(m.insert(7, "SEVEN"), Some("seven"));
        m.insert(1, "one");
        assert_eq!(m.get(&7), Some(&"SEVEN"));
        assert!(m.contains_key(&1));
        if let Some(v) = m.get_mut(&1) {
            *v = "ONE";
        }
        let pairs: Vec<(u32, &str)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(1, "ONE"), (7, "SEVEN")]);
        assert_eq!(m.remove(&7), Some("SEVEN"));
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let s: DetSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        let m: DetMap<u32, u32> = [(2, 20), (1, 10)].into_iter().collect();
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![10, 20]);
    }
}
