//! The sequential discrete-event simulator.
//!
//! [`Simulator`] owns the simulated clock and the pending-event set. Client
//! code (the network world in `peas-sim`) drives it with a pull loop:
//!
//! ```
//! use peas_des::sim::Simulator;
//! use peas_des::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_after(SimDuration::from_secs(1), Ev::Ping);
//! sim.schedule_after(SimDuration::from_secs(2), Ev::Pong);
//!
//! let mut seen = Vec::new();
//! while let Some(fired) = sim.next_before(SimTime::from_secs(10)) {
//!     seen.push(fired.payload);
//! }
//! assert_eq!(seen, vec![Ev::Ping, Ev::Pong]);
//! // After draining, the clock is parked at the horizon.
//! assert_eq!(sim.now(), SimTime::from_secs(10));
//! ```
//!
//! This pull style (instead of registering callbacks) sidesteps borrow-checker
//! gymnastics: the caller matches on the popped payload with full `&mut`
//! access to its own state and to the simulator.

use crate::event::{EventId, EventQueue, Fired};
use crate::time::{SimDuration, SimTime};

/// Sequential event-driven simulator: a clock plus a pending-event set.
///
/// The clock only moves forward, jumping to each fired event's timestamp.
/// Substitute for the PARSEC runtime used by the paper (DESIGN.md §1).
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Simulator::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Simulator<E> {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (`time < self.now()`): a causal
    /// simulation must never rewind.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time:?} < now {:?}",
            self.now
        );
        self.queue.schedule(time, payload)
    }

    /// Schedules `payload` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.queue.schedule(self.now + delay, payload)
    }

    /// Cancels a pending event; `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event unconditionally, advancing the clock to it.
    ///
    /// Deliberately named `next` (the simulator's natural vocabulary) even
    /// though it shadows `Iterator::next`; `Simulator` is not an iterator
    /// because popping mutates the clock.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Fired<E>> {
        let fired = self.queue.pop()?;
        debug_assert!(fired.time >= self.now, "event queue went backwards");
        self.now = fired.time;
        self.processed += 1;
        Some(fired)
    }

    /// Pops the next event if it fires strictly before `horizon`.
    ///
    /// When the next event is at or past `horizon` (or no events remain) the
    /// clock is advanced to `horizon` and `None` is returned, so repeated
    /// calls implement "run until t". This is the hot path of every world
    /// loop: it costs a single queue probe per delivered event (the
    /// peek and pop are fused in [`EventQueue::pop_before`]).
    pub fn next_before(&mut self, horizon: SimTime) -> Option<Fired<E>> {
        match self.queue.pop_before(horizon) {
            Some(fired) => {
                debug_assert!(fired.time >= self.now, "event queue went backwards");
                self.now = fired.time;
                self.processed += 1;
                Some(fired)
            }
            None => {
                self.now = self.now.max(horizon);
                None
            }
        }
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the event set is exhausted.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Count of events fired so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Largest number of simultaneously pending events ever observed.
    pub fn queue_high_water(&self) -> usize {
        self.queue.high_water()
    }

    /// Approximate heap bytes held by the pending-event queue.
    pub fn queue_memory_bytes(&self) -> usize {
        self.queue.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_to_fired_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), "a");
        let fired = sim.next().unwrap();
        assert_eq!(fired.payload, "a");
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.processed(), 1);
    }

    #[test]
    fn next_before_respects_horizon() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(9), 9);
        assert_eq!(sim.next_before(SimTime::from_secs(5)).unwrap().payload, 1);
        assert!(sim.next_before(SimTime::from_secs(5)).is_none());
        // Clock parked exactly at the horizon; later event still pending.
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn next_before_with_empty_queue_parks_at_horizon() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(sim.next_before(SimTime::from_secs(3)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert!(sim.is_idle());
    }

    #[test]
    fn event_at_horizon_does_not_fire() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        assert!(sim.next_before(SimTime::from_secs(5)).is_none());
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2), "first");
        sim.next().unwrap();
        sim.schedule_after(SimDuration::from_secs(3), "second");
        let fired = sim.next().unwrap();
        assert_eq!(fired.time, SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2), ());
        sim.next().unwrap();
        sim.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulator::new();
        let id = sim.schedule_at(SimTime::from_secs(1), "cancelled");
        sim.schedule_at(SimTime::from_secs(2), "kept");
        assert!(sim.cancel(id));
        let fired = sim.next().unwrap();
        assert_eq!(fired.payload, "kept");
        assert!(sim.next().is_none());
    }

    #[test]
    fn horizon_never_moves_clock_backwards() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), ());
        sim.next().unwrap();
        assert!(sim.next_before(SimTime::from_secs(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn drain_run_is_deterministic() {
        let run = || {
            let mut sim = Simulator::new();
            for i in 0..50u64 {
                sim.schedule_at(SimTime::from_nanos(i * 37 % 13), i);
            }
            let mut order = Vec::new();
            while let Some(f) = sim.next() {
                order.push(f.payload);
            }
            order
        };
        assert_eq!(run(), run());
    }
}
