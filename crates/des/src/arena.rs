//! A free-list slab for in-flight event payloads.
//!
//! Heap entries in the event queue are copied every sift, so a fat
//! payload (a message plus routing metadata) multiplies the cost of
//! every `schedule`/`pop` at million-node scale. [`Arena`] parks the fat
//! value in a slot vector and hands out a `u32` handle; the queue entry
//! carries only the handle. Slots are recycled through a free list, so
//! the arena's footprint tracks the *peak* number of in-flight payloads,
//! not the total ever allocated.
//!
//! Handles are single-use: [`Arena::take`] vacates the slot and pushes
//! it onto the free list. Determinism note: the free list is LIFO, so
//! the handle values an identical run allocates are themselves
//! identical — handles can appear in event payloads without perturbing
//! reproducibility.
//!
//! # Examples
//!
//! ```
//! use peas_des::arena::Arena;
//!
//! let mut arena: Arena<&str> = Arena::new();
//! let a = arena.alloc("probe");
//! let b = arena.alloc("reply");
//! assert_eq!(arena.take(a), "probe");
//! // `a`'s slot is recycled before a fresh one is carved.
//! let c = arena.alloc("report");
//! assert_eq!(c, a);
//! assert_eq!(arena.take(b), "reply");
//! assert_eq!(arena.take(c), "report");
//! assert_eq!(arena.len(), 0);
//! ```

/// A slab of `T` slots addressed by dense `u32` handles with LIFO slot
/// reuse. See the [module docs](self) for the design rationale.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `value` and returns its handle, reusing the most recently
    /// freed slot when one exists.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` values are live at once.
    pub fn alloc(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    // peas-lint: allow(r1-unchecked-panic) -- 4 billion live in-flight payloads exceeds any feasible event queue
                    .expect("arena overflow: more than u32::MAX live payloads");
                self.slots.push(Some(value));
                slot
            }
        }
    }

    /// Removes and returns the value behind `handle`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is vacant or was never issued — handles are
    /// single-use, so a double `take` is a logic error in the caller.
    pub fn take(&mut self, handle: u32) -> T {
        let value = self.slots[handle as usize]
            .take()
            // peas-lint: allow(r1-unchecked-panic) -- a vacant handle means a scheduling-site bug, not a runtime condition
            .expect("arena handle taken twice");
        self.free.push(handle);
        value
    }

    /// Shared access to the value behind `handle`, if the slot is live.
    pub fn get(&self, handle: u32) -> Option<&T> {
        self.slots.get(handle as usize).and_then(Option::as_ref)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever carved (the peak of `len` over the arena's life).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_round_trips() {
        let mut arena = Arena::new();
        let a = arena.alloc(10);
        let b = arena.alloc(20);
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&10));
        assert_eq!(arena.take(a), 10);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.take(b), 20);
        assert!(arena.is_empty());
    }

    #[test]
    fn slots_recycle_lifo() {
        let mut arena = Arena::new();
        let a = arena.alloc("a");
        let b = arena.alloc("b");
        arena.take(a);
        arena.take(b);
        // LIFO: b's slot comes back first, then a's; capacity stays 2.
        assert_eq!(arena.alloc("c"), b);
        assert_eq!(arena.alloc("d"), a);
        assert_eq!(arena.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut arena = Arena::new();
        let a = arena.alloc(1);
        arena.take(a);
        arena.take(a);
    }
}
