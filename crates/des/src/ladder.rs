//! The ladder queue: amortized-O(1) pending-event storage.
//!
//! A binary heap spends O(log n) cache-missing sifts on every operation
//! once the pending set holds hundreds of thousands of timers (the 1M-node
//! worlds of `BENCH_scale.json`). The classic DES answer (Tang & Goh's
//! ladder queue, the calendar-queue lineage behind ns-3-class simulators)
//! is to bucket events by time and only ever *sort* a small tail:
//!
//! * **top** — an unsorted append-only list for events beyond every
//!   bucketed span (`time >= top_start`). Scheduling into the far future
//!   is one `Vec::push`.
//! * **rungs** — a stack of bucket arrays. Each rung divides a time span
//!   into fixed-width buckets; events land in their bucket with one shift
//!   and push. When a bucket comes up for consumption and is still too
//!   big to sort cheaply, it is *re-bucketed* into a new, finer rung
//!   (pushed deeper on the stack) instead — that recursion is what keeps
//!   per-event work amortized O(1).
//! * **bottom** — a small vector sorted descending by `(time, seq)`;
//!   popping the earliest pending event is `Vec::pop` off its end.
//!
//! ## Determinism
//!
//! The queue's contract is a *total* order: events pop in strictly
//! ascending `(time, seq)`. Every key is unique (the facade issues `seq`
//! densely), so any correct implementation — heap or ladder — emits the
//! byte-identical `Fired` stream; the golden fingerprints cannot tell
//! them apart. The differential proptest (`tests/proptests.rs`) and the
//! `--features heap-queue` escape hatch in `peas-des` exist to prove
//! that, not to allow divergence. Internally the invariant is interval
//! ownership: `bottom` keys precede every rung entry, each rung's
//! unconsumed span precedes the next-shallower rung's, and `top` holds
//! the far future; a transfer into `bottom` sorts, so ties broken by
//! `seq` come out exactly as the heap's tie-break did.
//!
//! ## Cancellation
//!
//! Unchanged from the heap backend: the facade's pending bitvector is the
//! single source of truth and cancelled entries ride through rungs as
//! tombstones, skipped on pop. Nothing here ever inspects liveness.

use crate::event::QueueCore;

/// Entries transferred to `bottom` in one go are sorted directly when no
/// larger than this; bigger buckets re-bucket into a finer rung instead.
/// 64 keeps the sort inside one or two cache lines of keys while bounding
/// the amortized sort cost per event at `log2(64)` comparisons.
const SORT_THRESHOLD: usize = 64;
/// Bucket-count bounds for a spawned rung. The count scales with the
/// number of entries being spread (aiming at ~`SORT_THRESHOLD / 2` per
/// bucket) so a million-entry top flush fans out wide enough to sort
/// every bucket directly, while a 100-entry spill stays compact.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 15;
/// Ceiling on the sorted bottom's size for *inserts*. A simulation with
/// heavy near-now traffic (send/tx chains scheduled microseconds ahead)
/// lands a large share of pushes below the deepest rung's current
/// bucket; without a bound each becomes an O(len) sorted insert and the
/// bottom degenerates into the very structure the ladder replaces. At
/// the limit the bottom is re-bucketed into a fresh fine-width rung.
const BOTTOM_LIMIT: usize = 2 * SORT_THRESHOLD;
/// Recycled bucket vectors above this capacity are dropped instead of
/// pooled: a bucket that absorbed a burst would otherwise pin its peak
/// allocation forever (32k pooled buckets × a few-MiB burst each was a
/// gigabyte of dead capacity at the 1M-node tier).
const RECYCLE_SLOT_CAP: usize = 4 * SORT_THRESHOLD;

/// One stored event: the `(time, seq)` key plus its payload. `time` is
/// raw [`crate::time::SimTime`] nanoseconds — keys stay plain integers
/// inside the ladder so bucket arithmetic is shifts and divides.
struct Slot<E> {
    time: u64,
    seq: u64,
    payload: E,
}

impl<E> Slot<E> {
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// One rung: `buckets.len()` equal-width time buckets starting at
/// `start`. Buckets below `cur` are consumed; `count` entries remain in
/// `buckets[cur..]`.
struct Rung<E> {
    start: u64,
    width: u64,
    cur: usize,
    count: usize,
    buckets: Vec<Vec<Slot<E>>>,
}

impl<E> Rung<E> {
    /// Left edge of the first unconsumed bucket (saturating: a fully
    /// consumed rung reports an edge past its own span).
    fn cur_start(&self) -> u64 {
        self.start
            .saturating_add(self.width.saturating_mul(self.cur as u64))
    }

    /// The bucket owning `time`, clamped into range. Times past the
    /// nominal span (routed here because every shallower rung starts
    /// later) collect in the last bucket; the sort on transfer — or a
    /// re-bucketing spawn using the *actual* min/max — restores exact
    /// order within it.
    fn index_of(&self, time: u64) -> usize {
        (((time - self.start) / self.width) as usize).min(self.buckets.len() - 1)
    }
}

/// Ladder-queue storage backend for the [`crate::event::EventQueue`]
/// facade. See the module docs for the structure and invariants.
pub struct LadderCore<E> {
    /// Sorted descending by `(time, seq)`: the earliest key is the last
    /// element, so popping it never moves memory.
    bottom: Vec<Slot<E>>,
    /// Rung stack: index 0 is the shallowest (latest span); the last is
    /// the deepest (earliest span), consumed first.
    rungs: Vec<Rung<E>>,
    /// Unsorted far-future events (`time >= top_start`).
    top: Vec<Slot<E>>,
    /// Times at or past this boundary go to `top`. Starts at zero (all
    /// inserts collect in `top` until the first pop flushes it) and
    /// advances to `max(top) + 1` on every flush.
    top_start: u64,
    /// Min/max times currently in `top` (valid when `top` is non-empty).
    top_min: u64,
    top_max: u64,
    /// Total stored entries, tombstones included.
    len: usize,
    /// Recycled bucket vectors: rungs are spawned and drained constantly
    /// (one per oversized bucket), so their `Vec`s are pooled instead of
    /// round-tripping through the allocator.
    spare_buckets: Vec<Vec<Slot<E>>>,
}

impl<E> Default for LadderCore<E> {
    fn default() -> Self {
        LadderCore {
            bottom: Vec::new(),
            rungs: Vec::new(),
            top: Vec::new(),
            top_start: 0,
            top_min: u64::MAX,
            top_max: 0,
            len: 0,
            spare_buckets: Vec::new(),
        }
    }
}

impl<E> LadderCore<E> {
    /// Routes one entry to `top`, a rung bucket, or the sorted `bottom`.
    fn insert(&mut self, slot: Slot<E>) {
        self.len += 1;
        if slot.time >= self.top_start {
            self.top_min = self.top_min.min(slot.time);
            self.top_max = self.top_max.max(slot.time);
            self.top.push(slot);
            return;
        }
        // Shallowest rung first: rung k owns [cur_start(k), cur_start(k-1)),
        // so the first rung whose unconsumed span has started is the owner.
        // Fully consumed rungs (cur == buckets.len()) are transparent: their
        // span is spoken for by deeper rungs or the bottom.
        for rung in &mut self.rungs {
            if slot.time >= rung.cur_start() && rung.cur < rung.buckets.len() {
                let idx = rung.index_of(slot.time);
                debug_assert!(idx >= rung.cur, "insert into a consumed bucket");
                rung.buckets[idx].push(slot);
                rung.count += 1;
                return;
            }
        }
        // Earlier than every unconsumed bucket: the sorted bottom. Under
        // near-now churn this path is *hot*, so the bottom is kept small:
        // past BOTTOM_LIMIT it is re-bucketed into a fine-width rung
        // (unless every key shares one timestamp — no width can split
        // those, and the sorted insert below handles them).
        if self.bottom.len() >= BOTTOM_LIMIT {
            let mn = self
                .bottom
                .last()
                .map_or(u64::MAX, |s| s.time)
                .min(slot.time);
            let mx = self.bottom.first().map_or(0, |s| s.time).max(slot.time);
            if mn != mx {
                let spare = self.spare_buckets.pop().unwrap_or_default();
                let mut entries = std::mem::replace(&mut self.bottom, spare);
                entries.push(slot);
                // Spawns a new deepest rung (span > 0 and len > threshold
                // guaranteed here); the next pop refills from it.
                self.transfer(entries);
                return;
            }
        }
        let pos = self.bottom.partition_point(|s| s.key() > slot.key());
        self.bottom.insert(pos, slot);
    }

    /// Removes and returns the globally earliest entry (tombstones
    /// included — liveness is the facade's concern).
    fn pop_slot(&mut self) -> Option<Slot<E>> {
        loop {
            if let Some(slot) = self.bottom.pop() {
                self.len -= 1;
                if self.len == 0 {
                    // Empty queue: rewind the top boundary so a fresh
                    // burst of inserts appends to `top` instead of
                    // merge-sorting one by one into `bottom`.
                    self.top_start = 0;
                }
                return Some(slot);
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Earliest key without removing it.
    fn peek_key(&mut self) -> Option<(u64, u64)> {
        loop {
            if let Some(slot) = self.bottom.last() {
                return Some(slot.key());
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Moves the next chunk of entries into the (empty) `bottom`.
    /// Returns `false` when the whole queue is empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.bottom.is_empty());
        loop {
            // Consume the deepest rung: its span is the earliest.
            if let Some(rung) = self.rungs.last_mut() {
                if rung.count == 0 {
                    let spent = self.rungs.pop().map(|r| r.buckets);
                    self.recycle(spent);
                    continue;
                }
                let mut i = rung.cur;
                while rung.buckets[i].is_empty() {
                    i += 1;
                }
                let bucket = std::mem::take(&mut rung.buckets[i]);
                rung.count -= bucket.len();
                rung.cur = i + 1;
                self.transfer(bucket);
                if !self.bottom.is_empty() {
                    return true;
                }
                // The bucket re-bucketed into a deeper rung; consume it.
                continue;
            }
            // No rungs left: flush the far-future staging list.
            if self.top.is_empty() {
                return false;
            }
            let flushed = std::mem::take(&mut self.top);
            // Everything at or past the new boundary stays in `top`;
            // everything below it now lives in rungs or bottom.
            self.top_start = self.top_max.saturating_add(1);
            self.top_min = u64::MAX;
            self.top_max = 0;
            self.transfer(flushed);
            if !self.bottom.is_empty() {
                return true;
            }
        }
    }

    /// Sorts a small batch straight into `bottom`, or re-buckets a large
    /// one into a new deepest rung. Same-time bursts (all keys share one
    /// timestamp) sort directly regardless of size — no bucket width can
    /// split them, and the sort degenerates to ordering by `seq`.
    fn transfer(&mut self, mut entries: Vec<Slot<E>>) {
        if entries.is_empty() {
            self.recycle_one(entries);
            return;
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        for s in &entries {
            min = min.min(s.time);
            max = max.max(s.time);
        }
        if entries.len() <= SORT_THRESHOLD || min == max {
            entries.sort_unstable_by_key(|s| std::cmp::Reverse(s.key()));
            debug_assert!(self.bottom.is_empty());
            // Hand the allocation over wholesale; the displaced (empty)
            // bottom vector joins the bucket pool.
            let displaced = std::mem::replace(&mut self.bottom, entries);
            self.recycle_one(displaced);
            return;
        }
        // Re-bucket: span the *actual* occupied range with enough buckets
        // that the expected occupancy sorts directly next level down.
        let span = (max - min).saturating_add(1);
        let buckets = (entries.len() / (SORT_THRESHOLD / 2))
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let width = span.div_ceil(buckets as u64).max(1);
        let mut rung = Rung {
            start: min,
            width,
            cur: 0,
            count: entries.len(),
            buckets: Vec::with_capacity(buckets),
        };
        for _ in 0..buckets {
            rung.buckets
                .push(self.spare_buckets.pop().unwrap_or_default());
        }
        for slot in entries.drain(..) {
            let idx = rung.index_of(slot.time);
            rung.buckets[idx].push(slot);
        }
        self.recycle_one(entries);
        // Invariant: the child rung's whole span precedes whatever the
        // parent has left to consume. (A fully consumed parent has no
        // claim — its clamped last bucket may have held arbitrary
        // overflow times.)
        debug_assert!(
            self.rungs
                .last()
                .is_none_or(|parent| parent.cur >= parent.buckets.len()
                    || max < parent.cur_start()),
            "spawned rung overlaps its parent's unconsumed span"
        );
        self.rungs.push(rung);
    }

    fn recycle(&mut self, buckets: Option<Vec<Vec<Slot<E>>>>) {
        if let Some(buckets) = buckets {
            for b in buckets {
                self.recycle_one(b);
            }
        }
    }

    /// Pools an emptied vector for reuse as a future bucket. Oversized
    /// vectors are dropped — pooling them would pin every burst's peak
    /// allocation — and the pool itself is bounded at one full rung.
    fn recycle_one(&mut self, mut v: Vec<Slot<E>>) {
        v.clear();
        if v.capacity() > 0
            && v.capacity() <= RECYCLE_SLOT_CAP
            && self.spare_buckets.len() < MAX_BUCKETS
        {
            self.spare_buckets.push(v);
        }
    }
}

impl<E> QueueCore<E> for LadderCore<E> {
    fn push(&mut self, time: u64, seq: u64, payload: E) {
        self.insert(Slot { time, seq, payload });
    }

    fn pop(&mut self) -> Option<(u64, u64, E)> {
        self.pop_slot().map(|s| (s.time, s.seq, s.payload))
    }

    fn peek_key(&mut self) -> Option<(u64, u64)> {
        self.peek_key()
    }

    fn clear(&mut self) {
        self.bottom.clear();
        self.rungs.clear();
        self.top.clear();
        self.top_start = 0;
        self.top_min = u64::MAX;
        self.top_max = 0;
        self.len = 0;
        self.spare_buckets.clear();
    }

    fn memory_bytes(&self) -> usize {
        let slot = std::mem::size_of::<Slot<E>>();
        let mut bytes = self.bottom.capacity() * slot
            + self.top.capacity() * slot
            + self.rungs.capacity() * std::mem::size_of::<Rung<E>>()
            + self.spare_buckets.capacity() * std::mem::size_of::<Vec<Slot<E>>>();
        for b in &self.spare_buckets {
            bytes += b.capacity() * slot;
        }
        for rung in &self.rungs {
            bytes += rung.buckets.capacity() * std::mem::size_of::<Vec<Slot<E>>>();
            for b in &rung.buckets {
                bytes += b.capacity() * slot;
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(core: &mut LadderCore<usize>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| core.pop().map(|(t, s, _)| (t, s))).collect()
    }

    #[test]
    fn pops_in_key_order_across_structures() {
        let mut core = LadderCore::default();
        // Interleave near, far and same-time keys.
        let times = [
            5u64,
            1,
            1,
            1_000_000_000,
            3,
            u64::MAX,
            0,
            999,
            1_000_000_001,
            2,
        ];
        for (seq, &t) in times.iter().enumerate() {
            core.push(t, seq as u64, seq);
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(drain(&mut core), expect);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut core = LadderCore::default();
        let mut seq = 0u64;
        let mut push = |core: &mut LadderCore<usize>, t: u64| {
            core.push(t, seq, 0);
            seq += 1;
        };
        for i in 0..1000 {
            push(&mut core, (i * 37) % 501);
        }
        let mut last = (0, 0);
        for i in 0..500 {
            let (t, s, _) = core.pop().unwrap();
            assert!((t, s) > last || i == 0, "order violated at {i}");
            last = (t, s);
            // Push behind, at and ahead of the current key.
            push(&mut core, t); // same time, later seq
            push(&mut core, t + 100);
        }
        // Drain what remains; order must stay ascending throughout.
        let rest = drain(&mut core);
        for w in rest.windows(2) {
            assert!(w[0] < w[1], "order violated in drain: {w:?}");
        }
        assert!(rest[0] >= last);
    }

    #[test]
    fn same_time_flood_sorts_by_seq() {
        let mut core = LadderCore::default();
        for seq in 0..10_000u64 {
            core.push(42, seq, 0);
        }
        let order = drain(&mut core);
        assert_eq!(order.len(), 10_000);
        for (i, &(t, s)) in order.iter().enumerate() {
            assert_eq!((t, s), (42, i as u64));
        }
    }

    #[test]
    fn past_epoch_push_after_progress_pops_first() {
        let mut core = LadderCore::default();
        for seq in 0..200u64 {
            core.push(1_000 + seq * 10, seq, 0);
        }
        // Make progress so rungs/bottom exist.
        for _ in 0..50 {
            core.pop().unwrap();
        }
        // A push far before every pending entry must pop next.
        core.push(0, 200, 7);
        let (t, s, p) = core.pop().unwrap();
        assert_eq!((t, s, p), (0, 200, 7));
    }

    #[test]
    fn empty_reset_reclaims_top_path() {
        let mut core: LadderCore<()> = LadderCore::default();
        core.push(10, 0, ());
        assert_eq!(core.pop().map(|(t, s, _)| (t, s)), Some((10, 0)));
        assert!(core.pop().is_none());
        // After full drain the boundary rewinds: this lands in `top`.
        core.push(3, 1, ());
        assert_eq!(core.top.len(), 1);
        assert_eq!(core.peek_key(), Some((3, 1)));
    }

    #[test]
    fn memory_bytes_reports_growth() {
        let mut core = LadderCore::default();
        let empty = core.memory_bytes();
        for seq in 0..10_000u64 {
            core.push(seq * 1_000, seq, 0usize);
        }
        core.pop().unwrap(); // force the flush into rungs
        assert!(core.memory_bytes() > empty);
    }
}
