//! # peas-des — deterministic discrete-event simulation engine
//!
//! This crate is the PARSEC substitute for the PEAS (ICDCS 2003)
//! reproduction: a sequential, bit-reproducible discrete-event simulator.
//!
//! It provides three building blocks:
//!
//! * [`time`] — integer-nanosecond [`SimTime`]/[`SimDuration`] newtypes, so
//!   event ordering never depends on floating-point rounding;
//! * [`event`] — a priority queue with stable FIFO tie-breaking and O(1)
//!   cancellation, backed by the amortized-O(1) [`ladder`] queue (or the
//!   [`heap_ref`] binary-heap reference under `--features heap-queue`);
//! * [`rng`] — xoshiro256++ generators with per-entity decoupled streams and
//!   the samplers PEAS needs (exponential sleeping times, uniform backoffs,
//!   normally distributed signal irregularity);
//! * [`sim`] — the [`Simulator`] pull loop combining clock and queue;
//! * [`arena`] — a free-list slab parking fat event payloads behind
//!   `u32` handles so heap entries stay small;
//! * [`detmap`] — [`DetMap`]/[`DetSet`], deterministic-iteration
//!   replacements for the banned `std` hash collections (`peas-lint`
//!   rule `d1-std-hash`).
//!
//! # Example: a minimal wake/sleep process
//!
//! ```
//! use peas_des::prelude::*;
//!
//! enum Ev { WakeUp }
//!
//! let mut sim = Simulator::new();
//! let mut rng = SimRng::stream(1, 0);
//! // Exponentially distributed sleep, rate λ = 0.1 wakeups/sec (paper §5.2).
//! sim.schedule_after(rng.exp_duration(0.1), Ev::WakeUp);
//! let mut wakeups = 0;
//! while let Some(fired) = sim.next_before(SimTime::from_secs(1_000)) {
//!     match fired.payload {
//!         Ev::WakeUp => {
//!             wakeups += 1;
//!             sim.schedule_after(rng.exp_duration(0.1), Ev::WakeUp);
//!         }
//!     }
//! }
//! assert!(wakeups > 50, "expected ~100 wakeups, got {wakeups}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod detmap;
pub mod event;
pub mod heap_ref;
pub mod ladder;
pub mod rng;
pub mod sim;
pub mod time;

pub use arena::Arena;
pub use detmap::{DetMap, DetSet};
pub use event::{EventId, EventQueue, Fired, HeapEventQueue, LadderEventQueue, QueueCore};
pub use rng::SimRng;
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};

/// Convenience re-exports for simulator-driving code.
pub mod prelude {
    pub use crate::arena::Arena;
    pub use crate::detmap::{DetMap, DetSet};
    pub use crate::event::{EventId, Fired};
    pub use crate::rng::SimRng;
    pub use crate::sim::Simulator;
    pub use crate::time::{SimDuration, SimTime};
}
