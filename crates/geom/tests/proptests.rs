//! Property-based tests for the geometry substrate.

use proptest::prelude::*;

use peas_des::rng::SimRng;
use peas_geom::three_d::{greedy_working_set, Volume};
use peas_geom::{connectivity, CoverageGrid, Deployment, Field, Point, SpatialGrid, UnionFind};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Distance is a metric: symmetric, non-negative, triangle inequality.
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    /// Spatial grid range queries agree with brute force for random inputs.
    #[test]
    fn grid_matches_brute_force(
        pts in prop::collection::vec(arb_point(), 0..150),
        center in arb_point(),
        radius in 0.1f64..20.0,
        cell in 1.0f64..12.0,
    ) {
        let field = Field::new(50.0, 50.0);
        let mut grid = SpatialGrid::new(field, cell);
        for (i, &p) in pts.iter().enumerate() {
            grid.insert(i, p);
        }
        let mut fast: Vec<usize> = grid.within(center, radius).collect();
        let mut brute: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.within(center, radius))
            .map(|(i, _)| i)
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    /// K-coverage is monotone: more working nodes never lower it, larger k
    /// never raises it.
    #[test]
    fn coverage_monotonicity(
        pts in prop::collection::vec(arb_point(), 1..60),
        extra in arb_point(),
        range in 2.0f64..15.0,
    ) {
        let grid = CoverageGrid::new(Field::new(50.0, 50.0), 2.5);
        let covs = grid.k_coverages(&pts, range, 4);
        for w in covs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        let mut more = pts.clone();
        more.push(extra);
        let covs_more = grid.k_coverages(&more, range, 4);
        for k in 0..4 {
            prop_assert!(covs_more[k] >= covs[k] - 1e-12);
        }
    }

    /// Union-find component count equals the count from a BFS over the same
    /// edge set.
    #[test]
    fn unionfind_matches_bfs(
        n in 1usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60), 0..120),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // BFS
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        prop_assert_eq!(uf.component_count(), components);
    }

    /// Connectivity analysis is radius-monotone: growing the radius never
    /// increases the number of components.
    #[test]
    fn connectivity_radius_monotone(
        pts in prop::collection::vec(arb_point(), 2..50),
        r1 in 1.0f64..10.0,
        dr in 0.0f64..10.0,
    ) {
        let field = Field::new(50.0, 50.0);
        let small = connectivity::analyze(field, &pts, r1);
        let large = connectivity::analyze(field, &pts, r1 + dr + 0.001);
        prop_assert!(large.components <= small.components);
        prop_assert!(large.edges >= small.edges);
    }

    /// Every deployment keeps all nodes inside the field and produces the
    /// requested count.
    #[test]
    fn deployments_respect_field(seed in any::<u64>(), n in 0usize..300) {
        let field = Field::new(50.0, 50.0);
        for deployment in [
            Deployment::Uniform,
            Deployment::JitteredGrid,
            Deployment::Clustered { centers: 3, std_dev: 4.0 },
        ] {
            let pts = deployment.generate(field, n, &mut SimRng::new(seed));
            prop_assert_eq!(pts.len(), n);
            prop_assert!(pts.iter().all(|&p| field.contains(p)));
        }
    }

    /// 3-D greedy working sets are Rp-separated and cover every candidate
    /// (the probing-rule invariant, footnote 5's claim that the model
    /// generalizes to 3-D).
    #[test]
    fn greedy_3d_working_set_invariants(
        seed in any::<u64>(),
        n in 10usize..400,
        rp in 2.0f64..8.0,
    ) {
        let volume = Volume::new(30.0, 30.0, 30.0);
        let mut rng = SimRng::new(seed);
        let candidates = volume.deploy_uniform(n, &mut rng);
        let working = greedy_working_set(&candidates, rp);
        prop_assert!(!working.is_empty());
        for i in 0..working.len() {
            for j in (i + 1)..working.len() {
                prop_assert!(working[i].distance(working[j]) > rp);
            }
        }
        for c in &candidates {
            prop_assert!(working.iter().any(|w| w.within(*c, rp)));
        }
    }
}
