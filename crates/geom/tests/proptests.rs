//! Property-based tests for the geometry substrate.

use proptest::prelude::*;

use peas_des::rng::SimRng;
use peas_geom::three_d::{greedy_working_set, Volume};
use peas_geom::{
    connectivity, CoverageCsr, CoverageGrid, Deployment, Field, NeighborTables, Point, SpatialGrid,
    UnionFind,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Distance is a metric: symmetric, non-negative, triangle inequality.
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    /// Spatial grid range queries agree with brute force for random inputs.
    #[test]
    fn grid_matches_brute_force(
        pts in prop::collection::vec(arb_point(), 0..150),
        center in arb_point(),
        radius in 0.1f64..20.0,
        cell in 1.0f64..12.0,
    ) {
        let field = Field::new(50.0, 50.0);
        let mut grid = SpatialGrid::new(field, cell);
        for (i, &p) in pts.iter().enumerate() {
            grid.insert(i, p);
        }
        let mut fast: Vec<usize> = grid.within(center, radius).collect();
        let mut brute: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.within(center, radius))
            .map(|(i, _)| i)
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    /// Differential: the precomputed CSR adjacency of [`NeighborTables`]
    /// exactly equals brute-force O(n²) pairwise distance filtering, for
    /// all three range classes the protocol uses (probing `Rp`, transmit
    /// `Rt`, sensing `Rs`) — including topologies with boundary-distance
    /// pairs sitting at exactly `dist == range`.
    #[test]
    fn neighbor_tables_match_brute_force(
        pts in prop::collection::vec(arb_point(), 0..120),
        anchors in prop::collection::vec((0.0f64..40.0, 0.0f64..40.0), 0..8),
        cell in 1.0f64..12.0,
        rp in 1.0f64..6.0,
        rt in 6.0f64..15.0,
        rs in 8.0f64..12.0,
    ) {
        let field = Field::new(50.0, 50.0);
        // Adversarial boundary pairs: each anchor gets a partner at exactly
        // the probing range, so `dist == range` edges must round-trip.
        let mut pts = pts;
        for &(x, y) in &anchors {
            pts.push(Point::new(x, y));
            pts.push(Point::new(x + rp, y));
        }
        let mut grid = SpatialGrid::new(field, cell);
        for (i, &p) in pts.iter().enumerate() {
            grid.insert(i, p);
        }
        let radii = [rp, rt, rs];
        let tables = NeighborTables::build(&grid, &pts, &radii);
        for (class, &r) in radii.iter().enumerate() {
            let mut edges = 0usize;
            for i in 0..pts.len() {
                let mut fast: Vec<u32> = tables.neighbors(class, i).to_vec();
                edges += fast.len();
                // Distances must be the true pairwise distances.
                for (&j, &d) in tables.neighbors(class, i).iter()
                    .zip(tables.distances(class, i))
                {
                    prop_assert_eq!(d, pts[i].distance(pts[j as usize]));
                    prop_assert!(d <= r);
                }
                fast.sort_unstable();
                let mut brute: Vec<u32> = (0..pts.len())
                    .filter(|&j| j != i && pts[i].within(pts[j], r))
                    .map(|j| j as u32)
                    .collect();
                brute.sort_unstable();
                prop_assert_eq!(fast, brute, "class {} node {}", class, i);
            }
            prop_assert_eq!(edges, tables.edge_count(class));
            // Adjacency at an inclusive radius is symmetric.
            for i in 0..pts.len() {
                for &j in tables.neighbors(class, i) {
                    prop_assert!(
                        tables.neighbors(class, j as usize).contains(&(i as u32)),
                        "edge {}->{} not symmetric", i, j
                    );
                }
            }
        }
    }

    /// The precomputed node→cell coverage CSR walks to exactly the counts a
    /// per-disc rasterization produces, and removal restores zeros.
    #[test]
    fn coverage_csr_matches_rasterization(
        pts in prop::collection::vec(arb_point(), 1..50),
        range in 2.0f64..15.0,
        resolution in 0.8f64..3.0,
    ) {
        let grid = CoverageGrid::new(Field::new(50.0, 50.0), resolution);
        let csr = CoverageCsr::build(&grid, &pts, range);
        let mut walked = vec![0u32; grid.sample_count()];
        let mut rasterized = vec![0u32; grid.sample_count()];
        for (i, pt) in pts.iter().enumerate() {
            csr.add_into(i, &mut walked);
            grid.add_disc(*pt, range, &mut rasterized);
        }
        prop_assert_eq!(&walked, &rasterized);
        prop_assert_eq!(&walked, &grid.coverage_counts(&pts, range));
        for i in 0..pts.len() {
            csr.remove_into(i, &mut walked);
        }
        prop_assert!(walked.iter().all(|&c| c == 0));
    }

    /// K-coverage is monotone: more working nodes never lower it, larger k
    /// never raises it.
    #[test]
    fn coverage_monotonicity(
        pts in prop::collection::vec(arb_point(), 1..60),
        extra in arb_point(),
        range in 2.0f64..15.0,
    ) {
        let grid = CoverageGrid::new(Field::new(50.0, 50.0), 2.5);
        let covs = grid.k_coverages(&pts, range, 4);
        for w in covs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        let mut more = pts.clone();
        more.push(extra);
        let covs_more = grid.k_coverages(&more, range, 4);
        for k in 0..4 {
            prop_assert!(covs_more[k] >= covs[k] - 1e-12);
        }
    }

    /// Union-find component count equals the count from a BFS over the same
    /// edge set.
    #[test]
    fn unionfind_matches_bfs(
        n in 1usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60), 0..120),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // BFS
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        prop_assert_eq!(uf.component_count(), components);
    }

    /// Connectivity analysis is radius-monotone: growing the radius never
    /// increases the number of components.
    #[test]
    fn connectivity_radius_monotone(
        pts in prop::collection::vec(arb_point(), 2..50),
        r1 in 1.0f64..10.0,
        dr in 0.0f64..10.0,
    ) {
        let field = Field::new(50.0, 50.0);
        let small = connectivity::analyze(field, &pts, r1);
        let large = connectivity::analyze(field, &pts, r1 + dr + 0.001);
        prop_assert!(large.components <= small.components);
        prop_assert!(large.edges >= small.edges);
    }

    /// Every deployment keeps all nodes inside the field and produces the
    /// requested count.
    #[test]
    fn deployments_respect_field(seed in any::<u64>(), n in 0usize..300) {
        let field = Field::new(50.0, 50.0);
        for deployment in [
            Deployment::Uniform,
            Deployment::JitteredGrid,
            Deployment::Clustered { centers: 3, std_dev: 4.0 },
        ] {
            let pts = deployment.generate(field, n, &mut SimRng::new(seed));
            prop_assert_eq!(pts.len(), n);
            prop_assert!(pts.iter().all(|&p| field.contains(p)));
        }
    }

    /// 3-D greedy working sets are Rp-separated and cover every candidate
    /// (the probing-rule invariant, footnote 5's claim that the model
    /// generalizes to 3-D).
    #[test]
    fn greedy_3d_working_set_invariants(
        seed in any::<u64>(),
        n in 10usize..400,
        rp in 2.0f64..8.0,
    ) {
        let volume = Volume::new(30.0, 30.0, 30.0);
        let mut rng = SimRng::new(seed);
        let candidates = volume.deploy_uniform(n, &mut rng);
        let working = greedy_working_set(&candidates, rp);
        prop_assert!(!working.is_empty());
        for i in 0..working.len() {
            for j in (i + 1)..working.len() {
                prop_assert!(working[i].distance(working[j]) > rp);
            }
        }
        for c in &candidates {
            prop_assert!(working.iter().any(|w| w.within(*c, rp)));
        }
    }
}
