//! Three-dimensional variant of the PEAS model.
//!
//! Footnote 5 of the paper (Section 3): "The model applies to
//! three-dimensional as well." This module provides the 3-D counterparts —
//! points, a box-shaped volume, uniform deployment, K-coverage over a
//! voxel lattice and the working-graph connectivity analysis — so that the
//! pea-packing argument can be checked in 3-D too (see
//! `peas-analysis`-style validation in this module's tests and the
//! `paper` binary's documentation).

use peas_des::rng::SimRng;

use crate::unionfind::UnionFind;

/// A point in 3-space, meters.
///
/// # Examples
///
/// ```
/// use peas_geom::three_d::Point3;
///
/// let a = Point3::new(0.0, 0.0, 0.0);
/// let b = Point3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.distance(b), 3.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
    /// Z coordinate, meters.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Point3 {
        Point3 { x, y, z }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point3) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared distance — cheaper for range tests.
    pub fn distance_squared(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Whether `other` lies within `range` (inclusive).
    pub fn within(self, other: Point3, range: f64) -> bool {
        self.distance_squared(other) <= range * range
    }
}

/// An axis-aligned box volume `[0,w] × [0,d] × [0,h]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Volume {
    width: f64,
    depth: f64,
    height: f64,
}

impl Volume {
    /// Creates a `w × d × h` meter volume.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not strictly positive and finite.
    pub fn new(width: f64, depth: f64, height: f64) -> Volume {
        assert!(
            width > 0.0 && depth > 0.0 && height > 0.0,
            "volume dimensions must be positive"
        );
        assert!(
            width.is_finite() && depth.is_finite() && height.is_finite(),
            "volume dimensions must be finite"
        );
        Volume {
            width,
            depth,
            height,
        }
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Depth (y extent).
    pub fn depth(&self) -> f64 {
        self.depth
    }

    /// Height (z extent).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Volume in cubic meters.
    pub fn cubic_meters(&self) -> f64 {
        self.width * self.depth * self.height
    }

    /// Whether `p` lies inside (boundary inclusive).
    pub fn contains(&self, p: Point3) -> bool {
        (0.0..=self.width).contains(&p.x)
            && (0.0..=self.depth).contains(&p.y)
            && (0.0..=self.height).contains(&p.z)
    }

    /// Uniformly random positions inside the volume.
    pub fn deploy_uniform(&self, n: usize, rng: &mut SimRng) -> Vec<Point3> {
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.range_f64(0.0, self.width),
                    rng.range_f64(0.0, self.depth),
                    rng.range_f64(0.0, self.height),
                )
            })
            .collect()
    }
}

/// Greedy PEAS-like working-set construction in 3-D: scan candidates in
/// the given order; activate any candidate with no active node within
/// `rp` — exactly what the probing rule converges to on a static
/// population.
pub fn greedy_working_set(candidates: &[Point3], rp: f64) -> Vec<Point3> {
    assert!(rp > 0.0, "probing range must be positive");
    let mut working: Vec<Point3> = Vec::new();
    for &c in candidates {
        if !working.iter().any(|w| w.within(c, rp)) {
            working.push(c);
        }
    }
    working
}

/// Fraction of a voxel lattice covered by at least `k` working nodes
/// within `sensing_range` (the 3-D K-coverage metric).
///
/// # Panics
///
/// Panics if `resolution` is not positive or `k == 0`.
pub fn k_coverage(
    volume: Volume,
    working: &[Point3],
    sensing_range: f64,
    resolution: f64,
    k: u32,
) -> f64 {
    assert!(resolution > 0.0, "resolution must be positive");
    assert!(k > 0, "k must be at least 1");
    let nx = (volume.width() / resolution).ceil().max(1.0) as usize;
    let ny = (volume.depth() / resolution).ceil().max(1.0) as usize;
    let nz = (volume.height() / resolution).ceil().max(1.0) as usize;
    let mut covered = 0usize;
    let mut total = 0usize;
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let p = Point3::new(
                    (ix as f64 + 0.5) * resolution,
                    (iy as f64 + 0.5) * resolution,
                    (iz as f64 + 0.5) * resolution,
                );
                total += 1;
                let count = working
                    .iter()
                    .filter(|w| w.within(p, sensing_range))
                    .count();
                if count >= k as usize {
                    covered += 1;
                }
            }
        }
    }
    covered as f64 / total as f64
}

/// Connectivity summary of the 3-D working graph at `radius`.
#[derive(Clone, Debug, PartialEq)]
pub struct Connectivity3 {
    /// Number of nodes.
    pub node_count: usize,
    /// Connected components.
    pub components: usize,
    /// Largest nearest-neighbor distance, `None` below two nodes.
    pub max_nearest_neighbor: Option<f64>,
}

impl Connectivity3 {
    /// Whether the graph is connected (or trivially so).
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }
}

/// Analyzes the radius graph over `nodes` (O(n²); 3-D working sets in the
/// validation experiments are small enough).
pub fn analyze(nodes: &[Point3], radius: f64) -> Connectivity3 {
    assert!(radius > 0.0, "radius must be positive");
    let mut uf = UnionFind::new(nodes.len());
    let mut nearest = vec![f64::INFINITY; nodes.len()];
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            let d = nodes[i].distance(nodes[j]);
            if d <= radius {
                uf.union(i, j);
            }
            if d < nearest[i] {
                nearest[i] = d;
            }
            if d < nearest[j] {
                nearest[j] = d;
            }
        }
    }
    let max_nn = if nodes.len() >= 2 {
        Some(nearest.iter().copied().fold(f64::MIN, f64::max))
    } else {
        None
    };
    Connectivity3 {
        node_count: nodes.len(),
        components: uf.component_count(),
        max_nearest_neighbor: max_nn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volume() -> Volume {
        Volume::new(30.0, 30.0, 30.0)
    }

    #[test]
    fn point3_distance() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 6.0, 3.0);
        assert_eq!(a.distance(b), 5.0);
        assert!(a.within(b, 5.0));
        assert!(!a.within(b, 4.99));
    }

    #[test]
    fn deployment_stays_inside() {
        let mut rng = SimRng::new(1);
        let pts = volume().deploy_uniform(500, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|&p| volume().contains(p)));
    }

    #[test]
    fn greedy_set_is_rp_separated_and_covering() {
        let mut rng = SimRng::new(2);
        let candidates = volume().deploy_uniform(3_000, &mut rng);
        let rp = 4.0;
        let working = greedy_working_set(&candidates, rp);
        // Pairwise separation.
        for i in 0..working.len() {
            for j in (i + 1)..working.len() {
                assert!(working[i].distance(working[j]) > rp);
            }
        }
        // Every candidate is within rp of some working node (coverage of
        // the deployed population, the probing rule's guarantee).
        for c in &candidates {
            assert!(working.iter().any(|w| w.within(*c, rp)));
        }
    }

    #[test]
    fn three_d_connectivity_bound_holds_like_section_3() {
        // In 3-D the analogous sufficient condition uses the diagonal of
        // the enclosing cells; empirically the 2-D bound (1+sqrt5)Rp also
        // connects dense 3-D working sets with margin.
        let mut rng = SimRng::new(3);
        let candidates = volume().deploy_uniform(4_000, &mut rng);
        let rp = 4.0;
        let working = greedy_working_set(&candidates, rp);
        let bound = crate::CONNECTIVITY_FACTOR * rp;
        let report = analyze(&working, bound);
        assert!(report.is_connected(), "{} components", report.components);
        assert!(report.max_nearest_neighbor.unwrap() <= bound);
    }

    #[test]
    fn k_coverage_full_with_dense_set() {
        let mut rng = SimRng::new(4);
        let candidates = volume().deploy_uniform(3_000, &mut rng);
        let working = greedy_working_set(&candidates, 4.0);
        let cov1 = k_coverage(volume(), &working, 10.0, 3.0, 1);
        assert!(cov1 > 0.99, "1-coverage {cov1}");
        let cov4 = k_coverage(volume(), &working, 10.0, 3.0, 4);
        assert!(cov4 > 0.9, "4-coverage {cov4}");
        // Monotone in k.
        assert!(cov1 >= cov4);
    }

    #[test]
    fn k_coverage_empty_set_is_zero() {
        assert_eq!(k_coverage(volume(), &[], 10.0, 5.0, 1), 0.0);
    }

    #[test]
    fn single_point_connectivity() {
        let one = [Point3::new(1.0, 1.0, 1.0)];
        let r = analyze(&one, 5.0);
        assert!(r.is_connected());
        assert_eq!(r.max_nearest_neighbor, None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn volume_rejects_zero_dimension() {
        let _ = Volume::new(0.0, 1.0, 1.0);
    }
}
